"""Dynamic partial-order reduction (Flanagan–Godefroid) for exploration.

Sleep sets (:mod:`repro.sim.reduction`) prune branches the DFS has
already committed to visiting: every awake sibling at every node is
pushed, and only later filtered.  DPOR inverts the commitment: a node
starts with a *single* branch (the one the run actually took), and other
branches are added **only where a race is observed** — two dependent
operations of different threads, unordered by happens-before, that could
have executed in the opposite order.  One representative schedule per
Mazurkiewicz trace survives; interleavings that merely permute
independent operations are never run at all.

The algorithm is the classic stateless one (Flanagan & Godefroid,
POPL'05), combined with sleep sets as in the paper's section 5:

* every executed run is swept once to compute the **happens-before
  relation** over its steps (program order + dependence, transitively
  closed), using the same conservative footprints as sleep sets
  (:func:`~repro.sim.reduction.op_footprint` /
  :func:`~repro.sim.reduction.ops_dependent`);
* at every fresh node, each enabled thread's pending operation is
  checked against the **last** dependent, possibly-co-enabled, earlier
  step not already ordered before it; a race adds the thread (or, via
  the paper's ``E``-set refinement, the threads that causally lead to
  it) to the *backtrack set* of the node before that step;
* the next run branches at the **deepest** node whose backtrack set
  holds an unexplored, awake thread, with the sleep-set discipline of
  :class:`~repro.sim.reduction.SleepSetExplorer` deciding who is awake.

Two honest conservatisms, mirroring the sleep-set explorer:

* **co-enabledness** is approximated: pairs that provably cannot be
  simultaneously enabled (a blocking acquire and a release of the same
  mutex, two releases, spawn/join against the target thread's own
  steps) are excluded from race detection; every other dependent pair
  counts as a race.  Extra backtrack points cost schedules, never
  outcomes.
* a run truncated by a **simulated crash** (process death) or the step
  budget breaks the maximal-execution assumption: operations that were
  pending when the run died never executed, so commuting arguments do
  not apply.  Every fresh node of a truncated run gets its full awake
  set as backtrack points and re-branches with an empty sleep set —
  exactly the credit the sleep-set explorer refuses for such runs.

The accelerators that used to be construction-time ``ValueError``\\ s
now compose:

* ``memoize=True`` — a run aborts when it reaches an already-expanded
  ``(state, sleep set)`` pair (plus ``(preemptions paid, last thread)``
  under a bound, exactly as the plain explorer refines its
  fingerprints).  A memo-aborted run is handled like a crash-truncated
  one: its unexecuted tail could hide races, so its fresh nodes
  re-branch over their full awake sets with no sleep credit, and the
  aborted node's pending operations still join race detection against
  the prefix.  Outcome sets are preserved; per-outcome counts are not.
* ``preemption_bound`` — bounded partial-order reduction in the style
  of Coons, Musuvathi & McKinley (OOPSLA'13).  Extension stays
  non-preemptive (free), so runs remain maximal and only *branching*
  spends budget.  Three changes keep the bounded search exact w.r.t.
  the bounded plain DFS: sleep sets are disabled (commuting a witness
  past an independent step can change its preemption cost, so sleep
  credit is unsound under a bound); backtrack additions and branch
  selection are filtered by budget feasibility (an infeasible waiter
  must not "cover" a reversal); and every race additionally plants
  **conservative backtrack points** at the context-switch boundaries at
  or below its earlier step — at a boundary, every enabled thread costs
  at most what the explored path itself paid there, so the conservative
  points are always feasible.  The differential harness asserts
  outcome-set equality against plain DFS at the same bound.
* ``workers > 1`` — :class:`repro.sim.dpor_parallel.ParallelDPORExplorer`
  runs backtrack branches as speculative work items over the shared
  queue, with per-worker race detection; races targeting frozen
  ancestor nodes travel back as data and are re-applied by the
  coordinator in serial order, so the key-sorted merge reproduces the
  serial search bit-for-bit.  The frozen-ancestor hooks live here
  (``_explore_item`` and the ``ancestor_races`` record list).

``targets=`` race-directed bias composes: it only reorders which awake
thread extends a run and which backtrack candidate is taken first, and
DPOR's correctness is independent of visit order.

The differential tests in ``tests/sim/test_dpor.py`` check outcome-set
equality against plain DFS and the sleep-set explorer over randomly
generated programs (crashing ones included) and every bug kernel,
across the full ``memoize x preemption_bound x workers`` matrix;
``benchmarks/bench_dpor.py`` records the schedule counts next to the
sleep-set explorer's.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import ReproError
from repro.obs import metrics as obs_metrics
from repro.sim import ops
from repro.sim.frontier import reject_slicing
from repro.sim.engine import Engine, RunResult, RunStatus
from repro.sim.memory import FLUSH_PREFIX
from repro.sim.explorer import (
    ExplorationResult,
    Predicate,
    _default_predicate,
    _DirectedPolicy,
    _fill_cache_stats,
    _fill_pipeline,
    _outcome_key,
    _preemption_cost,
    _record_exploration,
    _record_pipeline_stats,
)
from repro.sim.program import Program
from repro.sim.reduction import Token, op_footprint, ops_dependent
from repro.sim.scheduler import Scheduler
from repro.sim.statecache import MemoHit, StateCache, state_fingerprint
from repro.sim.thread import ThreadState

__all__ = ["DPORExplorer"]

#: Acquire-shaped operations that block while the mutex is held.
_BLOCKING_ACQUIRE = (ops.Acquire, ops._ReacquireAfterWait)


def _may_be_coenabled(
    thread_a: str, op_a: ops.Op, thread_b: str, op_b: ops.Op
) -> bool:
    """Whether two pending operations could be enabled simultaneously.

    Conservative: ``True`` unless provably impossible.  A race between
    never-co-enabled operations is not a race — and filtering these
    pairs matters beyond schedule counts: a blocked acquire's real race
    partner is the *earlier acquire* of the same mutex (reversing whole
    critical sections), which only becomes the most recent candidate
    once the release in between is excluded.
    """
    for x, y in ((op_a, op_b), (op_b, op_a)):
        if (
            isinstance(x, _BLOCKING_ACQUIRE)
            and isinstance(y, ops.Release)
            and x.lock == y.lock
        ):
            # The acquire is enabled only while the lock is free; a
            # pending release means it is held.
            return False
    if (
        isinstance(op_a, ops.Release)
        and isinstance(op_b, ops.Release)
        and op_a.lock == op_b.lock
    ):
        return False  # one holder, one pending release
    for op, other in ((op_a, thread_b), (op_b, thread_a)):
        if isinstance(op, (ops.Spawn, ops.Join)) and op.thread == other:
            # Spawn pends while the target has no steps yet; join is
            # enabled only once the target has none left.
            return False
    return True


def _live_pending(engine: Engine) -> Dict[str, ops.Op]:
    """Pending operation of every started, unfinished thread.

    Includes threads blocked on a lock or semaphore (``RUNNABLE`` but not
    enabled); excludes unstarted threads (their first operation cannot
    run before the spawn executes, and any race it participates in is
    still pending — and detected — at every later node) and parked
    threads (a condition/barrier wait has already executed as a step;
    the engine-driven wakeup is not a schedulable transition).

    Under TSO, each non-empty store buffer contributes a flush
    pseudo-thread whose pending operation is the (synthesized)
    head-of-buffer store — flush steps are schedulable transitions, so
    their reorderings against other threads' reads are races like any
    other.
    """
    pending = {
        name: thread.pending
        for name, thread in engine.threads.items()
        if thread.state is ThreadState.RUNNABLE and thread.pending is not None
    }
    for owner in engine.memory.flushable():
        name = FLUSH_PREFIX + owner
        pending[name] = engine.pending_op(name)
    return pending


def _causal_pasts(
    steps: Sequence[Tuple[str, FrozenSet[Token]]]
) -> List[Set[int]]:
    """``pasts[i]``: indices of steps that happen-before step ``i``.

    Happens-before is program order plus dependence between executed
    steps, transitively closed.  Quadratic in the run length, which is
    bounded by the tiny kernel programs this simulator targets; the
    sweep runs once per executed schedule.
    """
    pasts: List[Set[int]] = []
    last: Dict[str, int] = {}
    for i, (thread, footprint) in enumerate(steps):
        past: Set[int] = set()
        previous = last.get(thread)
        if previous is not None:
            past |= pasts[previous]
            past.add(previous)
        for j in range(i):
            if j in past:
                continue
            if ops_dependent(steps[j][1], footprint):
                past |= pasts[j]
                past.add(j)
        pasts.append(past)
        last[thread] = i
    return pasts


class _DPORPruned(ReproError):
    """Raised by the scheduler when every enabled thread is asleep."""


class _Node:
    """One decision point along the current execution path.

    Nodes persist across re-executions: when the search backtracks to a
    node, everything above it (and the node's own enabled set, pending
    footprints, and sleep context) is unchanged — only the branches
    below vary.
    """

    __slots__ = (
        "enabled", "footprints", "pending", "sleep", "backtrack", "done",
        "chosen", "truncated", "snapshot", "paid",
    )

    def __init__(
        self,
        enabled: List[str],
        footprints: Dict[str, FrozenSet[Token]],
        pending: Dict[str, ops.Op],
        sleep: FrozenSet[str],
        snapshot: Optional[Any],
        paid: int = 0,
    ):
        self.enabled = enabled
        self.footprints = footprints
        self.pending = pending
        #: Sleep set in effect when the node was first reached on the
        #: current branch of its ancestors (fixed for the node's
        #: lifetime: changing any ancestor's branch discards the node).
        self.sleep = sleep
        self.backtrack: Set[str] = set()
        self.done: Set[str] = set()
        self.chosen: Optional[str] = None
        #: A run through this node crashed or hit the step budget; later
        #: branches here start with an empty sleep set (no reduction
        #: credit from truncated runs).
        self.truncated = False
        self.snapshot = snapshot
        #: Preemption cost of the steps above this node (used only under
        #: a bound — branch feasibility is ``paid + branch cost <= bound``).
        self.paid = paid


class _DPORScheduler(Scheduler):
    """Replay a prefix, then extend while recording fresh decisions.

    Identical extension discipline to the sleep-set scheduler: threads
    asleep at a node are never chosen, sleepers wake when a dependent
    operation executes, and a node whose enabled threads are all asleep
    prunes the run.  Beyond the prefix it records, per decision, the
    enabled set, every enabled thread's pending op and footprint, the
    running sleep set, the preemption cost paid so far, and (with a
    pipeline) a branch-point snapshot.

    ``track_sleep=False`` (bounded mode) keeps the sleep set empty for
    the whole run; ``cache`` aborts the run with :class:`MemoHit` at an
    already-expanded fingerprint — *after* recording the node, so the
    aborted node's pending operations still join race detection.
    """

    def __init__(
        self,
        prefix: Sequence[str],
        initial_sleep: FrozenSet[str],
        pipeline: Optional[Any] = None,
        directed: Optional[_DirectedPolicy] = None,
        track_sleep: bool = True,
        preemption_bound: Optional[int] = None,
        cache: Optional[StateCache] = None,
    ):
        self.prefix = list(prefix)
        self.initial_sleep = initial_sleep if track_sleep else frozenset()
        self.pipeline = pipeline
        self.directed = directed
        self.track_sleep = track_sleep
        self.preemption_bound = preemption_bound
        self.cache = cache
        self.engine: Optional[Engine] = None
        self.cond_locks: Dict[str, str] = {}
        self.choices: List[str] = []
        self.enabled_sets: List[List[str]] = []
        self.sleep_sets: List[FrozenSet[str]] = []
        self.footprints: List[Dict[str, FrozenSet[Token]]] = []
        self.pending_ops: List[Dict[str, ops.Op]] = []
        self.node_snapshots: List[Optional[Any]] = []
        self.paid_values: List[int] = []
        self._sleep: FrozenSet[str] = frozenset()
        self._last: Optional[str] = None
        self._paid = 0
        self.pruned = False
        self.memo_hit = False

    def attach(self, engine: Engine) -> None:
        self.engine = engine
        self.cond_locks = dict(engine.program.conditions)

    @property
    def paid(self) -> int:
        """Preemption cost paid by this run so far (prefix included)."""
        return self._paid

    def choose(self, enabled: Sequence[str], step: int) -> str:
        ordered = sorted(enabled)
        index = len(self.choices)
        if index < len(self.prefix):
            choice = self.prefix[index]
            if choice not in enabled:
                raise ReproError(
                    f"DPOR prefix diverged at step {index}: {choice!r} not "
                    f"enabled in {ordered}"
                )
            self._paid += _preemption_cost(self._last, choice, ordered)
            self.choices.append(choice)
            self._last = choice
            return choice

        if index == len(self.prefix):
            self._sleep = self.initial_sleep
        assert self.engine is not None
        # Footprints and pending ops of every *live* thread, not just the
        # enabled ones: race detection must see the next transition of a
        # thread blocked on a lock (its acquire races with the earlier
        # acquire that blocked it — the deadlock-producing reversal).
        pending = _live_pending(self.engine)
        footprints = {
            name: op_footprint(op, name, self.cond_locks)
            for name, op in pending.items()
        }
        self.enabled_sets.append(ordered)
        self.sleep_sets.append(self._sleep)
        self.footprints.append(footprints)
        self.pending_ops.append(pending)
        self.paid_values.append(self._paid)
        awake = (
            [name for name in ordered if name not in self._sleep]
            if self.track_sleep
            else ordered
        )
        if self.pipeline is not None:
            # Aligned with enabled_sets even for the pruned node; only
            # nodes with two awake threads can ever branch.
            self.node_snapshots.append(
                self.pipeline.snapshot() if len(awake) > 1 else None
            )
        if not awake:
            self.pruned = True
            raise _DPORPruned("all enabled threads are asleep")
        if self.cache is not None:
            fingerprint: Any = (
                state_fingerprint(self.engine),
                ("sleep", tuple(sorted(self._sleep))),
            )
            if self.preemption_bound is not None:
                # Under a bound the subtree also depends on the budget
                # spent and on which thread ran last (see the plain
                # explorer's fingerprint refinement).
                fingerprint = (
                    fingerprint,
                    ("preemptions", self._paid),
                    ("last", self._last),
                )
            if self.cache.seen(fingerprint):
                self.memo_hit = True
                raise MemoHit()
        if self.directed is not None:
            keys = self.directed.key_enabled(self.engine, awake, self._last)
            choice = min(awake, key=keys.__getitem__)
            if (
                self.preemption_bound is not None
                and self._paid
                + _preemption_cost(self._last, choice, ordered)
                > self.preemption_bound
                and self._last in awake
            ):
                # Directed extension would overdraw the budget: fall
                # back to the free non-preemptive continuation.
                choice = self._last
        elif self._last in awake:
            choice = self._last
        else:
            choice = awake[0]
        if self.track_sleep:
            chosen_footprint = footprints[choice]
            self._sleep = frozenset(
                name
                for name in self._sleep
                if name in footprints
                and not ops_dependent(footprints[name], chosen_footprint)
            )
        self._paid += _preemption_cost(self._last, choice, ordered)
        self.choices.append(choice)
        self._last = choice
        return choice

    def reset(self) -> None:
        self.choices = []
        self.enabled_sets = []
        self.sleep_sets = []
        self.footprints = []
        self.pending_ops = []
        self.node_snapshots = []
        self.paid_values = []
        self._sleep = frozenset()
        self._last = None
        self._paid = 0
        self.pruned = False
        self.memo_hit = False


class DPORExplorer:
    """Stateless exploration with dynamic partial-order reduction.

    Composes with the accelerators of the plain explorer:
    ``memoize=True`` (memo-aborted runs are handled as truncated runs),
    ``preemption_bound`` (bounded POR with conservative backtrack points
    at context-switch boundaries), and — through
    :func:`~repro.sim.explorer.make_explorer` with ``workers > 1`` —
    :class:`repro.sim.dpor_parallel.ParallelDPORExplorer`.  See the
    module docstring for the composed semantics.
    """

    def __init__(
        self,
        program: Program,
        max_schedules: int = 20000,
        max_steps: int = 5000,
        keep_matches: int = 16,
        memoize: bool = False,
        preemption_bound: Optional[int] = None,
        pipeline: Optional[Any] = None,
        targets: Optional[Sequence[Any]] = None,
    ):
        self.program = program
        self.max_schedules = max_schedules
        self.max_steps = max_steps
        self.keep_matches = keep_matches
        self.memoize = memoize
        self.preemption_bound = preemption_bound
        #: Race-directed visit ordering (see
        #: :class:`~repro.sim.explorer.Explorer`): biases which awake
        #: thread extends a run and which backtrack candidate is taken
        #: first.  DPOR's coverage is independent of visit order, so the
        #: bias composes freely.
        self.directed = _DirectedPolicy(targets) if targets else None
        #: Streaming detector pipeline (duck-typed); findings cover only
        #: the representative schedules DPOR actually runs.
        self.pipeline = pipeline
        #: The state cache of the most recent exploration (``None``
        #: unless ``memoize=True``).
        self.cache: Optional[StateCache] = None
        #: Telemetry of the most recent exploration.
        self.pruned_runs = 0
        self.races_detected = 0
        self.backtrack_points = 0
        #: Races targeting frozen ancestor nodes (parallel items only):
        #: ``("race" | "boundary", depth, initials, thread)`` records in
        #: detection order, re-applied live by the coordinator.
        self.ancestor_races: List[Tuple[str, int, FrozenSet[str], str]] = []
        # Search state (valid between _begin and _finish).
        self._path: List[_Node] = []
        self._frozen = 0
        self._seed: Optional[
            Tuple[List[str], FrozenSet[str], Optional[Any]]
        ] = None
        self._attempts = 0
        self._match: Predicate = _default_predicate
        self._stop_on_first = False

    def explore(
        self,
        predicate: Optional[Predicate] = None,
        stop_on_first: bool = False,
        *,
        slice_budget: Optional[int] = None,
        frontier: Optional[Any] = None,
    ) -> ExplorationResult:
        """Explore with reduction; result fields as in :class:`Explorer`.

        DPOR refuses ``slice_budget``/``frontier`` (``ValueError``): its
        backtrack sets are discovered *behind* the DFS position, so a
        pending-stack checkpoint under-approximates the remaining work.
        Callers that need incremental DPOR budgets restart with a larger
        ``max_schedules`` instead — the search is deterministic, so a
        restart that reaches the verdict reproduces it bit-for-bit
        (``docs/allocator.md``).
        """
        reject_slicing(
            "reduction='dpor'",
            "backtrack sets are discovered behind the DFS position, so a "
            "pending-stack checkpoint under-approximates the remaining "
            "work; restart with a larger max_schedules instead",
            slice_budget, frontier,
        )
        start = perf_counter()
        result = self._begin(predicate, stop_on_first)
        while self._step(result):
            pass
        self._finish(result, start)
        return result

    def _explore_item(
        self,
        base: Sequence[_Node],
        seed: Tuple[List[str], FrozenSet[str], Optional[Any]],
        predicate: Optional[Predicate] = None,
        stop_on_first: bool = False,
    ) -> ExplorationResult:
        """Explore one parallel work item: a branch below frozen ancestors.

        ``base`` holds the reconstructed ancestor nodes (chosen thread,
        executed op/footprint, preemptions paid); ``seed`` is the item's
        committed first schedule.  Races that target an ancestor are
        recorded on :attr:`ancestor_races` instead of planted — the
        coordinator replants them against live node state.  Used by
        :class:`repro.sim.dpor_parallel.ParallelDPORExplorer`.
        """
        start = perf_counter()
        result = self._begin(predicate, stop_on_first, base=base, seed=seed)
        while self._step(result):
            pass
        self._finish(result, start)
        return result

    # -- search loop ---------------------------------------------------------

    def _begin(
        self,
        predicate: Optional[Predicate],
        stop_on_first: bool,
        base: Optional[Sequence[_Node]] = None,
        seed: Optional[
            Tuple[List[str], FrozenSet[str], Optional[Any]]
        ] = None,
    ) -> ExplorationResult:
        """Reset search state.  ``base`` installs frozen ancestor nodes
        (a parallel item's context); ``seed`` its first branch."""
        self._match = predicate if predicate is not None else _default_predicate
        self._stop_on_first = stop_on_first
        self.pruned_runs = 0
        self.races_detected = 0
        self.backtrack_points = 0
        self.ancestor_races = []
        self.cache = StateCache() if self.memoize else None
        self._path = list(base) if base else []
        self._frozen = len(self._path)
        self._seed = seed if seed is not None else ([], frozenset(), None)
        self._attempts = 0
        return ExplorationResult(
            program=self.program.name, schedules_run=0, complete=True
        )

    def _step(self, result: ExplorationResult) -> bool:
        """One run + race sweep + next-branch selection; ``False`` ends."""
        if self._seed is None:
            return False
        if self._attempts >= self.max_schedules:
            result.complete = False
            return False
        self._attempts += 1
        prefix, sleep, snapshot = self._seed
        run, scheduler, final_tail = self._run_once(prefix, sleep, snapshot)
        matched = self._absorb(result, run, scheduler, final_tail, len(prefix))
        if matched and self._stop_on_first:
            result.complete = False
            return False
        self._seed = self._select_next(self._path)
        return self._seed is not None

    def _absorb(
        self,
        result: ExplorationResult,
        run: Optional[RunResult],
        scheduler: _DPORScheduler,
        final_tail: Optional[_Node],
        base: int,
    ) -> bool:
        """Fold one engine run into the path and the result tallies."""
        path = self._path
        pruned_tail = self._extend_path(path, scheduler, base)
        result.states_expanded += len(scheduler.choices) - base
        result.preemptions_spent += scheduler.paid
        self._detect_races(
            path, base, pruned_tail if pruned_tail is not None else final_tail
        )
        matched = False
        if run is None:
            if scheduler.memo_hit:
                result.cache_hits += 1
                # A memo-aborted run is truncated: the subtree below the
                # revisited state was explored from its first visit, but
                # this prefix's own unexecuted tail could hide races —
                # withdraw reduction credit exactly as for a crash.
                self._handle_truncated(path, scheduler, base)
                self._truncation_races(path)
            else:
                self.pruned_runs += 1
        else:
            result.schedules_run += 1
            result.statuses[run.status] += 1
            key = _outcome_key(run)
            result.outcomes[key] = result.outcomes.get(key, 0) + 1
            if self._match(run):
                matched = True
                result.match_count += 1
                if len(result.matching) < self.keep_matches:
                    result.matching.append(run)
                if result.first_match_schedule is None:
                    result.first_match_schedule = list(run.schedule)
                    result.schedules_to_first_finding = result.schedules_run
            if run.status in (RunStatus.CRASH, RunStatus.ABORTED):
                self._handle_truncated(path, scheduler, base)
                self._truncation_races(path)
        return matched

    # -- internals ----------------------------------------------------------

    def _run_once(
        self,
        prefix: List[str],
        sleep: FrozenSet[str],
        snapshot: Optional[Any],
    ) -> Tuple[Optional[RunResult], _DPORScheduler, Optional["_Node"]]:
        pipeline = self.pipeline
        hook = None
        if pipeline is not None:
            if snapshot is not None:
                pipeline.restore(snapshot)
            else:
                pipeline.begin_pass()
            hook = pipeline.feed
        scheduler = _DPORScheduler(
            prefix,
            sleep,
            pipeline=pipeline,
            directed=self.directed,
            track_sleep=self.preemption_bound is None,
            preemption_bound=self.preemption_bound,
            cache=self.cache,
        )
        engine = Engine(
            self.program, scheduler, max_steps=self.max_steps, event_hook=hook
        )
        scheduler.attach(engine)
        try:
            run = engine.run()
        except _DPORPruned:
            return None, scheduler, None
        except MemoHit:
            # The hit node was recorded before the abort, so _extend_path
            # surfaces it as the tail and its pending ops join race
            # detection; end-of-trace analyses are skipped (as in the
            # plain explorer).
            return None, scheduler, None
        if pipeline is not None:
            pipeline.finish_pass()
        # A run can end with transitions still pending — deadlocked
        # threads, or survivors of a crash.  The engine never asks the
        # scheduler at such a state, so synthesize a terminal node for
        # race detection: a blocked acquire still races with the earlier
        # step that blocked it.  The node never branches (no enabled
        # threads), so backtrack points land at ancestors only.
        tail: Optional[_Node] = None
        final_pending = _live_pending(engine)
        if final_pending:
            footprints = {
                name: op_footprint(op, name, scheduler.cond_locks)
                for name, op in final_pending.items()
            }
            tail = _Node([], footprints, final_pending, frozenset(), None)
        return run, scheduler, tail

    def _extend_path(
        self, path: List[_Node], scheduler: _DPORScheduler, base: int
    ) -> Optional[_Node]:
        """Append this run's fresh decisions as nodes; return the
        recorded-but-unexecuted tail node (a sleep-pruned or memo-aborted
        stop), if any."""
        tail: Optional[_Node] = None
        snapshots = scheduler.node_snapshots
        for k in range(len(scheduler.enabled_sets)):
            node = _Node(
                enabled=scheduler.enabled_sets[k],
                footprints=scheduler.footprints[k],
                pending=scheduler.pending_ops[k],
                sleep=scheduler.sleep_sets[k],
                snapshot=snapshots[k] if k < len(snapshots) else None,
                paid=scheduler.paid_values[k],
            )
            depth = base + k
            if depth < len(scheduler.choices):
                node.chosen = scheduler.choices[depth]
                node.done.add(node.chosen)
                node.backtrack.add(node.chosen)
                path.append(node)
            else:
                # The node a pruned or memo-aborted run stopped at: it
                # can never branch here, but its pending operations
                # still participate in race detection against the prefix.
                tail = node
        return tail

    def _detect_races(
        self, path: List[_Node], base: int, tail: Optional[_Node]
    ) -> None:
        """One FG race sweep over the current execution.

        For every *fresh* node (depth ≥ ``base``) and every thread
        enabled there, find the most recent earlier step that is
        dependent with the thread's pending operation, possibly
        co-enabled with it, and not already ordered before it by
        happens-before — and add backtrack points at the node that step
        executed from.  Older nodes were swept when they were fresh;
        re-sweeping them could only repeat the same additions.
        """
        steps = [
            (node.chosen, node.footprints[node.chosen]) for node in path
        ]
        step_ops = [node.pending[node.chosen] for node in path]
        pasts = _causal_pasts(steps)
        last: Dict[str, int] = {}
        total = len(path) + (1 if tail is not None else 0)
        for depth in range(total):
            node = path[depth] if depth < len(path) else tail
            if depth >= base:
                for thread in sorted(node.pending):
                    previous = last.get(thread)
                    if previous is None:
                        thread_past: Set[int] = set()
                    else:
                        thread_past = pasts[previous] | {previous}
                    footprint = node.footprints[thread]
                    pending = node.pending[thread]
                    for i in range(depth - 1, -1, -1):
                        if i in thread_past:
                            continue  # ordered before the pending op
                        if not ops_dependent(steps[i][1], footprint):
                            continue
                        if not _may_be_coenabled(
                            steps[i][0], step_ops[i], thread, pending
                        ):
                            continue
                        self.races_detected += 1
                        self._add_backtrack(
                            path, thread, i, depth, steps, pasts, footprint
                        )
                        break  # only the most recent such step (FG)
            if depth < len(path):
                last[steps[depth][0]] = depth

    def _add_backtrack(
        self,
        path: List[_Node],
        thread: str,
        i: int,
        depth: int,
        steps: List[Tuple[str, FrozenSet[Token]]],
        pasts: List[Set[int]],
        pending_fp: Optional[FrozenSet[Token]],
    ) -> None:
        """Schedule the reversal of a race at the node before step ``i``.

        The source-set rule (Abdulla et al., POPL'14).  Build the
        reversal witness ``v``: the steps after ``i`` that are *not*
        happens-after it, followed by the racing pending operation.  Its
        *initials* are the threads whose first event in ``v`` has no
        dependent predecessor within ``v`` — the threads that can lead
        the reversed execution from the node.  If any initial is already
        scheduled there (explored, or awaiting selection outside the
        sleep set) the reversal is covered and nothing is added;
        otherwise one initial suffices.

        This subsumes Flanagan–Godefroid's "add the racing thread"
        rule, which loses reversals when that thread is sleep-blocked at
        the node and the commutation path into the covering sibling
        crosses a dependent step — an initial of ``v`` other than the
        racing thread is awake exactly there.  ``pending_fp`` is
        ``None`` for truncation races, whose final step is dependent
        with everything and hence an initial only when ``v`` has no
        other element.
        """
        witness: List[Tuple[str, Optional[FrozenSet[Token]]]] = [
            steps[j] for j in range(i + 1, depth) if i not in pasts[j]
        ]
        witness.append((thread, pending_fp))
        initials: Set[str] = set()
        seen: Set[str] = set()
        for k, (name, footprint) in enumerate(witness):
            if name in seen:
                continue
            seen.add(name)
            if footprint is None:
                if k == 0:
                    initials.add(name)
                continue
            if all(
                witness[m][1] is not None
                and not ops_dependent(witness[m][1], footprint)
                for m in range(k)
            ):
                initials.add(name)
        self._plant(path, i, initials, thread, steps)

    def _plant(
        self,
        path: List[_Node],
        i: int,
        initials: Set[str],
        thread: str,
        steps: List[Tuple[str, FrozenSet[Token]]],
    ) -> None:
        """Apply the addition decision for a race at node ``i``.

        Frozen ancestor nodes (parallel items) are never mutated: the
        race travels back as a record and the coordinator replants it
        with live node state, preserving the serial covered-check.
        """
        if i < self._frozen:
            self.ancestor_races.append(("race", i, frozenset(initials), thread))
            return
        pre = path[i]
        bound = self.preemption_bound
        if bound is None:
            covered = pre.done | (pre.backtrack - set(pre.sleep))
            if covered & initials:
                return
            enabled = set(pre.enabled)
            candidates = initials & enabled
            awake = candidates - set(pre.sleep)
            if awake:
                additions = {min(awake)}
            elif candidates:
                additions = {min(candidates)}
            else:
                # No initial is enabled here (a lock held across the
                # witness window, or similar): branch over everything.
                additions = enabled
            before = len(pre.backtrack)
            pre.backtrack |= additions
            self.backtrack_points += len(pre.backtrack) - before
            return
        # Bounded mode: an infeasible waiter must not cover a reversal,
        # and additions that can never be selected are pointless — both
        # checks use the static branch cost at this node.
        previous = steps[i - 1][0] if i > 0 else None
        feasible = {
            name
            for name in pre.enabled
            if pre.paid + _preemption_cost(previous, name, pre.enabled)
            <= bound
        }
        covered = pre.done | (pre.backtrack & feasible)
        if not covered & initials:
            candidates = initials & feasible
            additions = {min(candidates)} if candidates else feasible
            before = len(pre.backtrack)
            pre.backtrack |= additions
            self.backtrack_points += len(pre.backtrack) - before
        # Conservative points: the budget may forbid the reversal from
        # this node even when it allows an equivalent one scheduled at a
        # context-switch boundary, where every enabled thread costs at
        # most what the explored path paid (Coons et al., OOPSLA'13).
        self._plant_boundaries(path, i, initials, thread, steps)

    def _plant_boundaries(
        self,
        path: List[_Node],
        i: int,
        initials: Set[str],
        thread: str,
        steps: List[Tuple[str, FrozenSet[Token]]],
    ) -> None:
        """Plant conservative bounded-mode points at boundaries ≤ ``i``.

        A boundary is a node where the executed thread changed (plus the
        root).  Candidates are the racing thread and the witness
        initials; feasibility-filtered like every bounded addition.
        """
        for j in range(i, -1, -1):
            if j != 0 and steps[j - 1][0] == steps[j][0]:
                continue
            if j < self._frozen:
                self.ancestor_races.append(
                    ("boundary", j, frozenset(initials), thread)
                )
                continue
            self._plant_boundary(
                path[j],
                steps[j - 1][0] if j > 0 else None,
                initials,
                thread,
            )

    def _plant_boundary(
        self,
        node: _Node,
        previous: Optional[str],
        initials: Set[str],
        thread: str,
    ) -> None:
        bound = self.preemption_bound
        assert bound is not None
        additions = {
            name
            for name in ({thread} | initials)
            if name in node.enabled
            and node.paid + _preemption_cost(previous, name, node.enabled)
            <= bound
        }
        if not additions:
            return
        before = len(node.backtrack)
        node.backtrack |= additions
        self.backtrack_points += len(node.backtrack) - before

    def _handle_truncated(
        self, path: List[_Node], scheduler: _DPORScheduler, base: int
    ) -> None:
        """Withdraw reduction credit below a truncated run.

        A crash, the step budget, or a memo abort leaves the run's tail
        unexecuted, so independence-based commuting arguments do not
        apply: every fresh node re-branches over its full awake set and
        subsequent branches there start with an empty sleep set —
        mirroring the sleep-set explorer, which pushes the siblings of
        truncated runs with empty sleep sets.
        """
        for k in range(len(scheduler.enabled_sets)):
            depth = base + k
            if depth >= len(path):
                break
            node = path[depth]
            node.truncated = True
            asleep = scheduler.sleep_sets[k]
            node.backtrack.update(
                name for name in node.enabled if name not in asleep
            )

    def _truncation_races(self, path: List[_Node]) -> None:
        """Reverse a truncated run's final step with earlier steps.

        The step that kills a run (a simulated crash, or the step-budget
        boundary) is dependent with *everything*: it decides which of
        the other threads' operations ever execute, which footprint
        dependence cannot see.  Example: in ``U1 U1 U2 U2 U2 C C†`` the
        crashed checker read must also be reversed with U2's
        footprint-independent ``read version`` at step 4 — the
        truncated trace where U2 dies before that read is distinct, and
        no footprint race ever requests it.  Walk the final step up past
        the most recent earlier step of another thread not ordered
        before it; if the reversed run is also truncated, its own sweep
        walks one step further.
        """
        if not path:
            return
        last = len(path) - 1
        steps = [
            (node.chosen, node.footprints[node.chosen]) for node in path
        ]
        pasts = _causal_pasts(steps)
        thread = steps[last][0]
        thread_past = pasts[last] | {last}
        for i in range(last - 1, -1, -1):
            if i in thread_past or steps[i][0] == thread:
                continue
            self.races_detected += 1
            self._add_backtrack(path, thread, i, last, steps, pasts, None)
            break

    def _peek_selection(
        self,
        path: List[_Node],
        done_map: Optional[Dict[int, Set[str]]] = None,
        length: Optional[int] = None,
    ) -> Optional[Tuple[int, str, FrozenSet[str]]]:
        """Next branch — deepest node with an unexplored feasible thread.

        Non-mutating except that bounded-infeasible candidates are
        dropped from backtrack sets (they can never be selected, and
        leaving them would let them falsely cover later reversals; the
        drop is identical wherever the peek happens, so speculative
        peeks stay exact).  ``done_map``/``length`` overlay speculative
        done-sets and a speculative path truncation — the parallel
        coordinator's what-if view.
        """
        bound = self.preemption_bound
        limit = len(path) if length is None else length
        for depth in range(limit - 1, self._frozen - 1, -1):
            node = path[depth]
            if done_map is None:
                done = node.done
            else:
                done = done_map.setdefault(depth, set(node.done))
            candidates = node.backtrack - done - set(node.sleep)
            if candidates and bound is not None:
                previous = path[depth - 1].chosen if depth > 0 else None
                infeasible = {
                    name
                    for name in candidates
                    if node.paid
                    + _preemption_cost(previous, name, node.enabled)
                    > bound
                }
                node.backtrack -= infeasible
                candidates -= infeasible
            if not candidates:
                continue
            if self.directed is not None:
                choice = min(
                    candidates,
                    key=lambda name: (
                        self.directed.rank(name, node.pending[name]), name
                    ),
                )
            else:
                choice = min(candidates)
            if node.truncated or bound is not None:
                new_sleep: FrozenSet[str] = frozenset()
            else:
                chosen_footprint = node.footprints[choice]
                new_sleep = frozenset(
                    name
                    for name in (node.sleep | done)
                    if name != choice
                    and name in node.footprints
                    and not ops_dependent(
                        node.footprints[name], chosen_footprint
                    )
                )
            return depth, choice, new_sleep
        return None

    def _commit_selection(
        self,
        path: List[_Node],
        depth: int,
        choice: str,
        new_sleep: FrozenSet[str],
    ) -> Tuple[List[str], FrozenSet[str], Optional[Any]]:
        """Take the branch: mark it done, truncate the path, build seed."""
        node = path[depth]
        node.done.add(choice)
        node.chosen = choice
        del path[depth + 1:]
        prefix = [n.chosen for n in path]
        return prefix, new_sleep, node.snapshot

    def _select_next(
        self, path: List[_Node]
    ) -> Optional[Tuple[List[str], FrozenSet[str], Optional[Any]]]:
        """Deepest node with an unexplored awake backtrack thread.

        Truncates the path there, marks the branch done, and returns the
        (prefix, initial sleep, pipeline snapshot) of the next run.
        ``None`` means the whole reduced tree is explored.
        """
        selection = self._peek_selection(path)
        if selection is None:
            return None
        return self._commit_selection(path, *selection)

    def _finish(self, result: ExplorationResult, start: float) -> None:
        """Close out one exploration: pipeline copy, wall-clock, metrics."""
        _fill_pipeline(result, self.pipeline)
        _fill_cache_stats(result, self.cache)
        if self.cache is not None:
            self.cache.record_metrics(program=self.program.name)
        if result.pipeline_stats is not None:
            _record_pipeline_stats(result.pipeline_stats, self.program.name)
        result.wall_seconds = perf_counter() - start
        labels = {"program": self.program.name}
        obs_metrics.inc(
            "explorer.pruned_runs", self.pruned_runs,
            explorer="dpor", **labels,
        )
        obs_metrics.inc("dpor.races_detected", self.races_detected, **labels)
        obs_metrics.inc(
            "dpor.backtrack_points", self.backtrack_points, **labels
        )
        obs_metrics.inc("dpor.pruned_runs", self.pruned_runs, **labels)
        _record_exploration(result, "dpor")
