"""Dynamic partial-order reduction (Flanagan–Godefroid) for exploration.

Sleep sets (:mod:`repro.sim.reduction`) prune branches the DFS has
already committed to visiting: every awake sibling at every node is
pushed, and only later filtered.  DPOR inverts the commitment: a node
starts with a *single* branch (the one the run actually took), and other
branches are added **only where a race is observed** — two dependent
operations of different threads, unordered by happens-before, that could
have executed in the opposite order.  One representative schedule per
Mazurkiewicz trace survives; interleavings that merely permute
independent operations are never run at all.

The algorithm is the classic stateless one (Flanagan & Godefroid,
POPL'05), combined with sleep sets as in the paper's section 5:

* every executed run is swept once to compute the **happens-before
  relation** over its steps (program order + dependence, transitively
  closed), using the same conservative footprints as sleep sets
  (:func:`~repro.sim.reduction.op_footprint` /
  :func:`~repro.sim.reduction.ops_dependent`);
* at every fresh node, each enabled thread's pending operation is
  checked against the **last** dependent, possibly-co-enabled, earlier
  step not already ordered before it; a race adds the thread (or, via
  the paper's ``E``-set refinement, the threads that causally lead to
  it) to the *backtrack set* of the node before that step;
* the next run branches at the **deepest** node whose backtrack set
  holds an unexplored, awake thread, with the sleep-set discipline of
  :class:`~repro.sim.reduction.SleepSetExplorer` deciding who is awake.

Two honest conservatisms, mirroring the sleep-set explorer:

* **co-enabledness** is approximated: pairs that provably cannot be
  simultaneously enabled (a blocking acquire and a release of the same
  mutex, two releases, spawn/join against the target thread's own
  steps) are excluded from race detection; every other dependent pair
  counts as a race.  Extra backtrack points cost schedules, never
  outcomes.
* a run truncated by a **simulated crash** (process death) or the step
  budget breaks the maximal-execution assumption: operations that were
  pending when the run died never executed, so commuting arguments do
  not apply.  Every fresh node of a truncated run gets its full awake
  set as backtrack points and re-branches with an empty sleep set —
  exactly the credit the sleep-set explorer refuses for such runs.

Unsound combinations are rejected at construction with
:class:`ValueError` rather than silently degrading:

* ``memoize=True`` — state memoization aborts runs at revisited states,
  hiding exactly the races DPOR needs to observe to schedule backtrack
  points;
* ``preemption_bound`` — a backtrack point presumes the reversed branch
  is explorable, which a preemption budget can forbid;
* ``workers > 1`` (enforced by :func:`~repro.sim.explorer.make_explorer`)
  — backtrack sets are discovered from earlier runs, which sharded
  workers cannot see across processes.

``targets=`` race-directed bias composes: it only reorders which awake
thread extends a run and which backtrack candidate is taken first, and
DPOR's correctness is independent of visit order.

The differential tests in ``tests/sim/test_dpor.py`` check outcome-set
equality against plain DFS and the sleep-set explorer over randomly
generated programs (crashing ones included) and every bug kernel;
``benchmarks/bench_dpor.py`` records the schedule counts next to the
sleep-set explorer's.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import ReproError
from repro.obs import metrics as obs_metrics
from repro.sim import ops
from repro.sim.engine import Engine, RunResult, RunStatus
from repro.sim.explorer import (
    ExplorationResult,
    Predicate,
    _default_predicate,
    _DirectedPolicy,
    _fill_pipeline,
    _outcome_key,
    _record_exploration,
    _record_pipeline_stats,
)
from repro.sim.program import Program
from repro.sim.reduction import Token, op_footprint, ops_dependent
from repro.sim.scheduler import Scheduler
from repro.sim.thread import ThreadState

__all__ = ["DPORExplorer"]

#: Acquire-shaped operations that block while the mutex is held.
_BLOCKING_ACQUIRE = (ops.Acquire, ops._ReacquireAfterWait)


def _may_be_coenabled(
    thread_a: str, op_a: ops.Op, thread_b: str, op_b: ops.Op
) -> bool:
    """Whether two pending operations could be enabled simultaneously.

    Conservative: ``True`` unless provably impossible.  A race between
    never-co-enabled operations is not a race — and filtering these
    pairs matters beyond schedule counts: a blocked acquire's real race
    partner is the *earlier acquire* of the same mutex (reversing whole
    critical sections), which only becomes the most recent candidate
    once the release in between is excluded.
    """
    for x, y in ((op_a, op_b), (op_b, op_a)):
        if (
            isinstance(x, _BLOCKING_ACQUIRE)
            and isinstance(y, ops.Release)
            and x.lock == y.lock
        ):
            # The acquire is enabled only while the lock is free; a
            # pending release means it is held.
            return False
    if (
        isinstance(op_a, ops.Release)
        and isinstance(op_b, ops.Release)
        and op_a.lock == op_b.lock
    ):
        return False  # one holder, one pending release
    for op, other in ((op_a, thread_b), (op_b, thread_a)):
        if isinstance(op, (ops.Spawn, ops.Join)) and op.thread == other:
            # Spawn pends while the target has no steps yet; join is
            # enabled only once the target has none left.
            return False
    return True


def _live_pending(engine: Engine) -> Dict[str, ops.Op]:
    """Pending operation of every started, unfinished thread.

    Includes threads blocked on a lock or semaphore (``RUNNABLE`` but not
    enabled); excludes unstarted threads (their first operation cannot
    run before the spawn executes, and any race it participates in is
    still pending — and detected — at every later node) and parked
    threads (a condition/barrier wait has already executed as a step;
    the engine-driven wakeup is not a schedulable transition).
    """
    return {
        name: thread.pending
        for name, thread in engine.threads.items()
        if thread.state is ThreadState.RUNNABLE and thread.pending is not None
    }


def _causal_pasts(
    steps: Sequence[Tuple[str, FrozenSet[Token]]]
) -> List[Set[int]]:
    """``pasts[i]``: indices of steps that happen-before step ``i``.

    Happens-before is program order plus dependence between executed
    steps, transitively closed.  Quadratic in the run length, which is
    bounded by the tiny kernel programs this simulator targets; the
    sweep runs once per executed schedule.
    """
    pasts: List[Set[int]] = []
    last: Dict[str, int] = {}
    for i, (thread, footprint) in enumerate(steps):
        past: Set[int] = set()
        previous = last.get(thread)
        if previous is not None:
            past |= pasts[previous]
            past.add(previous)
        for j in range(i):
            if j in past:
                continue
            if ops_dependent(steps[j][1], footprint):
                past |= pasts[j]
                past.add(j)
        pasts.append(past)
        last[thread] = i
    return pasts


class _DPORPruned(ReproError):
    """Raised by the scheduler when every enabled thread is asleep."""


class _Node:
    """One decision point along the current execution path.

    Nodes persist across re-executions: when the search backtracks to a
    node, everything above it (and the node's own enabled set, pending
    footprints, and sleep context) is unchanged — only the branches
    below vary.
    """

    __slots__ = (
        "enabled", "footprints", "pending", "sleep", "backtrack", "done",
        "chosen", "truncated", "snapshot",
    )

    def __init__(
        self,
        enabled: List[str],
        footprints: Dict[str, FrozenSet[Token]],
        pending: Dict[str, ops.Op],
        sleep: FrozenSet[str],
        snapshot: Optional[Any],
    ):
        self.enabled = enabled
        self.footprints = footprints
        self.pending = pending
        #: Sleep set in effect when the node was first reached on the
        #: current branch of its ancestors (fixed for the node's
        #: lifetime: changing any ancestor's branch discards the node).
        self.sleep = sleep
        self.backtrack: Set[str] = set()
        self.done: Set[str] = set()
        self.chosen: Optional[str] = None
        #: A run through this node crashed or hit the step budget; later
        #: branches here start with an empty sleep set (no reduction
        #: credit from truncated runs).
        self.truncated = False
        self.snapshot = snapshot


class _DPORScheduler(Scheduler):
    """Replay a prefix, then extend while recording fresh decisions.

    Identical extension discipline to the sleep-set scheduler: threads
    asleep at a node are never chosen, sleepers wake when a dependent
    operation executes, and a node whose enabled threads are all asleep
    prunes the run.  Beyond the prefix it records, per decision, the
    enabled set, every enabled thread's pending op and footprint, the
    running sleep set, and (with a pipeline) a branch-point snapshot.
    """

    def __init__(
        self,
        prefix: Sequence[str],
        initial_sleep: FrozenSet[str],
        pipeline: Optional[Any] = None,
        directed: Optional[_DirectedPolicy] = None,
    ):
        self.prefix = list(prefix)
        self.initial_sleep = initial_sleep
        self.pipeline = pipeline
        self.directed = directed
        self.engine: Optional[Engine] = None
        self.cond_locks: Dict[str, str] = {}
        self.choices: List[str] = []
        self.enabled_sets: List[List[str]] = []
        self.sleep_sets: List[FrozenSet[str]] = []
        self.footprints: List[Dict[str, FrozenSet[Token]]] = []
        self.pending_ops: List[Dict[str, ops.Op]] = []
        self.node_snapshots: List[Optional[Any]] = []
        self._sleep: FrozenSet[str] = frozenset()
        self._last: Optional[str] = None
        self.pruned = False

    def attach(self, engine: Engine) -> None:
        self.engine = engine
        self.cond_locks = dict(engine.program.conditions)

    def choose(self, enabled: Sequence[str], step: int) -> str:
        ordered = sorted(enabled)
        index = len(self.choices)
        if index < len(self.prefix):
            choice = self.prefix[index]
            if choice not in enabled:
                raise ReproError(
                    f"DPOR prefix diverged at step {index}: {choice!r} not "
                    f"enabled in {ordered}"
                )
            self.choices.append(choice)
            self._last = choice
            return choice

        if index == len(self.prefix):
            self._sleep = self.initial_sleep
        assert self.engine is not None
        # Footprints and pending ops of every *live* thread, not just the
        # enabled ones: race detection must see the next transition of a
        # thread blocked on a lock (its acquire races with the earlier
        # acquire that blocked it — the deadlock-producing reversal).
        pending = _live_pending(self.engine)
        footprints = {
            name: op_footprint(op, name, self.cond_locks)
            for name, op in pending.items()
        }
        self.enabled_sets.append(ordered)
        self.sleep_sets.append(self._sleep)
        self.footprints.append(footprints)
        self.pending_ops.append(pending)
        awake = [name for name in ordered if name not in self._sleep]
        if self.pipeline is not None:
            # Aligned with enabled_sets even for the pruned node; only
            # nodes with two awake threads can ever branch.
            self.node_snapshots.append(
                self.pipeline.snapshot() if len(awake) > 1 else None
            )
        if not awake:
            self.pruned = True
            raise _DPORPruned("all enabled threads are asleep")
        if self.directed is not None:
            keys = self.directed.key_enabled(self.engine, awake, self._last)
            choice = min(awake, key=keys.__getitem__)
        elif self._last in awake:
            choice = self._last
        else:
            choice = awake[0]
        chosen_footprint = footprints[choice]
        self._sleep = frozenset(
            name
            for name in self._sleep
            if name in footprints
            and not ops_dependent(footprints[name], chosen_footprint)
        )
        self.choices.append(choice)
        self._last = choice
        return choice

    def reset(self) -> None:
        self.choices = []
        self.enabled_sets = []
        self.sleep_sets = []
        self.footprints = []
        self.pending_ops = []
        self.node_snapshots = []
        self._sleep = frozenset()
        self._last = None
        self.pruned = False


class DPORExplorer:
    """Stateless exploration with dynamic partial-order reduction."""

    def __init__(
        self,
        program: Program,
        max_schedules: int = 20000,
        max_steps: int = 5000,
        keep_matches: int = 16,
        memoize: bool = False,
        preemption_bound: Optional[int] = None,
        pipeline: Optional[Any] = None,
        targets: Optional[Sequence[Any]] = None,
    ):
        if memoize:
            raise ValueError(
                "DPORExplorer cannot be combined with memoize=True: state "
                "memoization aborts runs at revisited states, hiding the "
                "races DPOR needs to observe to place backtrack points; "
                "use reduction='sleepset' (whose subtrees are "
                "state-determined) if memoization is required"
            )
        if preemption_bound is not None:
            raise ValueError(
                "DPORExplorer cannot be combined with a preemption bound: "
                "a backtrack point presumes the reversed branch is "
                "explorable, which a preemption budget can forbid — the "
                "outcome-set guarantee would silently break"
            )
        self.program = program
        self.max_schedules = max_schedules
        self.max_steps = max_steps
        self.keep_matches = keep_matches
        #: Race-directed visit ordering (see
        #: :class:`~repro.sim.explorer.Explorer`): biases which awake
        #: thread extends a run and which backtrack candidate is taken
        #: first.  DPOR's coverage is independent of visit order, so the
        #: bias composes freely.
        self.directed = _DirectedPolicy(targets) if targets else None
        #: Streaming detector pipeline (duck-typed); findings cover only
        #: the representative schedules DPOR actually runs.
        self.pipeline = pipeline
        #: Telemetry of the most recent exploration.
        self.pruned_runs = 0
        self.races_detected = 0
        self.backtrack_points = 0

    def explore(
        self,
        predicate: Optional[Predicate] = None,
        stop_on_first: bool = False,
    ) -> ExplorationResult:
        """Explore with reduction; result fields as in :class:`Explorer`."""
        start = perf_counter()
        match = predicate if predicate is not None else _default_predicate
        result = ExplorationResult(
            program=self.program.name, schedules_run=0, complete=True
        )
        self.pruned_runs = 0
        self.races_detected = 0
        self.backtrack_points = 0
        path: List[_Node] = []
        prefix: List[str] = []
        sleep: FrozenSet[str] = frozenset()
        snapshot: Optional[Any] = None
        attempts = 0
        while True:
            if attempts >= self.max_schedules:
                result.complete = False
                break
            attempts += 1
            run, scheduler, final_tail = self._run_once(prefix, sleep, snapshot)
            base = len(prefix)
            pruned_tail = self._extend_path(path, scheduler, base)
            result.states_expanded += len(scheduler.choices) - base
            self._detect_races(
                path, base, pruned_tail if pruned_tail is not None else final_tail
            )
            if run is None:
                self.pruned_runs += 1
            else:
                result.schedules_run += 1
                result.statuses[run.status] += 1
                key = _outcome_key(run)
                result.outcomes[key] = result.outcomes.get(key, 0) + 1
                if match(run):
                    result.match_count += 1
                    if len(result.matching) < self.keep_matches:
                        result.matching.append(run)
                    if result.first_match_schedule is None:
                        result.first_match_schedule = list(run.schedule)
                        result.schedules_to_first_finding = result.schedules_run
                    if stop_on_first:
                        result.complete = False
                        break
                if run.status in (RunStatus.CRASH, RunStatus.ABORTED):
                    self._handle_truncated(path, scheduler, base)
                    self._truncation_races(path)
            selected = self._select_next(path)
            if selected is None:
                break
            prefix, sleep, snapshot = selected
        self._finish(result, start)
        return result

    # -- internals ----------------------------------------------------------

    def _run_once(
        self,
        prefix: List[str],
        sleep: FrozenSet[str],
        snapshot: Optional[Any],
    ) -> Tuple[Optional[RunResult], _DPORScheduler, Optional["_Node"]]:
        pipeline = self.pipeline
        hook = None
        if pipeline is not None:
            if snapshot is not None:
                pipeline.restore(snapshot)
            else:
                pipeline.begin_pass()
            hook = pipeline.feed
        scheduler = _DPORScheduler(
            prefix, sleep, pipeline=pipeline, directed=self.directed
        )
        engine = Engine(
            self.program, scheduler, max_steps=self.max_steps, event_hook=hook
        )
        scheduler.attach(engine)
        try:
            run = engine.run()
        except _DPORPruned:
            return None, scheduler, None
        if pipeline is not None:
            pipeline.finish_pass()
        # A run can end with transitions still pending — deadlocked
        # threads, or survivors of a crash.  The engine never asks the
        # scheduler at such a state, so synthesize a terminal node for
        # race detection: a blocked acquire still races with the earlier
        # step that blocked it.  The node never branches (no enabled
        # threads), so backtrack points land at ancestors only.
        tail: Optional[_Node] = None
        final_pending = _live_pending(engine)
        if final_pending:
            footprints = {
                name: op_footprint(op, name, scheduler.cond_locks)
                for name, op in final_pending.items()
            }
            tail = _Node([], footprints, final_pending, frozenset(), None)
        return run, scheduler, tail

    def _extend_path(
        self, path: List[_Node], scheduler: _DPORScheduler, base: int
    ) -> Optional[_Node]:
        """Append this run's fresh decisions as nodes; return the pruned
        tail node (recorded but never executed from), if any."""
        tail: Optional[_Node] = None
        snapshots = scheduler.node_snapshots
        for k in range(len(scheduler.enabled_sets)):
            node = _Node(
                enabled=scheduler.enabled_sets[k],
                footprints=scheduler.footprints[k],
                pending=scheduler.pending_ops[k],
                sleep=scheduler.sleep_sets[k],
                snapshot=snapshots[k] if snapshots else None,
            )
            depth = base + k
            if depth < len(scheduler.choices):
                node.chosen = scheduler.choices[depth]
                node.done.add(node.chosen)
                node.backtrack.add(node.chosen)
                path.append(node)
            else:
                # The all-asleep node a pruned run stopped at: it can
                # never branch (selection skips sleepers), but its
                # pending operations still participate in race
                # detection against the prefix.
                tail = node
        return tail

    def _detect_races(
        self, path: List[_Node], base: int, tail: Optional[_Node]
    ) -> None:
        """One FG race sweep over the current execution.

        For every *fresh* node (depth ≥ ``base``) and every thread
        enabled there, find the most recent earlier step that is
        dependent with the thread's pending operation, possibly
        co-enabled with it, and not already ordered before it by
        happens-before — and add backtrack points at the node that step
        executed from.  Older nodes were swept when they were fresh;
        re-sweeping them could only repeat the same additions.
        """
        steps = [
            (node.chosen, node.footprints[node.chosen]) for node in path
        ]
        step_ops = [node.pending[node.chosen] for node in path]
        pasts = _causal_pasts(steps)
        last: Dict[str, int] = {}
        total = len(path) + (1 if tail is not None else 0)
        for depth in range(total):
            node = path[depth] if depth < len(path) else tail
            if depth >= base:
                for thread in sorted(node.pending):
                    previous = last.get(thread)
                    if previous is None:
                        thread_past: Set[int] = set()
                    else:
                        thread_past = pasts[previous] | {previous}
                    footprint = node.footprints[thread]
                    pending = node.pending[thread]
                    for i in range(depth - 1, -1, -1):
                        if i in thread_past:
                            continue  # ordered before the pending op
                        if not ops_dependent(steps[i][1], footprint):
                            continue
                        if not _may_be_coenabled(
                            steps[i][0], step_ops[i], thread, pending
                        ):
                            continue
                        self.races_detected += 1
                        self._add_backtrack(
                            path[i], thread, i, depth, steps, pasts, footprint
                        )
                        break  # only the most recent such step (FG)
            if depth < len(path):
                last[steps[depth][0]] = depth

    def _add_backtrack(
        self,
        pre: _Node,
        thread: str,
        i: int,
        depth: int,
        steps: List[Tuple[str, FrozenSet[Token]]],
        pasts: List[Set[int]],
        pending_fp: Optional[FrozenSet[Token]],
    ) -> None:
        """Schedule the reversal of a race at the node before step ``i``.

        The source-set rule (Abdulla et al., POPL'14).  Build the
        reversal witness ``v``: the steps after ``i`` that are *not*
        happens-after it, followed by the racing pending operation.  Its
        *initials* are the threads whose first event in ``v`` has no
        dependent predecessor within ``v`` — the threads that can lead
        the reversed execution from ``pre``.  If any initial is already
        scheduled at ``pre`` (explored, or awaiting selection outside
        the sleep set) the reversal is covered and nothing is added;
        otherwise one initial suffices.

        This subsumes Flanagan–Godefroid's "add the racing thread"
        rule, which loses reversals when that thread is sleep-blocked at
        ``pre`` and the commutation path into the covering sibling
        crosses a dependent step — an initial of ``v`` other than the
        racing thread is awake exactly there.  ``pending_fp`` is
        ``None`` for truncation races, whose final step is dependent
        with everything and hence an initial only when ``v`` has no
        other element.
        """
        witness: List[Tuple[str, Optional[FrozenSet[Token]]]] = [
            steps[j] for j in range(i + 1, depth) if i not in pasts[j]
        ]
        witness.append((thread, pending_fp))
        initials: Set[str] = set()
        seen: Set[str] = set()
        for k, (name, footprint) in enumerate(witness):
            if name in seen:
                continue
            seen.add(name)
            if footprint is None:
                if k == 0:
                    initials.add(name)
                continue
            if all(
                witness[m][1] is not None
                and not ops_dependent(witness[m][1], footprint)
                for m in range(k)
            ):
                initials.add(name)
        covered = pre.done | (pre.backtrack - set(pre.sleep))
        if covered & initials:
            return
        enabled = set(pre.enabled)
        candidates = initials & enabled
        awake = candidates - set(pre.sleep)
        if awake:
            additions = {min(awake)}
        elif candidates:
            additions = {min(candidates)}
        else:
            # No initial is enabled at ``pre`` (a lock held across the
            # witness window, or similar): branch over everything.
            additions = enabled
        before = len(pre.backtrack)
        pre.backtrack |= additions
        self.backtrack_points += len(pre.backtrack) - before

    def _handle_truncated(
        self, path: List[_Node], scheduler: _DPORScheduler, base: int
    ) -> None:
        """Withdraw reduction credit below a crashed / step-aborted run.

        The run's tail never executed, so independence-based commuting
        arguments do not apply: every fresh node re-branches over its
        full awake set and subsequent branches there start with an empty
        sleep set — mirroring the sleep-set explorer, which pushes the
        siblings of truncated runs with empty sleep sets.
        """
        for k in range(len(scheduler.enabled_sets)):
            depth = base + k
            if depth >= len(path):
                break
            node = path[depth]
            node.truncated = True
            asleep = scheduler.sleep_sets[k]
            node.backtrack.update(
                name for name in node.enabled if name not in asleep
            )

    def _truncation_races(self, path: List[_Node]) -> None:
        """Reverse a truncated run's final step with earlier steps.

        The step that kills a run (a simulated crash, or the step-budget
        boundary) is dependent with *everything*: it decides which of
        the other threads' operations ever execute, which footprint
        dependence cannot see.  Example: in ``U1 U1 U2 U2 U2 C C†`` the
        crashed checker read must also be reversed with U2's
        footprint-independent ``read version`` at step 4 — the
        truncated trace where U2 dies before that read is distinct, and
        no footprint race ever requests it.  Walk the final step up past
        the most recent earlier step of another thread not ordered
        before it; if the reversed run is also truncated, its own sweep
        walks one step further.
        """
        if not path:
            return
        last = len(path) - 1
        steps = [
            (node.chosen, node.footprints[node.chosen]) for node in path
        ]
        pasts = _causal_pasts(steps)
        thread = steps[last][0]
        thread_past = pasts[last] | {last}
        for i in range(last - 1, -1, -1):
            if i in thread_past or steps[i][0] == thread:
                continue
            self.races_detected += 1
            self._add_backtrack(path[i], thread, i, last, steps, pasts, None)
            break

    def _select_next(
        self, path: List[_Node]
    ) -> Optional[Tuple[List[str], FrozenSet[str], Optional[Any]]]:
        """Deepest node with an unexplored awake backtrack thread.

        Truncates the path there, marks the branch done, and returns the
        (prefix, initial sleep, pipeline snapshot) of the next run.
        ``None`` means the whole reduced tree is explored.
        """
        for depth in range(len(path) - 1, -1, -1):
            node = path[depth]
            candidates = node.backtrack - node.done - set(node.sleep)
            if not candidates:
                continue
            if self.directed is not None:
                choice = min(
                    candidates,
                    key=lambda name: (
                        self.directed.rank(name, node.pending[name]), name
                    ),
                )
            else:
                choice = min(candidates)
            if node.truncated:
                new_sleep: FrozenSet[str] = frozenset()
            else:
                chosen_footprint = node.footprints[choice]
                new_sleep = frozenset(
                    name
                    for name in (node.sleep | node.done)
                    if name != choice
                    and name in node.footprints
                    and not ops_dependent(
                        node.footprints[name], chosen_footprint
                    )
                )
            node.done.add(choice)
            node.chosen = choice
            del path[depth + 1:]
            prefix = [n.chosen for n in path]
            return prefix, new_sleep, node.snapshot
        return None

    def _finish(self, result: ExplorationResult, start: float) -> None:
        """Close out one exploration: pipeline copy, wall-clock, metrics."""
        _fill_pipeline(result, self.pipeline)
        if result.pipeline_stats is not None:
            _record_pipeline_stats(result.pipeline_stats, self.program.name)
        result.wall_seconds = perf_counter() - start
        labels = {"program": self.program.name}
        obs_metrics.inc(
            "explorer.pruned_runs", self.pruned_runs,
            explorer="dpor", **labels,
        )
        obs_metrics.inc("dpor.races_detected", self.races_detected, **labels)
        obs_metrics.inc(
            "dpor.backtrack_points", self.backtrack_points, **labels
        )
        obs_metrics.inc("dpor.pruned_runs", self.pruned_runs, **labels)
        _record_exploration(result, "dpor")
