"""Trace events emitted by the simulation engine.

Every scheduler step that executes an operation appends exactly one event to
the run's :class:`~repro.sim.trace.Trace`.  Events carry a global sequence
number (the total order of the interleaving), the executing thread, and
operation-specific payload.  Detectors consume traces, never live engine
state, so a trace is a complete, self-contained record of one interleaving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

__all__ = [
    "Event",
    "ReadEvent",
    "WriteEvent",
    "AtomicUpdateEvent",
    "AcquireEvent",
    "ReleaseEvent",
    "TryAcquireEvent",
    "RWAcquireEvent",
    "RWReleaseEvent",
    "WaitParkEvent",
    "WaitResumeEvent",
    "NotifyEvent",
    "SemAcquireEvent",
    "SemReleaseEvent",
    "BarrierEvent",
    "SpawnEvent",
    "JoinEvent",
    "SendEvent",
    "RecvEvent",
    "SelectEvent",
    "FenceEvent",
    "FlushEvent",
    "YieldEvent",
    "ThreadStartEvent",
    "ThreadFinishEvent",
    "ThreadCrashEvent",
    "DeadlockEvent",
]


@dataclass(frozen=True)
class Event:
    """Base event: ``seq`` is the position in the global interleaving order."""

    seq: int
    thread: str
    label: Optional[str] = None

    @property
    def is_memory_access(self) -> bool:
        """Whether this event reads or writes a shared variable."""
        return isinstance(self, (ReadEvent, WriteEvent, AtomicUpdateEvent))

    @property
    def is_sync(self) -> bool:
        """Whether this event is a synchronisation operation."""
        return isinstance(
            self,
            (
                AcquireEvent,
                ReleaseEvent,
                TryAcquireEvent,
                RWAcquireEvent,
                RWReleaseEvent,
                WaitParkEvent,
                WaitResumeEvent,
                NotifyEvent,
                SemAcquireEvent,
                SemReleaseEvent,
                BarrierEvent,
                SpawnEvent,
                JoinEvent,
                SendEvent,
                RecvEvent,
                SelectEvent,
                FenceEvent,
            ),
        )

    def describe(self) -> str:
        """One-line rendering used by :meth:`repro.sim.trace.Trace.format`."""
        return f"{type(self).__name__}"


@dataclass(frozen=True)
class ReadEvent(Event):
    """Thread read ``var`` and observed ``value``."""

    var: str = ""
    value: Any = None

    def describe(self) -> str:
        return f"read  {self.var} -> {self.value!r}"


@dataclass(frozen=True)
class WriteEvent(Event):
    """Thread wrote ``value`` to ``var`` (``old`` is the overwritten value)."""

    var: str = ""
    value: Any = None
    old: Any = None

    def describe(self) -> str:
        return f"write {self.var} <- {self.value!r}"


@dataclass(frozen=True)
class AtomicUpdateEvent(Event):
    """Thread atomically replaced ``old`` with ``value`` on ``var``."""

    var: str = ""
    value: Any = None
    old: Any = None

    def describe(self) -> str:
        return f"atomic {self.var}: {self.old!r} -> {self.value!r}"


@dataclass(frozen=True)
class AcquireEvent(Event):
    """Thread acquired mutex ``lock``."""

    lock: str = ""

    def describe(self) -> str:
        return f"acquire {self.lock}"


@dataclass(frozen=True)
class ReleaseEvent(Event):
    """Thread released mutex ``lock``."""

    lock: str = ""

    def describe(self) -> str:
        return f"release {self.lock}"


@dataclass(frozen=True)
class TryAcquireEvent(Event):
    """Thread try-acquired ``lock``; ``success`` records the outcome."""

    lock: str = ""
    success: bool = False

    def describe(self) -> str:
        verdict = "ok" if self.success else "busy"
        return f"try-acquire {self.lock} [{verdict}]"


@dataclass(frozen=True)
class RWAcquireEvent(Event):
    """Thread acquired reader-writer lock ``rwlock`` in ``mode`` ('r'/'w')."""

    rwlock: str = ""
    mode: str = "r"

    def describe(self) -> str:
        return f"rw-acquire {self.rwlock} [{self.mode}]"


@dataclass(frozen=True)
class RWReleaseEvent(Event):
    """Thread released its ``mode`` hold on ``rwlock``."""

    rwlock: str = ""
    mode: str = "r"

    def describe(self) -> str:
        return f"rw-release {self.rwlock} [{self.mode}]"


@dataclass(frozen=True)
class WaitParkEvent(Event):
    """Thread parked on condition ``cond``, releasing ``lock``."""

    cond: str = ""
    lock: str = ""

    def describe(self) -> str:
        return f"wait-park {self.cond} (released {self.lock})"


@dataclass(frozen=True)
class WaitResumeEvent(Event):
    """Thread woke from ``cond`` and re-acquired ``lock``."""

    cond: str = ""
    lock: str = ""

    def describe(self) -> str:
        return f"wait-resume {self.cond} (re-acquired {self.lock})"


@dataclass(frozen=True)
class NotifyEvent(Event):
    """Thread notified ``cond``; ``woken`` lists the released thread names.

    An empty ``woken`` tuple records a *lost* notification — the signature
    of order-violation lost-wakeup bugs.
    """

    cond: str = ""
    woken: Tuple[str, ...] = ()
    all: bool = False

    def describe(self) -> str:
        kind = "notify-all" if self.all else "notify"
        woken = ",".join(self.woken) if self.woken else "<lost>"
        return f"{kind} {self.cond} -> {woken}"


@dataclass(frozen=True)
class SemAcquireEvent(Event):
    """Thread decremented semaphore ``sem`` to ``value``."""

    sem: str = ""
    value: int = 0

    def describe(self) -> str:
        return f"sem-acquire {self.sem} (now {self.value})"


@dataclass(frozen=True)
class SemReleaseEvent(Event):
    """Thread incremented semaphore ``sem`` to ``value``."""

    sem: str = ""
    value: int = 0

    def describe(self) -> str:
        return f"sem-release {self.sem} (now {self.value})"


@dataclass(frozen=True)
class BarrierEvent(Event):
    """Thread passed ``barrier``; ``released`` names the whole party if this
    arrival tripped the barrier."""

    barrier: str = ""
    released: Tuple[str, ...] = ()

    def describe(self) -> str:
        return f"barrier {self.barrier}"


@dataclass(frozen=True)
class SpawnEvent(Event):
    """Thread started the declared thread ``target``."""

    target: str = ""

    def describe(self) -> str:
        return f"spawn {self.target}"


@dataclass(frozen=True)
class JoinEvent(Event):
    """Thread observed ``target`` finished."""

    target: str = ""

    def describe(self) -> str:
        return f"join {self.target}"


@dataclass(frozen=True)
class SendEvent(Event):
    """Thread sent ``value`` into channel ``chan`` (now ``depth`` deep)."""

    chan: str = ""
    value: Any = None
    depth: int = 0

    def describe(self) -> str:
        return f"send {self.chan} <- {self.value!r} (depth {self.depth})"


@dataclass(frozen=True)
class RecvEvent(Event):
    """Thread received ``value`` from channel ``chan``."""

    chan: str = ""
    value: Any = None

    def describe(self) -> str:
        return f"recv {self.chan} -> {self.value!r}"


@dataclass(frozen=True)
class SelectEvent(Event):
    """Thread selected ``value`` from ``chan``, the first ready of ``chans``."""

    chan: str = ""
    value: Any = None
    chans: Tuple[str, ...] = ()

    def describe(self) -> str:
        return f"select [{', '.join(self.chans)}] -> {self.chan}: {self.value!r}"


@dataclass(frozen=True)
class FenceEvent(Event):
    """Thread passed a store fence (its store buffer was empty)."""

    def describe(self) -> str:
        return "fence"


@dataclass(frozen=True)
class FlushEvent(Event):
    """A buffered store of ``thread`` became globally visible.

    Emitted by the flush pseudo-step of the TSO memory model; ``thread``
    is the *owning* thread (the one whose earlier ``Write`` is landing),
    even though the transition was scheduled as its flush pseudo-thread.
    """

    var: str = ""
    value: Any = None
    old: Any = None

    def describe(self) -> str:
        return f"flush {self.var} <- {self.value!r}"


@dataclass(frozen=True)
class YieldEvent(Event):
    """Pure scheduling point (from ``Yield`` or each tick of ``Sleep``)."""

    def describe(self) -> str:
        return "yield"


@dataclass(frozen=True)
class ThreadStartEvent(Event):
    """Thread began execution (its generator reached the first yield)."""

    def describe(self) -> str:
        return "start"


@dataclass(frozen=True)
class ThreadFinishEvent(Event):
    """Thread body returned normally."""

    def describe(self) -> str:
        return "finish"


@dataclass(frozen=True)
class ThreadCrashEvent(Event):
    """Thread body raised :class:`~repro.errors.SimCrash` (modelled crash)."""

    reason: str = ""

    def describe(self) -> str:
        return f"CRASH: {self.reason}"


@dataclass(frozen=True)
class DeadlockEvent(Event):
    """Global stall: no thread is enabled but some are unfinished.

    ``blocked`` maps each stuck thread to a description of what it waits
    on.  Covers both classic deadlocks (circular lock wait) and hangs
    (lost wakeups, missed semaphore posts); the run status distinguishes
    them by inspecting what the blocked threads wait on.
    """

    blocked: Tuple[Tuple[str, str], ...] = ()

    def describe(self) -> str:
        parts = ", ".join(f"{t} on {w}" for t, w in self.blocked)
        return f"DEADLOCK: {parts}"
