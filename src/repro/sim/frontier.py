"""Serializable exploration checkpoints: pause a search, resume it later.

A depth-first search over schedules is fully described by its **pending
stack** — the prefixes (plus per-entry bookkeeping) not yet expanded —
together with the cumulative tallies already collected and, under
``memoize=True``, the set of state fingerprints already expanded.
:class:`ExplorationFrontier` captures exactly that, as plain picklable
data, so an exploration can stop after a *slice* of its schedule budget
and a later call (in the same process, or a different worker after a
round-trip through :meth:`ExplorationFrontier.to_bytes`) resumes at the
precise node the slice stopped on.

The invariant the property tests pin (``tests/sim/test_frontier.py``):
for any slice sizes, the final slice's :class:`~repro.sim.explorer.
ExplorationResult` is identical to one unsliced ``explore()`` — same
outcome multiset, same match count, same ``schedules_to_first_finding``,
same cache counters — because the LIFO stack preserves the exact DFS
visit order and every tally is carried cumulatively.

Which explorers can checkpoint:

* plain DFS (:class:`~repro.sim.explorer.Explorer`) — composes with
  ``memoize`` (the fingerprint set travels in the frontier),
  ``preemption_bound`` (the paid-preemption count is part of each stack
  entry already), and ``targets`` (directed ordering is baked into the
  pushed sibling order, so no extra state is needed);
* sleep sets (:class:`~repro.sim.reduction.SleepSetExplorer`) — each
  pending entry carries its sleep set; composes with ``memoize`` and
  ``targets``.

What is *refused*, each with a :class:`ValueError` the tests assert:

* a streaming detector pipeline (snapshots hold live analysis state
  that must not cross a serialization boundary);
* DPOR (:mod:`repro.sim.dpor`, :mod:`repro.sim.dpor_parallel`) — its
  backtrack sets are discovered *behind* the DFS position, so a
  truncated pending stack under-approximates the remaining work; the
  service falls back to restart-with-doubled-budget instead
  (``docs/allocator.md`` documents the trade);
* parallel explorers (``workers > 1``) — the in-flight worker stacks
  are not serially meaningful mid-round.

Randomized strategies (random / PCT sampling in the estimator and the
allocator) do not need a frontier at all: they resume by **seed
offset** — run seeds ``[k, k+n)`` now, ``[k+n, ...)`` later.
"""

from __future__ import annotations

import pickle
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.engine import RunResult
from repro.sim.statecache import StateCache

__all__ = ["ExplorationFrontier", "SLICEABLE_EXPLORERS", "reject_slicing"]

#: Explorer kinds that support frontier checkpointing (the ``explorer``
#: tag stored in every frontier; everything else refuses with ValueError).
SLICEABLE_EXPLORERS = ("dfs", "sleepset")


@dataclass
class ExplorationFrontier:
    """One paused exploration: pending work + cumulative tallies.

    Produced by ``Explorer.explore(slice_budget=...)`` /
    ``SleepSetExplorer.explore(slice_budget=...)`` on the result's
    ``frontier`` field; consumed by the next ``explore(frontier=...)``
    call on an identically-configured explorer over the same program.
    """

    #: Which search produced this frontier ("dfs" or "sleepset").
    explorer: str
    #: Program name, cross-checked on resume (a frontier must never be
    #: replayed against a different program).
    program: str
    #: Whether the paused search was memoizing (must match on resume —
    #: the carried fingerprint set is meaningless otherwise).
    memoize: bool
    #: The pending LIFO stack, top last.  DFS entries are
    #: ``(prefix, paid_preemptions)``; sleep-set entries are
    #: ``(prefix, sorted_sleep_tuple)``.  Pipeline snapshots are never
    #: present (slicing refuses pipelines).
    pending: List[Tuple] = field(default_factory=list)
    #: Schedule attempts consumed so far (completed runs + memoized
    #: aborts + sleep-pruned branches) — the cumulative charge against
    #: ``max_schedules``.
    attempts: int = 0
    # -- cumulative result tallies (ExplorationResult fields) ---------------
    schedules_run: int = 0
    statuses: Counter = field(default_factory=Counter)
    outcomes: Dict[Tuple, int] = field(default_factory=dict)
    matching: List[RunResult] = field(default_factory=list)
    match_count: int = 0
    first_match_schedule: Optional[List[str]] = None
    schedules_to_first_finding: Optional[int] = None
    cache_hits: int = 0
    states_expanded: int = 0
    preemptions_spent: int = 0
    #: Sleep-set-pruned branches so far (sleepset frontiers only).
    pruned_runs: int = 0
    #: Wall-clock already spent across earlier slices.
    wall_seconds: float = 0.0
    #: Exported :class:`~repro.sim.statecache.StateCache` state
    #: ``(seen fingerprints, hits, lookups)``; ``None`` when unmemoized.
    cache_state: Optional[Tuple[Any, int, int]] = None

    # -- resume-side helpers ------------------------------------------------

    def check(self, explorer: str, program: str, memoize: bool) -> None:
        """Validate that this frontier may resume on the given explorer."""
        if self.explorer != explorer:
            raise ValueError(
                f"frontier was produced by a {self.explorer!r} search and "
                f"cannot resume a {explorer!r} one"
            )
        if self.program != program:
            raise ValueError(
                f"frontier belongs to program {self.program!r}, not "
                f"{program!r}"
            )
        if self.memoize != memoize:
            raise ValueError(
                f"frontier was checkpointed with memoize={self.memoize} and "
                f"cannot resume with memoize={memoize}: the carried "
                f"fingerprint set would be "
                + ("discarded" if self.memoize else "fabricated")
            )

    def restore_cache(self) -> Optional[StateCache]:
        """Rebuild the carried state cache (``None`` when unmemoized)."""
        if self.cache_state is None:
            return None
        seen, hits, lookups = self.cache_state
        cache = StateCache()
        cache._seen = set(seen)
        cache.hits = hits
        cache.lookups = lookups
        return cache

    # -- serialization ------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Pickle this frontier for a worker round-trip or persistence.

        Everything inside is plain data: prefixes are thread-name lists,
        fingerprints are nested tuples of atoms, and the retained
        ``matching`` runs already cross fork boundaries in the parallel
        explorer.
        """
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "ExplorationFrontier":
        frontier = pickle.loads(blob)
        if not isinstance(frontier, cls):
            raise ValueError(
                f"blob does not decode to an ExplorationFrontier "
                f"(got {type(frontier).__name__})"
            )
        return frontier

    def summary(self) -> str:
        """One-line rendering for logs and dashboards."""
        return (
            f"{self.program} [{self.explorer}]: {len(self.pending)} pending "
            f"prefixes after {self.attempts} attempts, "
            f"{self.schedules_run} schedules run"
        )


def reject_slicing(explorer_label: str, reason: str, slice_budget, frontier):
    """Shared refusal for explorers that cannot checkpoint.

    Called at the top of every non-sliceable ``explore()`` so the
    refusal is an explicit, tested contract rather than a silently
    ignored keyword.
    """
    if slice_budget is not None or frontier is not None:
        raise ValueError(
            f"{explorer_label} does not support sliced resumable "
            f"exploration: {reason}"
        )
