"""Parallel dynamic partial-order reduction: speculative branch items.

Parallelising DPOR is harder than parallelising the plain DFS
(:mod:`repro.sim.parallel`): the branches a DPOR search explores are
*discovered from earlier runs* — a subtree's races plant backtrack
points at ancestor nodes, so which branch runs next depends on every
branch that ran before it.  A prefix-sharded split would either miss
reversals or have to over-approximate them.

:class:`ParallelDPORExplorer` keeps the serial search's decisions
bit-identical by **speculating and validating**:

* a serial coordinator runs the root search exactly like
  :class:`~repro.sim.dpor.DPORExplorer` until the current path holds
  several pending backtrack candidates;
* the pending candidates are snapshotted as speculative **work items**
  in predicted serial order (deepest node first — the order the serial
  search would take them), each carrying its frozen ancestor context:
  per depth, the executed thread, its operation and footprint, plus the
  branch node's sleep set and detector-pipeline snapshot;
* items go onto a shared queue; each worker pulls the next free item and
  explores the confined subtree with per-worker race detection — races
  within the subtree are planted live (ancestor state is frozen during a
  serial subtree, so the worker's covered-checks equal the serial
  ones), races targeting frozen ancestors travel back as
  ``(kind, depth, initials, thread)`` records;
* the coordinator accepts results in item-key order: it merges the
  serially-first item, replants its ancestor races with *live* node
  state (reproducing the serial covered-check at the serial moment),
  then recomputes the true next selection.  If it matches the next
  speculated item, that item is accepted too; if not — a race moved the
  frontier — the remaining speculative results are discarded as wasted
  wall-clock (never wrong answers) and a new round is dispatched from
  the corrected frontier.

The serially-first item of every round is always valid (it *is* the
true next selection), so every round makes progress and termination is
inherited from the serial search.  Accepted items merge in key order,
which is serial order, so a complete parallel exploration reproduces
the serial ``outcomes`` (with counts), ``matching``,
``schedules_to_first_finding``, and ``stop_on_first`` behaviour
bit-for-bit.  Two intentional deviations, shared with
:class:`~repro.sim.parallel.ParallelExplorer`: the ``max_schedules``
budget is enforced per item (each gets the budget left when its round
was dispatched), and with ``memoize=True`` each item prunes against its
own per-process :class:`~repro.sim.statecache.StateCache` — states
revisited across items are re-explored (lost hits, never false ones),
so the outcome *set* is preserved but abort counts may differ from the
serial memoized search.

Items are indivisible in this version: a worker never donates half of a
DPOR subtree (its pending candidates reference live local node state),
so load balance comes from item granularity (``shard_factor`` items per
worker and round) rather than mid-item stealing.  Workers are forked
per round — the fork inherits the program's generator closures and the
item specs for free, and only results cross a queue.

Falls back to the serial :class:`~repro.sim.dpor.DPORExplorer` loop
(identical results by construction) when ``fork`` is unavailable,
``workers=1``, or the machine has a single CPU; ``pool="fork"`` forces
worker processes, ``pool="none"`` forbids them — same semantics as the
plain parallel explorer.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
from time import perf_counter
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.sim.dpor import DPORExplorer, _Node
from repro.sim.frontier import reject_slicing
from repro.sim.explorer import (
    ExplorationResult,
    Predicate,
    _merge_pipeline_stats,
)
from repro.sim.program import Program

__all__ = ["ParallelDPORExplorer"]

#: Frozen ancestor record: (thread, executed footprint, executed op,
#: preemptions paid above the node).  Everything a worker's race sweep
#: needs from the steps above its item root.
AncestorStep = Tuple[str, FrozenSet[Any], Any, int]


class _ItemSpec:
    """One speculative work item: a branch plus its frozen context."""

    __slots__ = (
        "index", "depth", "choice", "prefix", "sleep", "snapshot", "ancestors",
    )

    def __init__(
        self,
        index: int,
        depth: int,
        choice: str,
        prefix: List[str],
        sleep: FrozenSet[str],
        snapshot: Optional[Any],
        ancestors: List[AncestorStep],
    ):
        self.index = index
        self.depth = depth
        self.choice = choice
        self.prefix = prefix
        self.sleep = sleep
        self.snapshot = snapshot
        self.ancestors = ancestors


class _ItemPayload:
    """What a worker sends back for one explored item."""

    __slots__ = (
        "result", "races", "pruned_runs", "races_detected",
        "backtrack_points", "attempts",
    )

    def __init__(
        self,
        result: ExplorationResult,
        races: List[Tuple[str, int, FrozenSet[str], str]],
        pruned_runs: int,
        races_detected: int,
        backtrack_points: int,
        attempts: int,
    ):
        self.result = result
        self.races = races
        self.pruned_runs = pruned_runs
        self.races_detected = races_detected
        self.backtrack_points = backtrack_points
        self.attempts = attempts


#: Worker-process state inherited via fork (set before the round's
#: processes start): program, predicate, options, and the round's specs.
_WORKER: Dict[str, Any] = {}

#: How long (seconds) the parent waits on the result queue before
#: checking for dead workers instead of blocking forever.
_RESULT_POLL_SECONDS = 5.0


def _base_nodes(ancestors: Sequence[AncestorStep]) -> List[_Node]:
    """Rebuild frozen ancestor nodes from their picklable records."""
    base = []
    for thread, footprint, op, paid in ancestors:
        node = _Node(
            enabled=[],
            footprints={thread: footprint},
            pending={thread: op},
            sleep=frozenset(),
            snapshot=None,
            paid=paid,
        )
        node.chosen = thread
        node.done.add(thread)
        base.append(node)
    return base


def _explore_item(spec: _ItemSpec) -> _ItemPayload:
    options = _WORKER["options"]
    factory = options["pipeline_factory"]
    explorer = DPORExplorer(
        _WORKER["program"],
        max_schedules=options["budget"],
        max_steps=options["max_steps"],
        keep_matches=options["keep_matches"],
        memoize=options["memoize"],
        preemption_bound=options["preemption_bound"],
        pipeline=factory() if factory is not None else None,
        targets=options["targets"],
    )
    start = perf_counter()
    result = explorer._explore_item(
        _base_nodes(spec.ancestors),
        (list(spec.prefix), spec.sleep, spec.snapshot),
        _WORKER["predicate"],
        options["stop_on_first"],
    )
    result.wall_seconds = perf_counter() - start
    return _ItemPayload(
        result,
        explorer.ancestor_races,
        explorer.pruned_runs,
        explorer.races_detected,
        explorer.backtrack_points,
        explorer._attempts,
    )


def _round_worker(work: Any, results: Any) -> None:
    """Worker loop for one round: pull spec indices until the sentinel."""
    specs = _WORKER["specs"]
    while True:
        index = work.get()
        if index is None:
            break
        results.put((index, _explore_item(specs[index])))


class ParallelDPORExplorer:
    """Speculative parallel DPOR over a per-round worker pool.

    Drop-in for :class:`~repro.sim.dpor.DPORExplorer`: same constructor
    bounds, same ``explore`` signature, same
    :class:`~repro.sim.explorer.ExplorationResult` — bit-identical to
    the serial search for complete explorations (see module docstring
    for the two documented budget/memoization deviations).
    """

    def __init__(
        self,
        program: Program,
        workers: Optional[int] = None,
        max_schedules: int = 20000,
        max_steps: int = 5000,
        keep_matches: int = 16,
        memoize: bool = False,
        preemption_bound: Optional[int] = None,
        shard_factor: int = 2,
        pool: str = "auto",
        pipeline_factory: Optional[Any] = None,
        targets: Optional[Sequence[Any]] = None,
    ):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if pool not in ("auto", "fork", "none"):
            raise ValueError(
                f"pool must be 'auto', 'fork', or 'none', got {pool!r}"
            )
        if pool == "fork" and "fork" not in multiprocessing.get_all_start_methods():
            raise ValueError(
                "pool='fork' requested but the 'fork' start method is not "
                "available on this platform; use pool='auto' to fall back "
                "to in-process execution"
            )
        self.program = program
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.max_schedules = max_schedules
        self.max_steps = max_steps
        self.keep_matches = keep_matches
        self.memoize = memoize
        self.preemption_bound = preemption_bound
        self.shard_factor = shard_factor
        self.pool = pool
        self.pipeline_factory = pipeline_factory
        self.targets = list(targets) if targets else None
        #: Telemetry of the most recent exploration (mirrors the serial
        #: explorer's counters, summed across the coordinator and every
        #: accepted item, plus speculation accounting).
        self.pruned_runs = 0
        self.races_detected = 0
        self.backtrack_points = 0
        self.rounds = 0
        self.items_dispatched = 0
        self.items_accepted = 0
        self.items_wasted = 0
        #: Per-round schedule counts of the accepted items (benchmarks
        #: model worker makespans from these deterministic run-units).
        self.round_sizes: List[List[int]] = []

    def explore(
        self,
        predicate: Optional[Predicate] = None,
        stop_on_first: bool = False,
        *,
        slice_budget: Optional[int] = None,
        frontier: Optional[Any] = None,
    ) -> ExplorationResult:
        """Run the parallel search; result fields as in :class:`Explorer`.

        Refuses ``slice_budget``/``frontier`` (``ValueError``), like the
        serial DPOR search it mirrors.
        """
        reject_slicing(
            "parallel DPOR",
            "backtrack sets and speculative worker rounds are not serially "
            "meaningful mid-search; restart with a larger max_schedules "
            "instead",
            slice_budget, frontier,
        )
        start = perf_counter()
        factory = self.pipeline_factory
        serial = DPORExplorer(
            self.program,
            max_schedules=self.max_schedules,
            max_steps=self.max_steps,
            keep_matches=self.keep_matches,
            memoize=self.memoize,
            preemption_bound=self.preemption_bound,
            pipeline=factory() if factory is not None else None,
            targets=self.targets,
        )
        self.rounds = 0
        self.items_dispatched = 0
        self.items_accepted = 0
        self.items_wasted = 0
        self.round_sizes = []
        result = serial._begin(predicate, stop_on_first)
        deferred: List[_ItemPayload] = []
        use_pool = self._use_pool()
        cap = max(2, self.workers * self.shard_factor)
        stopped = False
        while serial._seed is not None and not stopped:
            if serial._attempts >= self.max_schedules:
                result.complete = False
                break
            specs = self._speculate(serial, cap) if use_pool else []
            if len(specs) < 2:
                # Narrow frontier (or no pool): one serial iteration —
                # run the committed seed, sweep races, select the next.
                if not serial._step(result):
                    break
                continue
            self.rounds += 1
            self.items_dispatched += len(specs)
            budget = max(1, self.max_schedules - serial._attempts)
            with obs_profile.span("dpor_parallel.dispatch"):
                payloads = self._dispatch(
                    specs, predicate, stop_on_first, budget
                )
            with obs_profile.span("dpor_parallel.merge"):
                stopped = not self._accept(
                    serial, result, specs, payloads, deferred, stop_on_first
                )
            if not stopped:
                serial._seed = serial._select_next(serial._path)
        serial._finish(result, start)
        # Fold the per-item fields the serial _finish just overwrote
        # from the coordinator's own pipeline/cache.
        for payload in deferred:
            item = payload.result
            result.cache_lookups += item.cache_lookups
            result.cache_states += item.cache_states
            if item.detector_reports:
                if result.detector_reports is None:
                    result.detector_reports = dict(item.detector_reports)
                else:
                    for name, report in item.detector_reports.items():
                        target = result.detector_reports.get(name)
                        if target is None:
                            result.detector_reports[name] = report
                        else:
                            for finding in report:
                                target.add(finding)
            result.pipeline_stats = _merge_pipeline_stats(
                result.pipeline_stats, item.pipeline_stats
            )
        result.shards = self.items_accepted
        self.pruned_runs = serial.pruned_runs
        self.races_detected = serial.races_detected
        self.backtrack_points = serial.backtrack_points
        self._record()
        return result

    # -- internals -----------------------------------------------------------

    def _use_pool(self) -> bool:
        if self.pool == "fork":
            return True
        if self.pool == "none" or self.workers <= 1:
            return False
        if "fork" not in multiprocessing.get_all_start_methods():
            return False
        return (os.cpu_count() or 1) > 1

    def _speculate(
        self, serial: DPORExplorer, cap: int
    ) -> List[_ItemSpec]:
        """Snapshot the pending frontier as items in predicted serial order.

        Item 0 is the already-committed next seed; further items are
        what-if selections over shadow done-sets (the real nodes are not
        mutated).  Ancestor contexts are copied now, before acceptance
        commits truncate the path.
        """
        path = serial._path
        prefix, sleep, snapshot = serial._seed
        if not prefix:
            return []  # the root run: nothing to freeze yet
        depth = len(prefix) - 1
        specs = [
            self._spec(0, path, depth, prefix[-1], sleep, snapshot)
        ]
        done_map: Dict[int, Any] = {}
        length = len(path)
        while len(specs) < cap:
            selection = serial._peek_selection(path, done_map, length)
            if selection is None:
                break
            depth, choice, new_sleep = selection
            done_map[depth].add(choice)
            length = depth + 1
            specs.append(
                self._spec(
                    len(specs), path, depth, choice, new_sleep,
                    path[depth].snapshot,
                )
            )
        return specs

    def _spec(
        self,
        index: int,
        path: List[_Node],
        depth: int,
        choice: str,
        sleep: FrozenSet[str],
        snapshot: Optional[Any],
    ) -> _ItemSpec:
        ancestors: List[AncestorStep] = [
            (
                node.chosen,
                node.footprints[node.chosen],
                node.pending[node.chosen],
                node.paid,
            )
            for node in path[:depth]
        ]
        branch = path[depth]
        ancestors.append(
            (choice, branch.footprints[choice], branch.pending[choice],
             branch.paid)
        )
        prefix = [node.chosen for node in path[:depth]] + [choice]
        return _ItemSpec(index, depth, choice, prefix, sleep, snapshot, ancestors)

    def _dispatch(
        self,
        specs: List[_ItemSpec],
        predicate: Optional[Predicate],
        stop_on_first: bool,
        budget: int,
    ) -> List[Optional[_ItemPayload]]:
        """Fork a round of workers over the shared item queue."""
        options = {
            "budget": budget,
            "max_steps": self.max_steps,
            "keep_matches": self.keep_matches,
            "memoize": self.memoize,
            "preemption_bound": self.preemption_bound,
            "stop_on_first": stop_on_first,
            "pipeline_factory": self.pipeline_factory,
            "targets": self.targets,
        }
        context = multiprocessing.get_context("fork")
        work = context.Queue()
        results = context.Queue()
        _WORKER.update(
            program=self.program,
            predicate=predicate,
            options=options,
            specs=specs,
        )
        count = min(self.workers, len(specs))
        try:
            for index in range(len(specs)):
                work.put(index)
            for _ in range(count):
                work.put(None)
            procs = [
                context.Process(target=_round_worker, args=(work, results),
                                daemon=True)
                for _ in range(count)
            ]
            for proc in procs:
                proc.start()
            payloads: List[Optional[_ItemPayload]] = [None] * len(specs)
            received = 0
            try:
                while received < len(specs):
                    try:
                        index, payload = results.get(
                            timeout=_RESULT_POLL_SECONDS
                        )
                    except queue_mod.Empty:
                        if any(not proc.is_alive() for proc in procs):
                            raise RuntimeError(
                                "a parallel DPOR worker died before "
                                "reporting its items"
                            )
                        continue
                    payloads[index] = payload
                    received += 1
            finally:
                for proc in procs:
                    proc.join()
            return payloads
        finally:
            _WORKER.clear()

    def _accept(
        self,
        serial: DPORExplorer,
        result: ExplorationResult,
        specs: List[_ItemSpec],
        payloads: List[Optional[_ItemPayload]],
        deferred: List[_ItemPayload],
        stop_on_first: bool,
    ) -> bool:
        """Validate and merge one round in serial order.

        Returns ``False`` to end the whole search (``stop_on_first``
        matched, or the budget ran out mid-round).
        """
        sizes: List[int] = []
        self.round_sizes.append(sizes)
        for position, (spec, payload) in enumerate(zip(specs, payloads)):
            if payload is None:
                self.items_wasted += len(specs) - position
                return True
            if position > 0:
                selection = serial._peek_selection(serial._path)
                if selection != (spec.depth, spec.choice, spec.sleep):
                    # A prior item's races moved the frontier: the rest
                    # of the round was speculated from a stale view.
                    self.items_wasted += len(specs) - position
                    return True
                serial._commit_selection(serial._path, *selection)
            self.items_accepted += 1
            sizes.append(payload.result.schedules_run)
            self._merge_item(serial, result, payload, deferred)
            if stop_on_first and payload.result.match_count:
                result.complete = False
                self.items_wasted += len(specs) - position - 1
                return False
            if serial._attempts >= self.max_schedules:
                result.complete = False
                self.items_wasted += len(specs) - position - 1
                return False
        return True

    def _merge_item(
        self,
        serial: DPORExplorer,
        result: ExplorationResult,
        payload: _ItemPayload,
        deferred: List[_ItemPayload],
    ) -> None:
        item = payload.result
        if result.first_match_schedule is None and item.first_match_schedule:
            result.first_match_schedule = list(item.first_match_schedule)
            if item.schedules_to_first_finding is not None:
                # Serial-order position: every run merged so far precedes
                # this item's subtree.
                result.schedules_to_first_finding = (
                    result.schedules_run + item.schedules_to_first_finding
                )
        result.schedules_run += item.schedules_run
        result.states_expanded += item.states_expanded
        result.preemptions_spent += item.preemptions_spent
        result.cache_hits += item.cache_hits
        result.statuses.update(item.statuses)
        for outcome, count in item.outcomes.items():
            result.outcomes[outcome] = result.outcomes.get(outcome, 0) + count
        result.match_count += item.match_count
        for run in item.matching:
            if len(result.matching) >= self.keep_matches:
                break
            result.matching.append(run)
        result.complete = result.complete and item.complete
        deferred.append(payload)
        serial._attempts += payload.attempts
        serial.pruned_runs += payload.pruned_runs
        serial.races_detected += payload.races_detected
        serial.backtrack_points += payload.backtrack_points
        # Replant the item's ancestor races with live node state, in
        # detection order — reproducing exactly the additions (and
        # covered-check refusals) the serial search would have made.
        path = serial._path
        steps = [
            (node.chosen, node.footprints[node.chosen]) for node in path
        ]
        for kind, index, initials, thread in payload.races:
            if kind == "race":
                serial._plant(path, index, set(initials), thread, steps)
            else:  # "boundary": bounded-mode conservative point
                serial._plant_boundary(
                    path[index],
                    steps[index - 1][0] if index > 0 else None,
                    set(initials),
                    thread,
                )

    def _record(self) -> None:
        registry = obs_metrics.active()
        if registry is None:
            return
        program = self.program.name
        registry.inc("dpor.parallel.rounds", self.rounds, program=program)
        registry.inc(
            "dpor.parallel.items_dispatched", self.items_dispatched,
            program=program,
        )
        registry.inc(
            "dpor.parallel.items_accepted", self.items_accepted,
            program=program,
        )
        registry.inc(
            "dpor.parallel.items_wasted", self.items_wasted, program=program
        )
