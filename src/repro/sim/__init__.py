"""Deterministic concurrency simulator.

This package is the substrate that stands in for the real multithreaded
C/C++ executions of the ASPLOS'08 study.  It provides:

* an operation DSL for writing small concurrent programs
  (:mod:`repro.sim.ops`),
* virtual threads and a step-by-step engine with full schedule control
  (:mod:`repro.sim.engine`),
* pluggable schedulers, from random stress to PCT
  (:mod:`repro.sim.scheduler`),
* exhaustive bounded interleaving exploration
  (:mod:`repro.sim.explorer`), spread across processes with work
  stealing by :mod:`repro.sim.parallel` and cut down by the
  partial-order reductions of :mod:`repro.sim.reduction` (sleep sets)
  and :mod:`repro.sim.dpor` (dynamic POR with source sets) and the
  state-fingerprint memoization of :mod:`repro.sim.statecache`, and
* record/replay of interleavings (:mod:`repro.sim.replay`).
"""

from repro.sim.dpor import DPORExplorer
from repro.sim.engine import Engine, RunResult, RunStatus, run_program
from repro.sim.explorer import (
    REDUCTIONS,
    ExplorationResult,
    Explorer,
    enumerate_outcomes,
    find_schedule,
)
from repro.sim.frontier import ExplorationFrontier
from repro.sim.generate import (
    FuzzReport,
    GeneratorConfig,
    fuzz_explorers,
    generate_program,
)
from repro.sim.memory import (
    MEMORY_MODELS,
    MemoryModel,
    SCMemory,
    SharedMemory,
    TSOMemory,
    make_memory_model,
)
from repro.sim.minimize import MinimalWitness, minimize_preemptions, preemption_count
from repro.sim.parallel import ParallelExplorer
from repro.sim.reduction import SleepSetExplorer, op_footprint, ops_dependent
from repro.sim.statecache import StateCache, canonical_value, state_fingerprint
from repro.sim.ops import (
    Acquire,
    AcquireRead,
    AcquireWrite,
    AtomicUpdate,
    BarrierWait,
    Fence,
    Join,
    Notify,
    NotifyAll,
    Op,
    Read,
    Recv,
    Release,
    ReleaseRead,
    ReleaseWrite,
    Select,
    SemAcquire,
    SemRelease,
    Send,
    Sleep,
    Spawn,
    TryAcquire,
    Wait,
    Write,
    Yield,
)
from repro.sim.program import Program
from repro.sim.replay import replay, replay_prefix, schedule_from_json, schedule_to_json
from repro.sim.scheduler import (
    CooperativeScheduler,
    FixedScheduler,
    PCTScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
)
from repro.sim.trace import Trace

__all__ = [
    "Engine",
    "RunResult",
    "RunStatus",
    "run_program",
    "Explorer",
    "ExplorationResult",
    "ExplorationFrontier",
    "enumerate_outcomes",
    "find_schedule",
    "Program",
    "Trace",
    "replay",
    "replay_prefix",
    "MinimalWitness",
    "minimize_preemptions",
    "preemption_count",
    "SleepSetExplorer",
    "DPORExplorer",
    "REDUCTIONS",
    "ParallelExplorer",
    "StateCache",
    "state_fingerprint",
    "canonical_value",
    "op_footprint",
    "ops_dependent",
    "GeneratorConfig",
    "generate_program",
    "fuzz_explorers",
    "FuzzReport",
    "schedule_to_json",
    "schedule_from_json",
    "Scheduler",
    "RandomScheduler",
    "CooperativeScheduler",
    "RoundRobinScheduler",
    "PCTScheduler",
    "FixedScheduler",
    "Op",
    "Read",
    "Write",
    "AtomicUpdate",
    "Acquire",
    "Release",
    "TryAcquire",
    "AcquireRead",
    "AcquireWrite",
    "ReleaseRead",
    "ReleaseWrite",
    "Wait",
    "Notify",
    "NotifyAll",
    "SemAcquire",
    "SemRelease",
    "BarrierWait",
    "Spawn",
    "Join",
    "Yield",
    "Sleep",
    "Send",
    "Recv",
    "Select",
    "Fence",
    "MEMORY_MODELS",
    "MemoryModel",
    "SCMemory",
    "TSOMemory",
    "SharedMemory",
    "make_memory_model",
]
