"""Scheduling policies for the simulation engine.

A scheduler sees the set of *enabled* threads at each step and picks one.
All policies are deterministic given their seed, which is what makes every
experiment in this repository reproducible run-to-run.

Provided policies:

* :class:`RandomScheduler` — uniform random choice; the baseline "stress
  testing" model.  The study's motivation section observes that random
  stress testing manifests these bugs rarely; bench E2 quantifies that.
* :class:`CooperativeScheduler` — run one thread until it blocks (a
  non-preemptive scheduler).  Many of the studied bugs *cannot* manifest
  under it, which demonstrates why context switches at unfortunate points
  are the trigger.
* :class:`RoundRobinScheduler` — strict alternation each step.
* :class:`PCTScheduler` — Probabilistic Concurrency Testing (priority
  scheduling with ``depth`` random priority-change points), the classic
  guided-random policy with a manifestation-probability guarantee.
* :class:`FixedScheduler` — replay an explicit thread-name sequence.
"""

from __future__ import annotations

import abc
import random
from typing import List, Optional, Sequence

from repro.errors import ReplayError, SchedulerError

__all__ = [
    "Scheduler",
    "RandomScheduler",
    "CooperativeScheduler",
    "RoundRobinScheduler",
    "PCTScheduler",
    "FixedScheduler",
]


class Scheduler(abc.ABC):
    """Strategy interface: pick the next thread to execute."""

    @abc.abstractmethod
    def choose(self, enabled: Sequence[str], step: int) -> str:
        """Return one element of ``enabled``; ``step`` is the decision index."""

    def reset(self) -> None:
        """Restore initial state so the same instance can drive a fresh run."""


class RandomScheduler(Scheduler):
    """Uniformly random choice among enabled threads (seeded)."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def choose(self, enabled: Sequence[str], step: int) -> str:
        return self._rng.choice(sorted(enabled))

    def reset(self) -> None:
        self._rng = random.Random(self.seed)


class CooperativeScheduler(Scheduler):
    """Run the current thread until it blocks or finishes, then move on.

    Threads are preferred in the (stable) order they first become enabled.
    This models a non-preemptive runtime: no interleaving happens inside a
    thread's enabled run, so bugs that require a context switch between two
    specific accesses never manifest here.
    """

    def __init__(self) -> None:
        self._current: Optional[str] = None

    def choose(self, enabled: Sequence[str], step: int) -> str:
        if self._current in enabled:
            return self._current
        self._current = sorted(enabled)[0]
        return self._current

    def reset(self) -> None:
        self._current = None


class RoundRobinScheduler(Scheduler):
    """Strictly alternate among enabled threads in sorted order."""

    def __init__(self) -> None:
        self._last: Optional[str] = None

    def choose(self, enabled: Sequence[str], step: int) -> str:
        order = sorted(enabled)
        if self._last is None:
            choice = order[0]
        else:
            after = [t for t in order if t > self._last]
            choice = after[0] if after else order[0]
        self._last = choice
        return choice

    def reset(self) -> None:
        self._last = None


class PCTScheduler(Scheduler):
    """Probabilistic Concurrency Testing (Burckhardt et al.).

    Each thread gets a distinct random priority on first sight; the highest
    priority enabled thread runs.  ``depth - 1`` priority-change points are
    sampled uniformly over the first ``horizon`` steps; when execution
    reaches one, the running thread's priority drops below everything else.
    With depth *d*, PCT finds any bug of depth *d* with probability at least
    ``1 / (n * k^(d-1))`` — the study's observation that real bugs have
    small depth (few ordering constraints, Finding 8) is exactly why PCT
    works well in practice.
    """

    def __init__(self, seed: int = 0, depth: int = 2, horizon: int = 200):
        if depth < 1:
            raise SchedulerError("PCT depth must be >= 1")
        self.seed = seed
        self.depth = depth
        self.horizon = horizon
        self.reset()

    def reset(self) -> None:
        self._rng = random.Random(self.seed)
        self._priorities: dict = {}
        self._next_low = -1.0
        self._change_points = set(
            self._rng.sample(range(0, max(self.horizon, self.depth)), self.depth - 1)
        )

    def choose(self, enabled: Sequence[str], step: int) -> str:
        for t in sorted(enabled):
            if t not in self._priorities:
                self._priorities[t] = self._rng.random()
        choice = max(sorted(enabled), key=lambda t: self._priorities[t])
        if step in self._change_points:
            # Demote the thread that just ran below every other priority.
            self._priorities[choice] = self._next_low
            self._next_low -= 1.0
        return choice


class FixedScheduler(Scheduler):
    """Replay an explicit sequence of thread choices.

    With ``strict=True`` (default) a choice that is not enabled raises
    :class:`~repro.errors.ReplayError`; with ``strict=False`` the scheduler
    falls back to the first enabled thread in sorted order, and likewise
    when the schedule runs out.
    """

    def __init__(self, schedule: Sequence[str], strict: bool = True):
        self.schedule: List[str] = list(schedule)
        self.strict = strict
        self._index = 0

    def choose(self, enabled: Sequence[str], step: int) -> str:
        if self._index < len(self.schedule):
            wanted = self.schedule[self._index]
            self._index += 1
            if wanted in enabled:
                return wanted
            if self.strict:
                raise ReplayError(
                    f"replay step {self._index - 1}: thread {wanted!r} is not "
                    f"enabled (enabled: {sorted(enabled)})"
                )
            return sorted(enabled)[0]
        if self.strict:
            raise ReplayError(
                f"replay schedule exhausted after {len(self.schedule)} steps "
                f"but the program still has enabled threads"
            )
        return sorted(enabled)[0]

    def reset(self) -> None:
        self._index = 0
