"""Seeded random concurrent-program generation (fuzzing substrate).

The detectors, explorer, and reduction machinery all need adversarial
inputs beyond the hand-written kernels.  :func:`generate_program`
produces a random — but **deterministic given the seed** — concurrent
program from a constrained grammar:

* straight-line thread bodies over a small shared-variable alphabet;
* optional well-nested critical sections (single global lock order, so
  generated programs never deadlock unless ``allow_deadlock``);
* optional crash guards (``SimCrash`` when a read observes a threshold);
* optional deliberately-inverted lock pairs (``allow_deadlock=True``),
  which make ABBA deadlocks reachable.

Programs from this generator terminate by construction (no loops), which
makes them exhaustively explorable — the property the fuzz harness
(:func:`fuzz_explorers`) relies on when cross-checking plain DFS against
sleep-set reduction on thousands of programs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import SimCrash
from repro.sim.explorer import Explorer
from repro.sim.ops import Acquire, Read, Release, Write
from repro.sim.program import Program

__all__ = ["GeneratorConfig", "generate_program", "fuzz_explorers", "FuzzReport"]


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs for the random program family."""

    threads: Tuple[int, int] = (2, 3)
    ops_per_thread: Tuple[int, int] = (1, 4)
    variables: int = 2
    locks: int = 2
    locked_section_probability: float = 0.5
    crash_probability: float = 0.2
    allow_deadlock: bool = False


def generate_program(seed: int, config: GeneratorConfig = GeneratorConfig()) -> Program:
    """A random terminating program, deterministic in ``seed``."""
    rng = random.Random(seed)
    variables = [f"v{i}" for i in range(config.variables)]
    locks = [f"L{i}" for i in range(config.locks)]
    thread_count = rng.randint(*config.threads)

    def make_body(body_plan):
        lock_plan, op_plan, crash_threshold = body_plan

        def body():
            for lock in lock_plan:
                yield Acquire(lock)
            for kind, var in op_plan:
                if kind == "read":
                    value = yield Read(var)
                    if crash_threshold is not None and value >= crash_threshold:
                        raise SimCrash(f"guard tripped on {var}")
                else:
                    current = yield Read(var)
                    yield Write(var, current + 1)
            for lock in reversed(lock_plan):
                yield Release(lock)

        return body

    threads = {}
    for index in range(thread_count):
        lock_plan: List[str] = []
        if rng.random() < config.locked_section_probability and locks:
            first = rng.choice(locks)
            lock_plan = [first]
            if config.allow_deadlock and len(locks) >= 2 and rng.random() < 0.5:
                second = rng.choice([l for l in locks if l != first])
                lock_plan.append(second)
            elif not config.allow_deadlock and rng.random() < 0.3:
                # Well-ordered nesting (sorted): deadlock-free by design.
                others = [l for l in locks if l > first]
                if others:
                    lock_plan.append(rng.choice(others))
        op_count = rng.randint(*config.ops_per_thread)
        op_plan = [
            (rng.choice(["read", "write"]), rng.choice(variables))
            for _ in range(op_count)
        ]
        crash_threshold = (
            rng.randint(1, 3) if rng.random() < config.crash_probability else None
        )
        threads[f"T{index}"] = make_body((lock_plan, op_plan, crash_threshold))
    return Program(
        f"generated-{seed}",
        threads=threads,
        initial={v: 0 for v in variables},
        locks=locks,
    )


@dataclass
class FuzzReport:
    """Outcome of cross-checking the explorers over many random programs."""

    programs: int = 0
    mismatches: int = 0
    skipped: int = 0
    total_full_schedules: int = 0
    total_reduced_schedules: int = 0
    mismatch_seeds: List[int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.mismatch_seeds is None:
            self.mismatch_seeds = []

    @property
    def clean(self) -> bool:
        """No divergence between plain DFS and the reduced search."""
        return self.mismatches == 0

    def reduction_factor(self) -> float:
        """How many times fewer schedules the reduced search ran."""
        if not self.total_reduced_schedules:
            return 1.0
        return self.total_full_schedules / self.total_reduced_schedules

    def summary(self) -> str:
        """One-line rendering of the fuzz outcome."""
        skipped = f", {self.skipped} over budget" if self.skipped else ""
        return (
            f"{self.programs} programs fuzzed{skipped}: "
            f"{'no divergence' if self.clean else f'{self.mismatches} MISMATCHES'}; "
            f"{self.total_full_schedules} vs {self.total_reduced_schedules} "
            f"schedules ({self.reduction_factor():.1f}x reduction)"
        )


def fuzz_explorers(
    programs: int = 100,
    seed_base: int = 0,
    config: GeneratorConfig = GeneratorConfig(),
    max_schedules: int = 20000,
) -> FuzzReport:
    """Cross-check plain DFS against sleep-set reduction on random programs.

    For each generated program both searches run; outcome sets (terminal
    status + memory) and failure verdicts must agree.  Programs whose
    *full* exploration exceeds the budget are skipped — without a
    complete baseline there is nothing sound to compare against.
    """
    from repro.sim.reduction import SleepSetExplorer

    report = FuzzReport()
    for offset in range(programs):
        seed = seed_base + offset
        program = generate_program(seed, config)
        full = Explorer(program, max_schedules=max_schedules).explore(
            predicate=lambda run: run.failed
        )
        if not full.complete:
            report.skipped += 1
            continue
        reduced = SleepSetExplorer(program, max_schedules=max_schedules).explore(
            predicate=lambda run: run.failed
        )
        report.programs += 1
        report.total_full_schedules += full.schedules_run
        report.total_reduced_schedules += reduced.schedules_run
        if (
            not reduced.complete
            or set(full.outcomes) != set(reduced.outcomes)
            or full.found != reduced.found
        ):
            report.mismatches += 1
            report.mismatch_seeds.append(seed)
    return report
