"""Systematic interleaving exploration (stateless model checking).

:class:`Explorer` enumerates the schedules of a program by depth-first
search over scheduler decisions, re-executing the program from scratch for
each branch (the CHESS approach).  Each node of the decision tree is
visited exactly once: a run explores the "leftmost" path below its prefix,
and every non-taken sibling along that path is pushed as a new prefix.

Two bounds keep exploration tractable and *meaningful*:

* ``max_schedules`` — hard budget on executions; the result records
  whether the search completed, so callers can demand exhaustiveness.
* ``preemption_bound`` — only explore schedules with at most *k*
  pre-emptive context switches.  The study's manifestation findings (a
  handful of ordering points suffice — Finding 8) are why small bounds
  find essentially all of these bugs; bench E2 demonstrates it.

A third, optional pruning layer is **state-space memoization**
(``memoize=True``): every decision point's canonical state fingerprint
(:mod:`repro.sim.statecache`) is recorded, and a run that reaches an
already-expanded state is aborted — the subtree below it can only
reproduce outcomes the earlier expansion already enumerates.  This
preserves the terminal outcome *set* (and any verdict over terminal
states) but not schedule counts or match rates; predicates that inspect
``run.schedule`` or ``run.trace`` are unsound under memoization.
Cache-hit aborts count against ``max_schedules`` like full runs (each
still replays its prefix before the hit is detected), so a memoized
search may report "budget exhausted" after fewer completed schedules
than an unmemoized one with the same budget — ``cache_hits`` on the
result records how many attempts were cut short.

The default extension policy is *non-preemptive* (keep running the current
thread while it stays enabled), so the very first schedule explored is the
one a cooperative scheduler would produce.

For multi-core machines, :class:`repro.sim.parallel.ParallelExplorer`
shards this same search by prefix across a process pool; the
``workers=`` argument of :func:`find_schedule` and
:func:`enumerate_outcomes` selects it.
"""

from __future__ import annotations

import warnings
from collections import Counter
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExplorationError
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs import runlog as obs_runlog
from repro.sim.engine import Engine, EnabledFilter, RunResult, RunStatus
from repro.sim.program import Program
from repro.sim.scheduler import Scheduler
from repro.sim.statecache import MemoHit, StateCache, state_fingerprint

__all__ = [
    "Explorer",
    "ExplorationResult",
    "REDUCTIONS",
    "find_schedule",
    "enumerate_outcomes",
    "make_explorer",
]

Predicate = Callable[[RunResult], bool]


class _DirectedPolicy:
    """Rank pending operations against an ordered list of target pairs.

    ``targets`` is a best-first sequence of pair objects with ``first``
    and ``second`` sites exposing ``matches(thread, op) -> bool`` (the
    shape of :class:`repro.static.pairs.TargetPair`; duck-typed because
    the sim layer never imports static-analysis code).  The rank of a
    pending op is the index of the best pair it advances — first sites
    rank ahead of every second site so "run the first access of the best
    pair, then its second" falls out of a plain min() — and non-matching
    ops rank last.  Ranking depends only on the pending ops, so replayed
    prefixes and sibling subtrees see identical orderings and the
    exploration *tree* is unchanged, only the order in which DFS visits
    it.  Ranks are memoized by ``(thread, op)`` — ops are frozen
    dataclasses, so the cache is content-keyed and bounded by the
    program's static operation sites, and a thread's pending op is
    re-ranked in O(1) at every node it stays pending instead of
    re-scanning the target list.
    """

    __slots__ = ("targets", "_worst", "_rank_cache")

    def __init__(self, targets: Sequence[Any]):
        self.targets = list(targets)
        self._worst = 2 * len(self.targets)
        self._rank_cache: Dict[Any, int] = {}

    def rank(self, thread: str, op: Any) -> int:
        try:
            cached = self._rank_cache.get((thread, op))
        except TypeError:  # unhashable op payload: rank uncached
            return self._rank(thread, op)
        if cached is None:
            cached = self._rank_cache[(thread, op)] = self._rank(thread, op)
        return cached

    def _rank(self, thread: str, op: Any) -> int:
        best = self._worst
        for index, pair in enumerate(self.targets):
            if index >= best:
                break  # later pairs can only rank worse
            if pair.first.matches(thread, op):
                best = index
            elif pair.second.matches(thread, op) and len(self.targets) + index < best:
                best = len(self.targets) + index
        return best

    def key_enabled(
        self, engine: Engine, enabled: Sequence[str], previous: Optional[str]
    ) -> Dict[str, Tuple[int, int, str]]:
        """Final directed sort keys for every enabled thread at one node.

        Computed once per node and reused for both the extension choice
        and the sibling-push ordering (``previous`` is the same thread in
        both places), instead of rebuilding a key tuple per comparison —
        the fix for directed exploration costing more wall-clock than it
        saved in schedules (key: best rank, then stay non-preemptive,
        then thread name for determinism).
        """
        return {
            name: (
                self.rank(name, engine.pending_op(name)),
                0 if name == previous else 1,
                name,
            )
            for name in enabled
        }

#: A DFS stack entry: (schedule prefix, preemptions already paid inside
#: it, detector-pipeline snapshot taken at the branch point — or ``None``
#: when no pipeline is attached).  The snapshot is what lets a sibling
#: run resume analysis from the shared prefix instead of re-analysing it.
Seed = Tuple[List[str], int, Optional[Any]]

#: Sentinel for ``_search``'s ``cache=`` parameter: "build a fresh cache
#: from ``self.memoize``" (the parallel workers' behaviour), as opposed
#: to an explicit cache (slice resume) or an explicit ``None``.
_FRESH_CACHE = object()


def _result_from_frontier(frontier: Any, program: str) -> ExplorationResult:
    """Rebuild the cumulative result a paused search had accumulated."""
    return ExplorationResult(
        program=program,
        schedules_run=frontier.schedules_run,
        complete=True,
        statuses=Counter(frontier.statuses),
        outcomes=dict(frontier.outcomes),
        matching=list(frontier.matching),
        match_count=frontier.match_count,
        first_match_schedule=(
            list(frontier.first_match_schedule)
            if frontier.first_match_schedule is not None else None
        ),
        schedules_to_first_finding=frontier.schedules_to_first_finding,
        cache_hits=frontier.cache_hits,
        states_expanded=frontier.states_expanded,
        preemptions_spent=frontier.preemptions_spent,
    )


def _dfs_frontier(explorer, result, leftover, cache) -> Any:
    """Checkpoint a paused plain-DFS search (see :mod:`repro.sim.frontier`)."""
    from repro.sim.frontier import ExplorationFrontier

    frontier = ExplorationFrontier(
        explorer="dfs",
        program=explorer.program.name,
        memoize=explorer.memoize,
        pending=[(list(prefix), paid) for prefix, paid, _ in leftover],
        attempts=result.schedules_run + result.cache_hits,
        schedules_run=result.schedules_run,
        statuses=Counter(result.statuses),
        outcomes=dict(result.outcomes),
        matching=list(result.matching),
        match_count=result.match_count,
        first_match_schedule=(
            list(result.first_match_schedule)
            if result.first_match_schedule is not None else None
        ),
        schedules_to_first_finding=result.schedules_to_first_finding,
        cache_hits=result.cache_hits,
        states_expanded=result.states_expanded,
        preemptions_spent=result.preemptions_spent,
        wall_seconds=result.wall_seconds,
        cache_state=cache.export_state() if cache is not None else None,
    )
    return frontier


class _RecordingScheduler(Scheduler):
    """Follow ``prefix``, then extend non-preemptively; record enabled sets.

    When a :class:`StateCache` is attached, every decision point beyond
    the prefix is fingerprinted first; reaching an already-expanded state
    raises :class:`MemoHit` to abort the (redundant) run.
    """

    def __init__(
        self,
        prefix: Sequence[str],
        cache: Optional[StateCache] = None,
        preemption_bound: Optional[int] = None,
        pipeline: Optional[Any] = None,
        directed: Optional[_DirectedPolicy] = None,
    ):
        self.prefix = list(prefix)
        self.cache = cache
        self.preemption_bound = preemption_bound
        self.pipeline = pipeline
        self.directed = directed
        self.engine: Optional[Engine] = None
        self.enabled_sets: List[List[str]] = []
        self.choices: List[str] = []
        # Per-decision directed sort keys (one dict per node, computed
        # once and reused at sibling-push time), aligned with
        # enabled_sets (None entries for replayed-prefix decisions —
        # no siblings are cut there).  Stays empty when undirected.
        self.directed_keys: List[Optional[Dict[str, Tuple[int, int, str]]]] = []
        # Pipeline snapshots per decision beyond the prefix (None entries
        # for decisions with a single enabled thread — no siblings there).
        self.node_snapshots: List[Optional[Any]] = []
        self._last: Optional[str] = None
        self._preemptions = 0
        # Hoisted once per run: fingerprinting is the per-decision hot
        # path, so the disabled-profiler cost must stay one None check.
        self._profiler = obs_profile.active()

    def attach(self, engine: Engine) -> None:
        self.engine = engine

    @property
    def preemptions(self) -> int:
        """Preemption cost paid by this run so far (prefix included)."""
        return self._preemptions

    def _fingerprint(self):
        profiler = self._profiler
        if profiler is None:
            return state_fingerprint(self.engine)
        start = perf_counter()
        fingerprint = state_fingerprint(self.engine)
        profiler.add("explorer.fingerprint", perf_counter() - start)
        return fingerprint

    def choose(self, enabled: Sequence[str], step: int) -> str:
        ordered = sorted(enabled)
        index = len(self.choices)
        if self.cache is not None and index >= len(self.prefix):
            fingerprint = self._fingerprint()
            if self.preemption_bound is not None:
                # Under a bound the subtree also depends on the budget
                # already spent AND on which thread ran last — switching
                # away from a still-enabled previous thread is what costs
                # a preemption, so two paths reaching the same state with
                # equal spend but different last threads have different
                # budget-feasible subtrees.  Only identical
                # (state, paid, last) nodes merge.
                fingerprint = (
                    fingerprint,
                    ("preemptions", self._preemptions),
                    ("last", self._last),
                )
            if self.cache.seen(fingerprint):
                raise MemoHit()
        self.enabled_sets.append(ordered)
        if self.directed is not None:
            self.directed_keys.append(
                self.directed.key_enabled(self.engine, ordered, self._last)
                if index >= len(self.prefix)
                else None
            )
        if self.pipeline is not None and index >= len(self.prefix):
            # Snapshot only at real branch points: a single-choice
            # decision spawns no siblings, so nothing ever restores there.
            self.node_snapshots.append(
                self.pipeline.snapshot() if len(ordered) > 1 else None
            )
        if index < len(self.prefix):
            choice = self.prefix[index]
            if choice not in enabled:
                raise ExplorationError(
                    f"exploration prefix diverged at step {index}: {choice!r} "
                    f"not enabled in {ordered} — the program is "
                    f"non-deterministic beyond scheduling"
                )
        elif self.directed is not None:
            choice = min(ordered, key=self.directed_keys[-1].__getitem__)
        elif self._last is not None and self._last in enabled:
            choice = self._last
        else:
            choice = ordered[0]
        self._preemptions += _preemption_cost(self._last, choice, ordered)
        self.choices.append(choice)
        self._last = choice
        return choice

    def reset(self) -> None:
        self.enabled_sets = []
        self.choices = []
        self.directed_keys = []
        self.node_snapshots = []
        self._last = None
        self._preemptions = 0


@dataclass
class ExplorationResult:
    """Aggregate outcome of one exploration."""

    program: str
    schedules_run: int
    complete: bool
    statuses: Counter = field(default_factory=Counter)
    outcomes: Dict[Tuple, int] = field(default_factory=dict)
    matching: List[RunResult] = field(default_factory=list)
    match_count: int = 0
    first_match_schedule: Optional[List[str]] = None
    #: Completed schedules up to and including the first predicate match
    #: (``None`` when nothing matched).  Counts in *serial DFS order*
    #: even for merged parallel searches, so it is comparable across
    #: worker counts; memoized aborts and pruned runs are excluded.
    schedules_to_first_finding: Optional[int] = None
    #: Runs aborted because they reached an already-expanded state.
    cache_hits: int = 0
    #: Subtree shards merged into this result (0 for a serial search).
    shards: int = 0
    #: Decision-tree nodes newly expanded (choices made beyond each
    #: run's replayed prefix); identical for serial and complete
    #: parallel searches because both visit every node exactly once.
    states_expanded: int = 0
    #: Total preemption cost paid across all executed schedule steps
    #: (replayed prefixes included).
    preemptions_spent: int = 0
    #: State-cache lookups/stored fingerprints, summed across shards
    #: (0 unless ``memoize=True``).
    cache_lookups: int = 0
    cache_states: int = 0
    #: Wall-clock of the exploration (for a shard: that shard's search).
    wall_seconds: float = 0.0
    #: Work-stealing telemetry (all zero for serial searches and for the
    #: legacy prefix-sharding strategy): donation batches made by busy
    #: workers, total prefixes donated, and the summed wall-clock the
    #: workers spent idle waiting for work.
    steal_donations: int = 0
    stolen_prefixes: int = 0
    idle_seconds: float = 0.0
    #: Summed wall-clock the workers spent inside donation events
    #: (slicing the stack, bumping the shared counter, queueing
    #: batches) — the serialization cost the steal strategy pays for
    #: its load balance.
    donate_seconds: float = 0.0
    #: Detector reports accumulated by an attached streaming pipeline,
    #: keyed by detector name (``None`` when exploring without one).
    #: Typed loosely because the sim layer never imports detector types.
    detector_reports: Optional[Dict[str, Any]] = None
    #: Counter dict from the attached pipeline's
    #: ``PipelineStats.as_dict()`` (``None`` without a pipeline).
    pipeline_stats: Optional[Dict[str, Any]] = None
    #: Checkpoint of the paused search when a ``slice_budget`` ran out
    #: with work left (:class:`repro.sim.frontier.ExplorationFrontier`);
    #: ``None`` for every *terminal* result — search complete, budget
    #: exhausted, or stopped on a first match.  A result carrying a
    #: frontier is provisional: its tallies are cumulative over the
    #: slices so far, and only the terminal slice's result is comparable
    #: to an unsliced run.
    frontier: Optional[Any] = None

    @property
    def found(self) -> bool:
        """Whether any run satisfied the search predicate."""
        return self.match_count > 0

    def match_rate(self) -> float:
        """Fraction of explored schedules that satisfied the predicate."""
        if not self.schedules_run:
            return 0.0
        return self.match_count / self.schedules_run

    def failure_rate(self) -> float:
        """Fraction of explored schedules that crashed, deadlocked, or hung."""
        if not self.schedules_run:
            return 0.0
        failures = sum(
            count
            for status, count in self.statuses.items()
            if status in (RunStatus.CRASH, RunStatus.DEADLOCK, RunStatus.HANG)
        )
        return failures / self.schedules_run

    def summary(self) -> str:
        """One-line rendering for reports."""
        status_text = ", ".join(
            f"{status.value}={count}" for status, count in sorted(
                self.statuses.items(), key=lambda item: item[0].value
            )
        )
        tail = "complete" if self.complete else "budget exhausted"
        return (
            f"{self.program}: {self.schedules_run} schedules ({tail}); "
            f"{status_text}"
        )


class Explorer:
    """Depth-first enumeration of a program's schedules."""

    def __init__(
        self,
        program: Program,
        max_schedules: int = 20000,
        max_steps: int = 5000,
        preemption_bound: Optional[int] = None,
        enabled_filter: Optional[EnabledFilter] = None,
        keep_matches: int = 16,
        memoize: bool = False,
        pipeline: Optional[Any] = None,
        targets: Optional[Sequence[Any]] = None,
    ):
        if memoize and enabled_filter is not None:
            raise ExplorationError(
                "memoize=True cannot be combined with an enabled_filter: "
                "filters may depend on the execution path (e.g. "
                "executed_labels), which state fingerprints do not capture"
            )
        self.program = program
        self.max_schedules = max_schedules
        self.max_steps = max_steps
        self.preemption_bound = preemption_bound
        self.enabled_filter = enabled_filter
        self.keep_matches = keep_matches
        self.memoize = memoize
        #: Race-directed exploration: an ordered sequence of target pairs
        #: (e.g. :class:`repro.static.pairs.TargetPair`) biasing both the
        #: default extension policy and the sibling visit order toward
        #: schedules that realise the pairs.  Every node is still visited
        #: at most once — the search tree is identical to the undirected
        #: one, only its traversal order changes, so completeness and
        #: outcome sets are unaffected.
        self.directed = (
            _DirectedPolicy(targets) if targets else None
        )
        #: Streaming detector pipeline observing every executed event
        #: (duck-typed — e.g. :class:`repro.detectors.pipeline.DetectorPipeline`;
        #: the sim layer never imports detector code).  Shared DFS
        #: prefixes are analysed once via snapshot/restore.  Combined
        #: with ``memoize=True``, pruned subtrees are never observed, so
        #: path-dependent findings below a cache hit can be missed.
        self.pipeline = pipeline
        #: The state cache of the most recent exploration (None unless
        #: ``memoize=True``); exposes hit/size statistics.
        self.cache: Optional[StateCache] = None

    def explore(
        self,
        predicate: Optional[Predicate] = None,
        stop_on_first: bool = False,
        *,
        slice_budget: Optional[int] = None,
        frontier: Optional[Any] = None,
    ) -> ExplorationResult:
        """Run the search.

        :param predicate: runs for which it returns ``True`` are collected
            in ``matching`` (up to ``keep_matches``); by default failed runs
            (crash / deadlock / hang) match.
        :param stop_on_first: end the search at the first match.
        :param slice_budget: run at most this many schedule attempts in
            *this call*; if work remains (and the global ``max_schedules``
            is not exhausted) the result carries a resumable
            :class:`~repro.sim.frontier.ExplorationFrontier` on its
            ``frontier`` field.  Concatenated slices reproduce the
            unsliced result exactly (``docs/simulator.md``).
        :param frontier: resume a previously paused search from its
            checkpoint instead of starting at the root.  The explorer
            must be configured identically (same program, ``memoize``)
            or ``ValueError`` is raised.  Incompatible with an attached
            pipeline (also ``ValueError``).
        """
        sliced = slice_budget is not None or frontier is not None
        if sliced:
            self._check_sliceable(slice_budget)
        start = perf_counter()
        if frontier is not None:
            frontier.check("dfs", self.program.name, self.memoize)
            stack: List[Seed] = [
                (list(prefix), paid, None) for prefix, paid in frontier.pending
            ]
            result = _result_from_frontier(frontier, self.program.name)
            cache = frontier.restore_cache()
            attempts = frontier.attempts
        else:
            stack = [([], 0, None)]
            result = None
            cache = StateCache() if self.memoize else None
            attempts = 0
        limit = (
            min(self.max_schedules, attempts + slice_budget)
            if slice_budget is not None
            else None
        )
        result, leftover = self._search(
            stack, predicate, stop_on_first, None,
            result=result, cache=cache, attempts=attempts, attempt_limit=limit,
        )
        result.wall_seconds = (
            (frontier.wall_seconds if frontier is not None else 0.0)
            + perf_counter() - start
        )
        if sliced and leftover and result.complete:
            # Slice exhausted with pending work: checkpoint instead of
            # finishing.  Metrics are recorded once, on the terminal slice.
            result.frontier = _dfs_frontier(self, result, leftover, cache)
            return result
        if self.cache is not None:
            self.cache.record_metrics(program=self.program.name)
        if result.pipeline_stats is not None:
            _record_pipeline_stats(result.pipeline_stats, self.program.name)
        _record_exploration(result, "dfs")
        return result

    def _check_sliceable(self, slice_budget: Optional[int]) -> None:
        if self.pipeline is not None:
            raise ValueError(
                "sliced exploration cannot be combined with a streaming "
                "detector pipeline: branch-point snapshots hold live "
                "analysis state that must not cross a checkpoint boundary"
            )
        if slice_budget is not None and slice_budget < 1:
            raise ValueError(
                f"slice_budget must be a positive schedule count, got "
                f"{slice_budget}"
            )

    # -- internals -----------------------------------------------------------

    def _search(
        self,
        stack: List[Seed],
        predicate: Optional[Predicate],
        stop_on_first: bool,
        frontier_target: Optional[int],
        steal_hook: Optional[Callable[[List[Seed]], None]] = None,
        *,
        result: Optional[ExplorationResult] = None,
        cache: Any = _FRESH_CACHE,
        attempts: int = 0,
        attempt_limit: Optional[int] = None,
    ) -> Tuple[ExplorationResult, List[Seed]]:
        """The DFS loop over a seeded stack; returns (result, leftover stack).

        ``frontier_target`` is the sharding hook used by the parallel
        explorer: when set, the loop stops as soon as the stack holds at
        least that many pending prefixes — or, on narrow trees where the
        LIFO stack never grows that deep, after that many attempts with a
        non-empty stack — leaving the remaining prefixes for the caller to
        distribute.  The stack is LIFO, so the serial exploration order is
        exactly: the runs executed here, then the popped entries' subtrees
        from the top of the leftover stack downward.

        ``steal_hook`` is the work-stealing hook: called once per loop
        iteration with the live stack, it may remove entries from the
        *bottom* (the serially-last subtrees) to donate them to idle
        workers.  Everything this search still runs precedes any donated
        entry in serial order, which is what keeps the parallel merge
        deterministic.
        """
        match = predicate if predicate is not None else _default_predicate
        if cache is _FRESH_CACHE:
            cache = StateCache() if self.memoize else None
        self.cache = cache
        if result is None:
            result = ExplorationResult(
                program=self.program.name, schedules_run=0, complete=True
            )
        while stack:
            if steal_hook is not None:
                steal_hook(stack)
            if not stack:
                break
            if frontier_target is not None and (
                len(stack) >= frontier_target or attempts >= frontier_target
            ):
                break
            if attempts >= self.max_schedules:
                result.complete = False
                break
            if attempt_limit is not None and attempts >= attempt_limit:
                break  # slice exhausted; the caller checkpoints the stack
            prefix, paid, snapshot = stack.pop()
            attempts += 1
            run, recorder = self._run_once(prefix, cache, snapshot)
            if len(recorder.choices) > len(prefix):
                result.states_expanded += len(recorder.choices) - len(prefix)
            result.preemptions_spent += recorder.preemptions
            if run is None:
                result.cache_hits += 1
            else:
                result.schedules_run += 1
                result.statuses[run.status] += 1
                outcome = _outcome_key(run)
                result.outcomes[outcome] = result.outcomes.get(outcome, 0) + 1
                if match(run):
                    result.match_count += 1
                    if len(result.matching) < self.keep_matches:
                        result.matching.append(run)
                    if result.first_match_schedule is None:
                        result.first_match_schedule = list(run.schedule)
                        result.schedules_to_first_finding = result.schedules_run
                    if stop_on_first:
                        result.complete = False
                        _fill_cache_stats(result, cache)
                        _fill_pipeline(result, self.pipeline)
                        return result, stack
            self._push_siblings(stack, recorder, prefix, paid)
        _fill_cache_stats(result, cache)
        _fill_pipeline(result, self.pipeline)
        return result, stack

    def _run_once(
        self,
        prefix: List[str],
        cache: Optional[StateCache],
        snapshot: Optional[Any] = None,
    ) -> Tuple[Optional[RunResult], _RecordingScheduler]:
        pipeline = self.pipeline
        hook = None
        if pipeline is not None:
            # Resume analysis from the branch-point snapshot when one was
            # taken: the replayed prefix's events are then skipped instead
            # of re-analysed (the root seed has no snapshot — full pass).
            if snapshot is not None:
                pipeline.restore(snapshot)
            else:
                pipeline.begin_pass()
            hook = pipeline.feed
        recorder = _RecordingScheduler(
            prefix,
            cache=cache,
            preemption_bound=self.preemption_bound,
            pipeline=pipeline,
            directed=self.directed,
        )
        engine = Engine(
            self.program,
            recorder,
            max_steps=self.max_steps,
            enabled_filter=self.enabled_filter,
            event_hook=hook,
        )
        recorder.attach(engine)
        try:
            run = engine.run()
        except MemoHit:
            # Events fed before the hit did execute, so the pipeline state
            # is sound; end-of-trace analyses are skipped for aborted runs.
            return None, recorder
        if pipeline is not None:
            pipeline.finish_pass()
        return run, recorder

    def _push_siblings(
        self,
        stack: List[Seed],
        recorder: _RecordingScheduler,
        prefix: List[str],
        paid: int,
    ) -> None:
        choices = recorder.choices
        enabled_sets = recorder.enabled_sets
        directed_keys = recorder.directed_keys
        snapshots = recorder.node_snapshots
        # Preemption cost of each executed step beyond the prefix.
        preemptions = paid
        for i in range(len(prefix), len(choices)):
            previous = choices[i - 1] if i > 0 else None
            chosen = choices[i]
            cost_chosen = _preemption_cost(previous, chosen, enabled_sets[i])
            # node_snapshots holds only post-prefix decisions.
            snapshot = snapshots[i - len(prefix)] if snapshots else None
            alternatives = enabled_sets[i]
            if directed_keys and directed_keys[i] is not None:
                # Push worst-ranked first so the LIFO stack pops the
                # best-directed sibling before any other (keys were
                # computed once when the node was visited).
                alternatives = sorted(
                    alternatives,
                    key=directed_keys[i].__getitem__,
                    reverse=True,
                )
            for alt in alternatives:
                if alt == chosen:
                    continue
                cost_alt = _preemption_cost(previous, alt, enabled_sets[i])
                if (
                    self.preemption_bound is not None
                    and preemptions + cost_alt > self.preemption_bound
                ):
                    continue
                stack.append(
                    (choices[:i] + [alt], preemptions + cost_alt, snapshot)
                )
            preemptions += cost_chosen


def _fill_cache_stats(result: ExplorationResult, cache: Optional[StateCache]) -> None:
    """Copy a search's cache totals into its result (travels across forks)."""
    if cache is not None:
        result.cache_lookups = cache.lookups
        result.cache_states = len(cache)


def _fill_pipeline(result: ExplorationResult, pipeline: Optional[Any]) -> None:
    """Copy an attached pipeline's reports and counters into the result.

    Reports travel on the result (picklable) so parallel shards can send
    them back to the parent for merging.
    """
    if pipeline is not None:
        result.detector_reports = dict(pipeline.reports)
        result.pipeline_stats = pipeline.stats.as_dict()


def _merge_pipeline_stats(
    into: Optional[Dict[str, Any]], add: Optional[Dict[str, Any]]
) -> Optional[Dict[str, Any]]:
    """Fold one shard's pipeline counter dict into an accumulated one."""
    if add is None:
        return into
    if into is None:
        return dict(add)
    merged = dict(into)
    for key in (
        "events_dispatched", "events_reused", "snapshots", "restores", "passes",
    ):
        merged[key] = merged.get(key, 0) + add.get(key, 0)
    firsts = [
        stats.get("first_finding_step")
        for stats in (into, add)
        if stats.get("first_finding_step") is not None
    ]
    merged["first_finding_step"] = min(firsts) if firsts else None
    analysed = merged["events_dispatched"] + merged["events_reused"]
    merged["reuse_ratio"] = (
        merged["events_reused"] / analysed if analysed else 0.0
    )
    return merged


def _record_pipeline_stats(stats: Dict[str, Any], program: str) -> None:
    """Publish one exploration's pipeline counters to the metrics registry.

    Mirrors :func:`repro.detectors.pipeline.record_pipeline_metrics` for
    counter dicts — the sim layer cannot import detector code, and merged
    parallel results only carry the dict anyway.  No-op while metrics are
    disabled.
    """
    registry = obs_metrics.active()
    if registry is None:
        return
    for key in (
        "events_dispatched", "events_reused", "snapshots", "restores", "passes",
    ):
        registry.inc(f"pipeline.{key}", stats.get(key, 0), program=program)
    registry.set_gauge(
        "pipeline.reuse_ratio", stats.get("reuse_ratio", 0.0), program=program
    )


def _record_exploration(result: ExplorationResult, explorer: str) -> None:
    """Publish one exploration's counters to the metrics registry.

    Called once per top-level ``explore()`` (the parallel explorer
    records only its merged result, so counters never double-count).
    No-op while metrics are disabled.
    """
    registry = obs_metrics.active()
    if registry is None:
        return
    labels = {"program": result.program, "explorer": explorer}
    registry.inc(
        "explorer.explorations", 1,
        complete=str(result.complete).lower(), **labels,
    )
    registry.inc("explorer.schedules_run", result.schedules_run, **labels)
    registry.inc("explorer.cache_hits", result.cache_hits, **labels)
    registry.inc("explorer.states_expanded", result.states_expanded, **labels)
    registry.inc("explorer.preemptions_spent", result.preemptions_spent, **labels)
    registry.inc("explorer.matches", result.match_count, **labels)
    for status, count in result.statuses.items():
        registry.inc(
            "explorer.runs_by_status", count, status=status.value, **labels
        )
    registry.set_gauge(
        "explorer.distinct_outcomes", len(result.outcomes), **labels
    )
    registry.observe("explorer.wall_seconds", result.wall_seconds, **labels)


def _emit_exploration_runlog(
    event: str,
    result: ExplorationResult,
    max_schedules: int,
    max_steps: int,
    preemption_bound: Optional[int],
    workers: Optional[int],
    memoize: bool,
    wall_seconds: float,
    directed: bool = False,
    reduction: Optional[str] = None,
) -> None:
    """Append one run record for an exploration entry point (if active)."""
    if obs_runlog.active_runlog() is None:
        return
    args = {
        "max_schedules": max_schedules,
        "max_steps": max_steps,
        "preemption_bound": preemption_bound,
        "workers": workers,
        "memoize": memoize,
        "directed": directed,
        "reduction": reduction or "none",
    }
    obs_runlog.emit(
        event, **obs_runlog.exploration_record(result, args, wall_seconds)
    )


def _preemption_cost(previous: Optional[str], choice: str, enabled: List[str]) -> int:
    """Switching away from a still-enabled thread costs one preemption."""
    if previous is None or previous == choice:
        return 0
    return 1 if previous in enabled else 0


def _default_predicate(run: RunResult) -> bool:
    return run.failed


def _outcome_key(run: RunResult) -> Tuple:
    """Canonical terminal state: status + final memory, hashable."""
    items = []
    for key in sorted(run.memory):
        value = run.memory[key]
        try:
            hash(value)
        except TypeError:
            value = repr(value)
        items.append((key, value))
    return (run.status.value, tuple(items))


#: Valid values of the ``reduction=`` selector shared by
#: :func:`make_explorer` and the CLI ``--reduction`` flag.
REDUCTIONS = ("none", "sleepset", "dpor")


def make_explorer(
    program: Program,
    max_schedules: int = 20000,
    max_steps: int = 5000,
    preemption_bound: Optional[int] = None,
    workers: Optional[int] = None,
    memoize: bool = False,
    keep_matches: int = 16,
    pipeline_factory: Optional[Callable[[], Any]] = None,
    targets: Optional[Sequence[Any]] = None,
    reduction: Optional[str] = None,
):
    """Serial or parallel explorer, selected by ``workers`` (shared factory).

    This is the one place that knows how to turn "how many workers?" into
    the right explorer class; the detector suite, kernels, and fix
    verification all build explorers through it.

    :param pipeline_factory: zero-argument callable returning a fresh
        streaming detector pipeline (e.g.
        ``lambda: DetectorPipeline(detectors)``).  A factory rather than an
        instance because the parallel explorer needs an independent
        pipeline per shard process.
    :param targets: ordered target pairs for race-directed exploration
        (see :class:`Explorer`); typically the ``pairs`` of a
        :class:`repro.static.report.StaticReport`.
    :param reduction: partial-order reduction to apply: ``None``/"none"
        (plain DFS), ``"sleepset"``
        (:class:`~repro.sim.reduction.SleepSetExplorer`), or ``"dpor"``
        (:class:`~repro.sim.dpor.DPORExplorer`).  ``dpor`` composes with
        every accelerator: ``memoize`` prunes revisited states as
        truncated runs, ``preemption_bound`` switches to bounded DPOR
        with conservative boundary backtrack points, and ``workers > 1``
        selects :class:`~repro.sim.dpor_parallel.ParallelDPORExplorer`
        (speculative parallel DPOR, bit-identical to the serial search).
        ``sleepset`` stays serial and unbounded: combining it with
        ``workers > 1`` or ``preemption_bound`` raises
        :class:`ValueError` (sleep sets assume every sibling branch is
        explorable and every reversal serially visible).
    """
    kind = reduction if reduction is not None else "none"
    if kind not in REDUCTIONS:
        raise ValueError(
            f"reduction must be one of {', '.join(REDUCTIONS)}; got {reduction!r}"
        )
    if kind == "dpor" and workers is not None and workers > 1:
        from repro.sim.dpor_parallel import ParallelDPORExplorer

        return ParallelDPORExplorer(
            program,
            workers=workers,
            max_schedules=max_schedules,
            max_steps=max_steps,
            keep_matches=keep_matches,
            memoize=memoize,
            preemption_bound=preemption_bound,
            pipeline_factory=pipeline_factory,
            targets=targets,
        )
    if kind != "none":
        if workers is not None and workers > 1:
            raise ValueError(
                f"reduction={kind!r} cannot be combined with workers={workers}: "
                "sleep sets prune against the full sibling set, which a "
                "prefix-sharded or work-stealing search cannot see across "
                "workers; use reduction='dpor' for a parallel reduced search"
            )
        pipeline = pipeline_factory() if pipeline_factory is not None else None
        if kind == "sleepset":
            if preemption_bound is not None:
                raise ValueError(
                    "reduction='sleepset' cannot be combined with a "
                    "preemption bound: sleep sets assume every sibling "
                    "branch is explorable, which the bound violates"
                )
            from repro.sim.reduction import SleepSetExplorer

            return SleepSetExplorer(
                program,
                max_schedules=max_schedules,
                max_steps=max_steps,
                keep_matches=keep_matches,
                memoize=memoize,
                pipeline=pipeline,
                targets=targets,
            )
        from repro.sim.dpor import DPORExplorer

        return DPORExplorer(
            program,
            max_schedules=max_schedules,
            max_steps=max_steps,
            keep_matches=keep_matches,
            memoize=memoize,
            preemption_bound=preemption_bound,
            pipeline=pipeline,
            targets=targets,
        )
    if workers is not None and workers > 1:
        from repro.sim.parallel import ParallelExplorer

        return ParallelExplorer(
            program,
            workers=workers,
            max_schedules=max_schedules,
            max_steps=max_steps,
            preemption_bound=preemption_bound,
            keep_matches=keep_matches,
            memoize=memoize,
            pipeline_factory=pipeline_factory,
            targets=targets,
        )
    return Explorer(
        program,
        max_schedules=max_schedules,
        max_steps=max_steps,
        preemption_bound=preemption_bound,
        keep_matches=keep_matches,
        memoize=memoize,
        pipeline=pipeline_factory() if pipeline_factory is not None else None,
        targets=targets,
    )


def _make_explorer(*args, **kwargs):
    """Deprecated alias of :func:`make_explorer` (was private API)."""
    warnings.warn(
        "_make_explorer is deprecated; use repro.sim.explorer.make_explorer",
        DeprecationWarning,
        stacklevel=2,
    )
    return make_explorer(*args, **kwargs)


def find_schedule(
    program: Program,
    predicate: Optional[Predicate] = None,
    max_schedules: int = 20000,
    max_steps: int = 5000,
    preemption_bound: Optional[int] = None,
    workers: Optional[int] = None,
    memoize: bool = False,
    targets: Optional[Sequence[Any]] = None,
    reduction: Optional[str] = None,
) -> Optional[RunResult]:
    """First run satisfying ``predicate`` (default: any failure), or ``None``.

    ``workers > 1`` shards the search across a process pool;
    ``memoize=True`` prunes revisited states (sound for predicates over
    terminal state only — see :mod:`repro.sim.statecache`);
    ``targets`` biases the visit order toward predicted access pairs
    (race-directed exploration) without changing the searched tree;
    ``reduction`` selects a partial-order reduction (sound for
    predicates over terminal state — reduced searches skip schedules
    equivalent up to swapping independent operations).
    """
    explorer = make_explorer(
        program, max_schedules, max_steps, preemption_bound, workers, memoize,
        keep_matches=1, targets=targets, reduction=reduction,
    )
    start = perf_counter()
    result = explorer.explore(predicate=predicate, stop_on_first=True)
    _emit_exploration_runlog(
        "find_schedule", result, max_schedules, max_steps, preemption_bound,
        workers, memoize, perf_counter() - start, directed=bool(targets),
        reduction=reduction,
    )
    return result.matching[0] if result.matching else None


def enumerate_outcomes(
    program: Program,
    max_schedules: int = 20000,
    max_steps: int = 5000,
    preemption_bound: Optional[int] = None,
    require_complete: bool = False,
    workers: Optional[int] = None,
    memoize: bool = False,
    reduction: Optional[str] = None,
) -> ExplorationResult:
    """Explore every schedule (within bounds) and tally terminal outcomes.

    With ``memoize=True`` the outcome *set* is preserved but per-outcome
    counts are not (pruned subtrees are never run), and cache-hit aborts
    consume ``max_schedules`` budget alongside completed runs; with
    ``workers > 1`` and a complete search, counts match the serial
    search exactly.  ``reduction`` preserves the outcome set while
    skipping interleavings that only permute independent operations
    (per-outcome counts shrink accordingly).
    """
    explorer = make_explorer(
        program, max_schedules, max_steps, preemption_bound, workers, memoize,
        reduction=reduction,
    )
    start = perf_counter()
    result = explorer.explore(predicate=lambda run: False)
    _emit_exploration_runlog(
        "enumerate_outcomes", result, max_schedules, max_steps,
        preemption_bound, workers, memoize, perf_counter() - start,
        reduction=reduction,
    )
    if require_complete and not result.complete:
        raise ExplorationError(
            f"exploration of {program.name!r} exceeded the budget of "
            f"{max_schedules} schedules; raise max_schedules or shrink the "
            f"program"
        )
    return result
