"""Adaptive exploration-budget allocation (UCB1 bandit over search arms).

At fleet scale the performance question is no longer "how fast is one
explorer" but "*which program gets the next schedule*": the cost of a
first finding varies by orders of magnitude across programs and across
strategies on the same program (the estimator's ``compare_strategies``
rows show systematic search beating random by 100x on some kernels and
losing on others).  This package treats **(job, strategy) pairs as
bandit arms**, pays an arm out on the *new outcomes and findings per
schedule* its slices produce, and spends the next slice on the arm with
the best upper confidence bound:

* :mod:`repro.alloc.ucb` — the strategy-agnostic UCB1 allocator, with
  ``alloc.*`` metrics and runlog records;
* :mod:`repro.alloc.adaptive` — the racing harness: one program, four
  arms (sliced DFS / sliced sleep-set via
  :mod:`repro.sim.frontier` checkpoints; random / PCT sampling by seed
  offset), spending until the first finding or a total budget.

Consumers: the service scheduler (``repro serve --alloc ucb``,
:mod:`repro.service.queue`) allocates slices *across jobs*; the
estimator's ``adaptive`` row and ``benchmarks/bench_alloc.py`` race
strategies *within a program*.  ``docs/allocator.md`` is the handbook.
"""

from repro.alloc.adaptive import (
    AdaptiveOutcome,
    adaptive_first_finding,
    derive_horizon,
)
from repro.alloc.ucb import ArmStats, UCBAllocator

__all__ = [
    "AdaptiveOutcome",
    "ArmStats",
    "UCBAllocator",
    "adaptive_first_finding",
    "derive_horizon",
]
