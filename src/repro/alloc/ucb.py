"""UCB1 budget allocator over (job, strategy) arms.

The allocator answers one question, repeatedly: *which arm should the
next slice of schedules go to?*  An arm is any (job, strategy) pair the
caller registers — the service scheduler registers one arm per queued
job, the adaptive estimator registers one arm per search strategy on a
single program.  The allocator never runs anything itself; callers pull
an arm with :meth:`UCBAllocator.select`, spend a slice, and report back
with :meth:`UCBAllocator.record`.

Payout model
------------

A pull's *reward* is whatever progress the slice produced — by
convention the number of previously unseen terminal outcomes plus a
large bonus for a first finding (see :data:`FINDING_BONUS`).  Rewards
are normalised **per schedule spent**, so a strategy that surfaces one
new interleaving class per 3 schedules outranks one that needs 300.
The UCB1 score of a played arm is

    mean_payout_per_schedule + c * sqrt(ln(total_schedules) / arm_schedules)

with ``c`` the exploration constant (:data:`DEFAULT_EXPLORATION`).
Unplayed arms always win, in registration order, so every arm gets at
least one probe slice before the bandit starts exploiting.

Arms can be *retired* (a deterministic search exhausted its state space;
a job found its bug) — retired arms are never selected again but keep
their statistics for reporting.

Telemetry: every ``record`` increments ``alloc.pulls`` /
``alloc.schedules_spent`` / ``alloc.payout`` and emits an
``alloc.pull`` runlog record; ``alloc.arms_live`` is kept as a gauge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs import runlog as obs_runlog

__all__ = [
    "ArmKey",
    "ArmStats",
    "DEFAULT_EXPLORATION",
    "FINDING_BONUS",
    "UCBAllocator",
]

#: Exploration constant ``c`` — how aggressively under-sampled arms are
#: revisited.  UCB1's classical value is sqrt(2); we default lower
#: because payouts are already sparse (most slices score 0) and the
#: probe-first rule guarantees initial coverage.
DEFAULT_EXPLORATION = 0.5

#: Reward credited for a first finding, on top of new-outcome credit.
#: Large enough that a finding dominates any plausible outcome count.
FINDING_BONUS = 25.0

ArmKey = Tuple[str, str]


@dataclass
class ArmStats:
    """Mutable per-arm accounting; ``as_dict`` is the reporting view."""

    job: str
    strategy: str
    pulls: int = 0
    schedules: int = 0
    payout: float = 0.0
    findings: int = 0
    retired: bool = False
    last_payout: float = 0.0
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> ArmKey:
        return (self.job, self.strategy)

    @property
    def mean_payout(self) -> float:
        """Average reward per schedule; 0.0 before the first pull."""
        if self.schedules <= 0:
            return 0.0
        return self.payout / self.schedules

    def as_dict(self) -> Dict[str, Any]:
        """Return the arm's statistics as a JSON-serializable dict."""
        return {
            "job": self.job,
            "strategy": self.strategy,
            "pulls": self.pulls,
            "schedules": self.schedules,
            "payout": round(self.payout, 6),
            "mean_payout": round(self.mean_payout, 6),
            "findings": self.findings,
            "retired": self.retired,
        }


class UCBAllocator:
    """UCB1 bandit over registered (job, strategy) arms.

    Deterministic: selection depends only on the sequence of
    ``add_arm``/``record``/``retire`` calls (ties break on registration
    order), so replays of the same workload pick the same arms.
    """

    def __init__(self, exploration: float = DEFAULT_EXPLORATION):
        if exploration < 0:
            raise ValueError("exploration constant must be >= 0")
        self.exploration = exploration
        self._arms: Dict[ArmKey, ArmStats] = {}
        self._order: List[ArmKey] = []
        self.total_schedules = 0
        self.total_pulls = 0

    # -- registration -------------------------------------------------

    def add_arm(self, job: str, strategy: str, **meta: Any) -> ArmKey:
        """Register an arm; re-registering an existing key is an error."""
        key = (job, strategy)
        if key in self._arms:
            raise ValueError(f"arm already registered: {key!r}")
        self._arms[key] = ArmStats(job=job, strategy=strategy, meta=dict(meta))
        self._order.append(key)
        self._gauge_live()
        return key

    def __contains__(self, key: ArmKey) -> bool:
        return key in self._arms

    def __len__(self) -> int:
        return len(self._arms)

    def arm(self, key: ArmKey) -> ArmStats:
        """Return the :class:`ArmStats` registered under ``key``."""
        return self._arms[key]

    def arms(self) -> List[ArmStats]:
        """All arms in registration order (retired included)."""
        return [self._arms[key] for key in self._order]

    def live_arms(self) -> List[ArmStats]:
        """Return the arms still eligible for selection, in registration order."""
        return [stats for stats in self.arms() if not stats.retired]

    # -- selection ----------------------------------------------------

    def select(self, exclude: Iterable[ArmKey] = ()) -> Optional[ArmKey]:
        """The arm the next slice should go to, or ``None`` if none eligible.

        Unplayed live arms win first, in registration order; afterwards
        the highest UCB1 score wins, ties broken by registration order
        (``max`` keeps the earliest of equal scores).  ``exclude`` masks
        arms without touching their stats — the service passes the arms
        whose previous slice is still in flight.
        """
        masked = set(exclude)
        live = [
            stats for stats in self.live_arms() if stats.key not in masked
        ]
        if not live:
            return None
        for stats in live:
            if stats.pulls == 0:
                return stats.key
        return max(live, key=lambda stats: self.score(stats.key)).key

    def score(self, key: ArmKey) -> float:
        """UCB1 upper confidence bound for one arm (inf if unplayed)."""
        stats = self._arms[key]
        if stats.schedules <= 0:
            return math.inf
        bonus = self.exploration * math.sqrt(
            math.log(max(self.total_schedules, 2)) / stats.schedules
        )
        return stats.mean_payout + bonus

    # -- feedback -----------------------------------------------------

    def record(
        self,
        key: ArmKey,
        schedules: int,
        payout: float,
        *,
        finding: bool = False,
    ) -> ArmStats:
        """Report one slice's spend and reward back to the bandit.

        ``schedules`` must be >= 1 — even a slice that made no progress
        consumed budget, and charging it keeps exhausted arms from being
        re-selected forever at score infinity.
        """
        if schedules < 1:
            raise ValueError("a recorded slice must have spent >= 1 schedule")
        stats = self._arms[key]
        stats.pulls += 1
        stats.schedules += schedules
        stats.payout += payout
        stats.last_payout = payout
        if finding:
            stats.findings += 1
        self.total_pulls += 1
        self.total_schedules += schedules
        registry = obs_metrics.active()
        if registry is not None:
            labels = {"job": stats.job, "strategy": stats.strategy}
            registry.inc("alloc.pulls", 1, **labels)
            registry.inc("alloc.schedules_spent", schedules, **labels)
            registry.inc("alloc.payout", payout, **labels)
            if finding:
                registry.inc("alloc.findings", 1, **labels)
        obs_runlog.emit(
            "alloc.pull",
            job=stats.job,
            strategy=stats.strategy,
            schedules=schedules,
            payout=payout,
            finding=finding,
            pulls=stats.pulls,
            arm_schedules=stats.schedules,
            total_schedules=self.total_schedules,
        )
        return stats

    def retire(self, key: ArmKey) -> None:
        """Stop selecting one arm (exhausted / no longer useful)."""
        self._arms[key].retired = True
        self._gauge_live()

    def retire_job(self, job: str) -> int:
        """Retire every arm of one job (e.g. its bug was found)."""
        retired = 0
        for stats in self._arms.values():
            if stats.job == job and not stats.retired:
                stats.retired = True
                retired += 1
        if retired:
            self._gauge_live()
        return retired

    # -- reporting ----------------------------------------------------

    def stats(self) -> List[Dict[str, Any]]:
        """Per-arm dicts in registration order, for dashboards/benchmarks."""
        return [stats.as_dict() for stats in self.arms()]

    def summary(self) -> Dict[str, Any]:
        """Return allocator-wide totals (arms, live, pulls, schedules, ...)."""
        return {
            "arms": len(self._arms),
            "live": len(self.live_arms()),
            "pulls": self.total_pulls,
            "schedules": self.total_schedules,
            "exploration": self.exploration,
        }

    def _gauge_live(self) -> None:
        registry = obs_metrics.active()
        if registry is not None:
            registry.set_gauge("alloc.arms_live", len(self.live_arms()))
            registry.set_gauge("alloc.arms_total", len(self._arms))
