"""Race search strategies on one program under a UCB1 budget allocator.

``adaptive_first_finding`` answers the estimator question "how many
schedules does it cost to manifest this bug *if you don't know in
advance which strategy is right*?"  It registers one bandit arm per
strategy and lets :class:`repro.alloc.ucb.UCBAllocator` decide where
every slice of schedules goes:

* ``dfs`` / ``sleepset`` — sliced systematic search.  Each pull runs one
  slice of the explorer and checkpoints the pending stack in an
  :class:`repro.sim.frontier.ExplorationFrontier`; the next pull resumes
  exactly where the slice stopped, so no schedule is ever re-run.  An
  arm whose search drains its state space without a finding is retired.
* ``random`` / ``pct`` — seeded sampling.  Each pull runs the next block
  of seeds (resume-by-seed-offset), so the sequence of runs is identical
  to an uninterrupted loop over ``range(n)``.

Payout per pull is the number of previously unseen terminal outcomes
(shared across arms — rediscovering what another strategy already saw
earns nothing) plus :data:`repro.alloc.ucb.FINDING_BONUS` on the first
failure.  Slices start tiny and double per arm (probe-then-grow), so a
wrong strategy costs a handful of schedules before the bandit walks
away from it.

The whole race is deterministic for a given program, strategy tuple and
seed: the allocator breaks ties by registration order and samplers
consume seeds in sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.alloc.ucb import FINDING_BONUS, UCBAllocator
from repro.obs import runlog as obs_runlog
from repro.sim.engine import RunResult, run_program
from repro.sim.explorer import Explorer, _outcome_key
from repro.sim.program import Program
from repro.sim.reduction import SleepSetExplorer
from repro.sim.scheduler import (
    CooperativeScheduler,
    PCTScheduler,
    RandomScheduler,
)

__all__ = [
    "AdaptiveOutcome",
    "DEFAULT_STRATEGIES",
    "adaptive_first_finding",
    "derive_horizon",
]

#: Registration order doubles as the probe order: systematic search
#: first (it wins outright on small state spaces), samplers after.
DEFAULT_STRATEGIES = ("dfs", "sleepset", "random", "pct")


def derive_horizon(program: Program, max_steps: int = 5000, floor: int = 4) -> int:
    """A PCT horizon grounded in the program's real step count.

    PCT's priority-change points only matter when they land *inside* the
    run, so the horizon should track how many scheduling decisions a run
    of this program actually takes.  We take the longest of a cooperative
    (run-to-block) and a seed-0 random run — two cheap probes that
    bracket short and interleaved executions — and never go below
    ``floor`` so degenerate programs keep a usable change-point range.
    """
    coop = run_program(program, CooperativeScheduler(), max_steps=max_steps)
    rand = run_program(program, RandomScheduler(seed=0), max_steps=max_steps)
    return max(len(coop.schedule), len(rand.schedule), floor)


@dataclass
class AdaptiveOutcome:
    """Result of one adaptive race over a single program."""

    program: str
    found: bool
    winner: Optional[str]
    schedules: int
    pulls: int
    witness_schedule: Optional[List[str]] = None
    arms: List[Dict[str, Any]] = field(default_factory=list)

    def summary(self) -> str:
        """Return a one-line human-readable account of the race outcome."""
        verdict = (
            f"found by {self.winner}" if self.found else "budget exhausted"
        )
        return (
            f"adaptive[{self.program}]: {verdict} after "
            f"{self.schedules} schedules / {self.pulls} pulls"
        )


@dataclass
class _Pull:
    """One slice's yield, normalised across arm kinds."""

    spent: int
    outcomes: List[Tuple]
    witness: Optional[RunResult]
    exhausted: bool
    proven_clean: bool = False


class _SlicedSearchArm:
    """A systematic explorer advanced one frontier slice per pull."""

    def __init__(
        self,
        strategy: str,
        program: Program,
        failure: Callable[[RunResult], bool],
        max_total: int,
        max_steps: int,
        memoize: bool,
    ):
        self.strategy = strategy
        self.failure = failure
        if strategy == "dfs":
            self.explorer: Any = Explorer(
                program, max_schedules=max_total, max_steps=max_steps,
                keep_matches=1, memoize=memoize,
            )
        elif strategy == "sleepset":
            self.explorer = SleepSetExplorer(
                program, max_schedules=max_total, max_steps=max_steps,
                keep_matches=1, memoize=memoize,
            )
        else:  # pragma: no cover - guarded by the caller
            raise ValueError(f"not a sliced search strategy: {strategy!r}")
        self.frontier: Any = None
        self._attempts = 0

    def pull(self, slice_budget: int) -> "_Pull":
        """Run one slice; checkpoint the frontier for the next pull."""
        result = self.explorer.explore(
            predicate=self.failure,
            stop_on_first=True,
            slice_budget=slice_budget,
            frontier=self.frontier,
        )
        self.frontier = result.frontier
        attempts = result.schedules_run + result.cache_hits
        if self.strategy == "sleepset":
            attempts += self.explorer.pruned_runs
        spent = max(1, attempts - self._attempts)
        self._attempts = attempts
        witness = result.matching[0] if result.match_count else None
        # A terminal slice (no frontier) with no finding means the search
        # drained its state space or hit the global cap: retire the arm.
        # A *complete* drain is stronger — the whole bounded interleaving
        # space holds no failure, so the entire race can stop.
        exhausted = self.frontier is None and witness is None
        proven_clean = exhausted and result.complete
        return _Pull(spent, list(result.outcomes), witness, exhausted, proven_clean)


class _SamplerArm:
    """A seeded sampler advanced one block of seeds per pull."""

    def __init__(
        self,
        strategy: str,
        program: Program,
        failure: Callable[[RunResult], bool],
        max_steps: int,
        seed: int,
        pct_depth: int,
        horizon: int,
    ):
        self.strategy = strategy
        self.program = program
        self.failure = failure
        self.max_steps = max_steps
        self.seed = seed
        self.next_offset = 0
        if strategy == "random":
            self._factory: Callable[[int], Any] = (
                lambda s: RandomScheduler(seed=s)
            )
        elif strategy == "pct":
            self._factory = lambda s: PCTScheduler(
                seed=s, depth=pct_depth, horizon=horizon
            )
        else:  # pragma: no cover - guarded by the caller
            raise ValueError(f"not a sampler strategy: {strategy!r}")

    def pull(self, slice_budget: int) -> _Pull:
        """Run the next ``slice_budget`` seeds; stop early on a finding."""
        spent = 0
        outcomes: List[Tuple] = []
        witness: Optional[RunResult] = None
        for offset in range(self.next_offset, self.next_offset + slice_budget):
            run = run_program(
                self.program,
                self._factory(self.seed + offset),
                max_steps=self.max_steps,
            )
            spent += 1
            outcomes.append(_outcome_key(run))
            if self.failure(run):
                witness = run
                break
        self.next_offset += spent
        return _Pull(spent, outcomes, witness, exhausted=False)


def adaptive_first_finding(
    program: Program,
    failure: Callable[[RunResult], bool],
    *,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    max_total: int = 4000,
    probe_budget: int = 2,
    growth: float = 2.0,
    max_slice: int = 64,
    max_steps: int = 5000,
    memoize: bool = True,
    seed: int = 0,
    pct_depth: int = 3,
    pct_horizon: Optional[int] = None,
    exploration: Optional[float] = None,
) -> AdaptiveOutcome:
    """Hunt ``program``'s first failure, splitting budget across strategies.

    Spends at most ``max_total`` schedules in total (summed over every
    arm), one slice at a time, until ``failure`` manifests or the budget
    runs dry.  Slice sizes per arm follow ``probe_budget * growth**pulls``
    capped at ``max_slice``.  See the module docstring for arm and payout
    semantics; ``docs/allocator.md`` for tuning guidance.
    """
    if max_total < 1:
        raise ValueError("max_total must be >= 1")
    if probe_budget < 1:
        raise ValueError("probe_budget must be >= 1")
    unknown = [s for s in strategies if s not in DEFAULT_STRATEGIES]
    if unknown:
        raise ValueError(
            f"unknown strategies {unknown!r}; choose from {DEFAULT_STRATEGIES}"
        )
    horizon = (
        pct_horizon if pct_horizon is not None
        else derive_horizon(program, max_steps=max_steps)
    )
    allocator = (
        UCBAllocator() if exploration is None
        else UCBAllocator(exploration=exploration)
    )
    arms: Dict[str, Any] = {}
    for strategy in strategies:
        if strategy in ("dfs", "sleepset"):
            arms[strategy] = _SlicedSearchArm(
                strategy, program, failure, max_total, max_steps, memoize
            )
        else:
            arms[strategy] = _SamplerArm(
                strategy, program, failure, max_steps, seed, pct_depth, horizon
            )
        allocator.add_arm(program.name, strategy)

    seen_outcomes: Set[Tuple] = set()
    spent_total = 0
    found = False
    winner: Optional[str] = None
    witness_schedule: Optional[List[str]] = None
    while spent_total < max_total and not found:
        key = allocator.select()
        if key is None:
            break  # every arm retired: the space is exhausted, bug-free
        _, strategy = key
        stats = allocator.arm(key)
        slice_budget = min(
            max_slice,
            int(probe_budget * growth ** stats.pulls),
            max_total - spent_total,
        )
        pull = arms[strategy].pull(slice_budget)
        fresh = [k for k in pull.outcomes if k not in seen_outcomes]
        seen_outcomes.update(fresh)
        payout = float(len(fresh))
        if pull.witness is not None:
            payout += FINDING_BONUS
            found = True
            winner = strategy
            witness_schedule = list(pull.witness.schedule)
        allocator.record(key, pull.spent, payout, finding=pull.witness is not None)
        spent_total += pull.spent
        if pull.exhausted:
            allocator.retire(key)
        if pull.proven_clean:
            # A complete systematic search saw every reachable outcome
            # without a failure — sampling further is pure waste.
            allocator.retire_job(program.name)
    outcome = AdaptiveOutcome(
        program=program.name,
        found=found,
        winner=winner,
        schedules=spent_total,
        pulls=allocator.total_pulls,
        witness_schedule=witness_schedule,
        arms=allocator.stats(),
    )
    obs_runlog.emit(
        "alloc.race",
        program=program.name,
        found=found,
        winner=winner,
        schedules=spent_total,
        pulls=outcome.pulls,
        strategies=list(strategies),
        max_total=max_total,
    )
    return outcome
