"""Real-Python frontend: summarize ordinary ``threading`` modules.

The rest of :mod:`repro.static` reads the yield-Op DSL; this module
reads the code people actually write.  :func:`frontend` parses a plain
Python module that uses :mod:`threading` / :mod:`queue` —

* ``with lock:`` blocks and explicit ``acquire()``/``release()`` calls,
* ``threading.Thread(target=...)`` construction plus ``start``/``join``,
* ``Condition.wait`` / ``notify`` / ``notify_all`` (a bare
  ``Condition()`` gets a synthesized ``<name>.mutex``),
* ``Semaphore`` / ``BoundedSemaphore`` and ``Barrier`` declarations,
* ``queue.Queue`` mapped to a declared channel (``put``/``get`` become
  ``send``/``recv`` sites),
* shared state through module globals (``global x``; reads need no
  declaration) and ``self.`` / instance attributes of module-level
  objects (``state.flag`` summarizes as the variable ``"state.flag"``),

— and produces the same :class:`~repro.static.summary.ProgramSummary`
vocabulary every candidate pass already consumes, so lockset, lock
order, order, message, and weak-memory analyses run on real source
unchanged.  Interprocedural support inlines module helper functions and
instance methods through the call graph with a depth/recursion cutoff;
anything unresolvable is summarized conservatively (an ``approximate``
note, never a silently dropped effect).

Beyond the DSL extractor, frontend summaries carry *liftable* structure:
:class:`~repro.static.summary.SiteGuard` on branches/loops (which site's
value the condition tests), resolved write/send values, and
:class:`~repro.static.summary.SummaryDeref` markers where a read value
is dereferenced — exactly what :mod:`repro.static.lift` needs to compile
the summary back into a runnable simulator :class:`Program` for dynamic
confirmation.

Ground truth: corpus modules under ``examples/realworld/`` annotate
their planted bugs in a module-level ``REPRO_EXPECT`` dict
(:func:`parse_expectations`); :func:`load_corpus` pairs buggy/fixed
variants for the recall gate and the bench funnel.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import ReproError
from repro.static.summary import (
    OpSite,
    ProgramSummary,
    SiteGuard,
    SummaryBranch,
    SummaryDeref,
    SummaryLoop,
    SummaryNode,
    SummaryOp,
    SummaryReturn,
    ThreadSummary,
    _exclusive_pairs,
)

__all__ = [
    "PYSOURCE_VERSION",
    "GroundTruthBug",
    "SourceModule",
    "SourceError",
    "frontend",
    "parse_expectations",
    "annotation_matches",
    "load_source",
    "load_corpus",
]

#: Folded into service cache keys: bump on any change to extraction
#: semantics so persisted verdicts for source jobs are invalidated.
PYSOURCE_VERSION = "repro.static.pysource/v1"

#: Candidate kinds annotations may expect (mirrors the passes' output).
_CANDIDATE_KINDS = frozenset(
    {"data-race", "atomicity-violation", "order-violation", "deadlock"}
)

#: How an annotated bug manifests when the lifted program is explored.
_MANIFESTATIONS = frozenset({"finding", "crash", "deadlock", "hang"})

#: Builtins with no shared-state effect of their own; their arguments
#: are still scanned for shared reads.
_PURE_CALLS = frozenset(
    {
        "print", "len", "str", "int", "float", "bool", "repr", "format",
        "abs", "min", "max", "sorted", "list", "dict", "set", "tuple",
        "range", "isinstance", "enumerate", "sum", "object",
    }
)

#: Maximum helper-inlining depth through the call graph.
_INLINE_DEPTH = 5


class SourceError(ReproError):
    """The module cannot be analyzed at all (parse error, no entry)."""


@dataclass(frozen=True)
class GroundTruthBug:
    """One annotated bug in a corpus module's ``REPRO_EXPECT``."""

    kind: str
    variables: Tuple[str, ...] = ()
    resources: Tuple[str, ...] = ()
    manifestation: str = "finding"
    confirmable: bool = True
    note: str = ""

    def describe(self) -> str:
        """One-line human rendering, e.g. ``[data-race] on conn (crash)``."""
        what = ", ".join(self.variables + self.resources) or "?"
        return f"[{self.kind}] on {what} ({self.manifestation})"


@dataclass
class SourceModule:
    """One analyzed real-Python module plus its ground-truth annotations."""

    name: str
    summary: ProgramSummary
    bugs: Tuple[GroundTruthBug, ...] = ()
    #: Stem of the buggy variant this module fixes (fixed variants only).
    fixed_of: Optional[str] = None
    path: Optional[Path] = None

    @property
    def is_fixed(self) -> bool:
        return self.fixed_of is not None


def annotation_matches(bug: GroundTruthBug, candidate: Any) -> bool:
    """Whether an active static candidate covers one annotation.

    Same matching discipline as the dynamic cross-check
    (:meth:`DetectorSuite.analyse_static`): kind equality, variable
    intersection, resource-set inclusion either way.
    """
    if candidate.kind != bug.kind:
        return False
    if bug.variables and not (set(bug.variables) & set(candidate.variables)):
        return False
    if bug.resources:
        found = frozenset(candidate.resources)
        expected = frozenset(bug.resources)
        if not (expected <= found or (found and found <= expected)):
            return False
    return True


# -- resource model ----------------------------------------------------------


@dataclass
class _Resource:
    """One declared shared object (module global or instance attribute)."""

    kind: str  # "lock" | "cond" | "sem" | "barrier" | "chan" | "var" | "instance"
    name: str
    mutex: Optional[str] = None  # conditions: the associated lock
    capacity: Optional[int] = None  # channels
    cls: Optional[str] = None  # instances: class name


@dataclass(frozen=True)
class _SiteRef:
    """Local bound to the value a read/recv site produced."""

    index: int
    kind: str
    obj: str


@dataclass(frozen=True)
class _Const:
    value: Any


@dataclass(frozen=True)
class _Opaque:
    token: str


@dataclass(frozen=True)
class _ThreadRef:
    name: str


_Binding = Union[_Resource, _SiteRef, _Const, _Opaque, _ThreadRef]


@dataclass
class _ThreadSpec:
    """A discovered ``threading.Thread`` target awaiting extraction."""

    name: str
    func: ast.FunctionDef
    args: Dict[str, Any] = field(default_factory=dict)
    instance: Optional[str] = None  # bound-method targets: the instance


# -- module scan -------------------------------------------------------------


def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` attribute chains as a dotted string (else ``None``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


class _ModuleScanner:
    """Collect declarations, functions, classes, and annotations."""

    def __init__(self, name: str, tree: ast.Module):
        self.name = name
        self.tree = tree
        self.functions: Dict[str, ast.FunctionDef] = {}
        self.classes: Dict[str, ast.ClassDef] = {}
        self.resources: Dict[str, _Resource] = {}
        self.initial: Dict[str, Any] = {}
        self.locks: List[str] = []
        self.conditions: Dict[str, str] = {}
        self.semaphores: Dict[str, int] = {}
        self.barriers: Dict[str, int] = {}
        self.channels: Dict[str, Optional[int]] = {}
        self.imports: Dict[str, str] = {}  # local alias -> dotted origin
        self.expect_raw: Optional[Dict[str, Any]] = None
        self.main_guard: List[ast.stmt] = []
        self.notes: List[str] = []

    def scan(self) -> None:
        for stmt in self.tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    self.imports[alias.asname or alias.name] = alias.name
            elif isinstance(stmt, ast.ImportFrom) and stmt.module:
                for alias in stmt.names:
                    self.imports[alias.asname or alias.name] = (
                        f"{stmt.module}.{alias.name}"
                    )
            elif isinstance(stmt, ast.FunctionDef):
                self.functions[stmt.name] = stmt
            elif isinstance(stmt, ast.ClassDef):
                self.classes[stmt.name] = stmt
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    self._declare(target.id, stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    self._declare(stmt.target.id, stmt.value)
            elif (
                isinstance(stmt, ast.If)
                and isinstance(stmt.test, ast.Compare)
                and _dotted(stmt.test.left) == "__name__"
            ):
                self.main_guard = stmt.body
            elif isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue  # module docstring
            else:
                self.notes.append(
                    f"line {stmt.lineno}: unmodelled module-level statement "
                    f"({type(stmt).__name__})"
                )

    # -- declaration classification --------------------------------------

    def callee_of(self, call: ast.Call) -> Optional[str]:
        """Canonical dotted name of a call's target (import-aware)."""
        dotted = _dotted(call.func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        origin = self.imports.get(head)
        if origin:
            return f"{origin}.{rest}" if rest else origin
        return dotted

    def _declare(self, name: str, value: ast.expr) -> None:
        if name == "REPRO_EXPECT":
            try:
                self.expect_raw = ast.literal_eval(value)
            except (ValueError, SyntaxError):
                self.notes.append("REPRO_EXPECT is not a literal dict")
            return
        if isinstance(value, ast.Constant):
            self.resources[name] = _Resource("var", name)
            self.initial[name] = value.value
            return
        if isinstance(value, ast.Call):
            self._declare_call(name, value)
            return
        self.resources[name] = _Resource("var", name)
        self.initial[name] = f"<{name}>"
        self.notes.append(
            f"line {value.lineno}: initial value of {name!r} is opaque "
            f"(kept as a non-sentinel token)"
        )

    def _declare_call(self, name: str, call: ast.Call) -> None:
        callee = self.callee_of(call)
        tail = callee.rsplit(".", 1)[-1] if callee else None
        if tail in ("Lock", "RLock"):
            self.resources[name] = _Resource("lock", name)
            self.locks.append(name)
        elif tail == "Condition":
            mutex = None
            if call.args:
                arg = _dotted(call.args[0])
                if arg in self.resources and self.resources[arg].kind == "lock":
                    mutex = arg
            if mutex is None:
                mutex = f"{name}.mutex"
                self.locks.append(mutex)
            self.resources[name] = _Resource("cond", name, mutex=mutex)
            self.conditions[name] = mutex
        elif tail in ("Semaphore", "BoundedSemaphore"):
            permits = 1
            if call.args and isinstance(call.args[0], ast.Constant):
                permits = int(call.args[0].value)
            self.resources[name] = _Resource("sem", name)
            self.semaphores[name] = permits
        elif tail == "Barrier":
            parties = 2
            if call.args and isinstance(call.args[0], ast.Constant):
                parties = int(call.args[0].value)
            self.resources[name] = _Resource("barrier", name)
            self.barriers[name] = parties
        elif tail in ("Queue", "LifoQueue", "SimpleQueue"):
            capacity: Optional[int] = None
            size = None
            if call.args and isinstance(call.args[0], ast.Constant):
                size = call.args[0].value
            for kw in call.keywords:
                if kw.arg == "maxsize" and isinstance(kw.value, ast.Constant):
                    size = kw.value.value
            if isinstance(size, int) and size > 0:
                capacity = size
            self.resources[name] = _Resource("chan", name, capacity=capacity)
            self.channels[name] = capacity
        elif tail in self.classes:
            self.resources[name] = _Resource("instance", name, cls=tail)
            self._declare_instance(name, self.classes[tail])
        else:
            self.resources[name] = _Resource("var", name)
            self.initial[name] = f"<{name}>"
            self.notes.append(
                f"line {call.lineno}: {name!r} built by unknown call "
                f"{callee or '?'}; kept as an opaque non-sentinel value"
            )

    def _declare_instance(self, instance: str, cls: ast.ClassDef) -> None:
        """``self.X = ...`` in ``__init__`` declares ``<instance>.X``."""
        init = next(
            (
                stmt
                for stmt in cls.body
                if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"
            ),
            None,
        )
        if init is None:
            return
        for stmt in init.body:
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
                continue
            target = stmt.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            self._declare(f"{instance}.{target.attr}", stmt.value)

    def method_of(self, cls_name: str, method: str) -> Optional[ast.FunctionDef]:
        cls = self.classes.get(cls_name)
        if cls is None:
            return None
        return next(
            (
                stmt
                for stmt in cls.body
                if isinstance(stmt, ast.FunctionDef) and stmt.name == method
            ),
            None,
        )


# -- expectation parsing -----------------------------------------------------


def parse_expectations(
    raw: Optional[Dict[str, Any]]
) -> Tuple[Tuple[GroundTruthBug, ...], Optional[str]]:
    """Validate a ``REPRO_EXPECT`` literal into ground-truth annotations."""
    if raw is None:
        return (), None
    if not isinstance(raw, dict):
        raise SourceError("REPRO_EXPECT must be a dict literal")
    fixed_of = raw.get("fixed_of")
    if fixed_of is not None and not isinstance(fixed_of, str):
        raise SourceError("REPRO_EXPECT['fixed_of'] must be a string")
    bugs: List[GroundTruthBug] = []
    for entry in raw.get("bugs", ()):
        if not isinstance(entry, dict):
            raise SourceError("REPRO_EXPECT['bugs'] entries must be dicts")
        kind = entry.get("kind")
        if kind not in _CANDIDATE_KINDS:
            raise SourceError(
                f"unknown expected kind {kind!r}; one of "
                f"{', '.join(sorted(_CANDIDATE_KINDS))}"
            )
        manifestation = entry.get("manifestation", "finding")
        if manifestation not in _MANIFESTATIONS:
            raise SourceError(
                f"unknown manifestation {manifestation!r}; one of "
                f"{', '.join(sorted(_MANIFESTATIONS))}"
            )
        bugs.append(
            GroundTruthBug(
                kind=kind,
                variables=tuple(entry.get("variables", ())),
                resources=tuple(entry.get("resources", ())),
                manifestation=manifestation,
                confirmable=bool(entry.get("confirmable", True)),
                note=str(entry.get("note", "")),
            )
        )
    return tuple(bugs), fixed_of


# -- body extraction ---------------------------------------------------------


@dataclass
class _Frame:
    """One lexical frame of the (possibly inlined) walk."""

    locals: Dict[str, _Binding] = field(default_factory=dict)
    global_names: Set[str] = field(default_factory=set)
    instance: Optional[str] = None


class _BodyExtractor:
    """Walk one thread's statements into summary nodes and sites."""

    def __init__(self, scanner: _ModuleScanner, thread: str, registry: "_ThreadRegistry"):
        self.scanner = scanner
        self.thread = thread
        self.registry = registry
        self.index = 0
        self.sites: List[OpSite] = []
        self.notes: List[str] = []
        self.approximate = False
        self.frames: List[_Frame] = []
        self.call_stack: List[str] = []
        #: Last top-level statement of each helper being inlined, so a
        #: trailing ``return`` can be recognised and dropped silently.
        self.inline_last: List[Optional[ast.stmt]] = []

    # -- bookkeeping ------------------------------------------------------

    @property
    def frame(self) -> _Frame:
        return self.frames[-1]

    def note(self, lineno: Optional[int], text: str, approximate: bool = True) -> None:
        where = f"line {lineno}: " if lineno else ""
        self.notes.append(f"{where}{text}")
        if approximate:
            self.approximate = True

    def emit(
        self,
        kind: str,
        obj: Optional[str],
        conditional: bool,
        lineno: Optional[int],
        value: Any = None,
    ) -> SummaryOp:
        site = OpSite(
            thread=self.thread,
            index=self.index,
            kind=kind,
            obj=obj,
            label=f"{self.thread}.{self.index}@L{lineno}",
            conditional=conditional,
            lineno=lineno,
        )
        self.index += 1
        self.sites.append(site)
        return SummaryOp(site, value=value)

    # -- name resolution --------------------------------------------------

    def binding_of(self, name: str) -> Optional[_Binding]:
        if name in self.frame.locals and name not in self.frame.global_names:
            return self.frame.locals[name]
        return self.scanner.resources.get(name)

    def resource_of(self, expr: ast.expr) -> Optional[_Resource]:
        """The declared sync/channel resource an expression denotes."""
        binding = self._binding_of_expr(expr)
        if isinstance(binding, _Resource) and binding.kind != "var":
            return binding
        return None

    def _binding_of_expr(self, expr: ast.expr) -> Optional[_Binding]:
        if isinstance(expr, ast.Name):
            return self.binding_of(expr.id)
        if isinstance(expr, ast.Attribute):
            base: Optional[str] = None
            if isinstance(expr.value, ast.Name):
                if expr.value.id == "self" and self.frame.instance:
                    base = self.frame.instance
                else:
                    inner = self.binding_of(expr.value.id)
                    if isinstance(inner, _Resource) and inner.kind == "instance":
                        base = inner.name
            if base is not None:
                return self.scanner.resources.get(f"{base}.{expr.attr}")
        return None

    def shared_var_of(self, expr: ast.expr) -> Optional[str]:
        """The shared-variable name an expression reads, if any."""
        binding = self._binding_of_expr(expr)
        if isinstance(binding, _Resource) and binding.kind == "var":
            return binding.name
        if isinstance(expr, ast.Name):
            # Reads of names declared ``global`` but never initialised at
            # module level: register them as sentinel-initialised vars.
            if expr.id in self.frame.global_names and expr.id not in self.scanner.resources:
                self.scanner.resources[expr.id] = _Resource("var", expr.id)
                self.scanner.initial[expr.id] = None
                self.note(
                    expr.lineno,
                    f"global {expr.id!r} has no module-level initialiser; "
                    f"assumed None",
                    approximate=False,
                )
                return expr.id
        return None

    # -- expression scanning ----------------------------------------------

    def scan_expr(
        self,
        expr: Optional[ast.expr],
        conditional: bool,
        nodes: List[SummaryNode],
        deref: bool = False,
    ) -> Optional[_Binding]:
        """Emit Read/Deref sites for shared state an expression touches.

        Returns a binding for the expression's value when statically
        known (constants, locals, a single shared read).
        """
        if expr is None:
            return _Const(None)
        if isinstance(expr, ast.Constant):
            return _Const(expr.value)
        var = self.shared_var_of(expr)
        if var is not None:
            op = self.emit("read", var, conditional, expr.lineno)
            nodes.append(op)
            if deref:
                nodes.append(SummaryDeref(op.site.index, var))
            return _SiteRef(op.site.index, "read", var)
        if isinstance(expr, ast.Name):
            binding = self.binding_of(expr.id)
            if binding is not None:
                if deref and isinstance(binding, _SiteRef):
                    nodes.append(SummaryDeref(binding.index, binding.obj))
                return binding
            return None
        if isinstance(expr, ast.Call):
            return self.scan_call(expr, conditional, nodes)
        if isinstance(expr, ast.Attribute):
            # Not a shared var or resource: a dereference of whatever the
            # base is (``handle.write`` on a local, ``obj.attr`` chains).
            self.scan_expr(expr.value, conditional, nodes, deref=True)
            return None
        if isinstance(expr, ast.UnaryOp):
            self.scan_expr(expr.operand, conditional, nodes)
            return None
        if isinstance(expr, ast.BinOp):
            self.scan_expr(expr.left, conditional, nodes)
            self.scan_expr(expr.right, conditional, nodes)
            return None
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                self.scan_expr(value, conditional, nodes)
            return None
        if isinstance(expr, ast.Compare):
            self.scan_expr(expr.left, conditional, nodes)
            for comparator in expr.comparators:
                self.scan_expr(comparator, conditional, nodes)
            return None
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for element in expr.elts:
                self.scan_expr(element, conditional, nodes)
            return None
        if isinstance(expr, ast.Dict):
            for key in expr.keys:
                self.scan_expr(key, conditional, nodes)
            for value in expr.values:
                self.scan_expr(value, conditional, nodes)
            return None
        if isinstance(expr, ast.Subscript):
            self.scan_expr(expr.value, conditional, nodes, deref=True)
            self.scan_expr(expr.slice, conditional, nodes)
            return None
        if isinstance(expr, ast.JoinedStr):
            for piece in expr.values:
                if isinstance(piece, ast.FormattedValue):
                    self.scan_expr(piece.value, conditional, nodes)
            return None
        if isinstance(expr, ast.IfExp):
            self.scan_expr(expr.test, conditional, nodes)
            self.scan_expr(expr.body, conditional, nodes)
            self.scan_expr(expr.orelse, conditional, nodes)
            return None
        self.note(
            getattr(expr, "lineno", None),
            f"unmodelled expression ({type(expr).__name__})",
        )
        return None

    def value_of(self, binding: Optional[_Binding], lineno: Optional[int]) -> Any:
        """A liftable value for a write/send payload."""
        if isinstance(binding, _Const):
            value = binding.value
            if value is None or isinstance(value, (bool, int, float, str)):
                return value
        return f"<{self.thread}@L{lineno}>"

    # -- calls -------------------------------------------------------------

    def scan_call(
        self, call: ast.Call, conditional: bool, nodes: List[SummaryNode]
    ) -> Optional[_Binding]:
        """Classify one call: sync op, thread op, helper inline, unknown."""
        func = call.func
        # Method-style calls on declared resources / thread handles.
        if isinstance(func, ast.Attribute):
            handled = self._resource_call(func, call, conditional, nodes)
            if handled is not _UNHANDLED:
                return handled
        callee = self.scanner.callee_of(call)
        if callee == "time.sleep":
            nodes.append(self.emit("sleep", None, conditional, call.lineno))
            return None
        if callee == "threading.Thread":
            return self._thread_ctor(call)
        if callee in ("time.time", "time.monotonic", "time.perf_counter"):
            return None
        tail = callee.rsplit(".", 1)[-1] if callee else None
        if callee in self.scanner.functions:
            return self._inline(
                self.scanner.functions[callee], call, conditional, nodes, None
            )
        bound = self._bound_method(func)
        if bound is not None:
            method_def, instance = bound
            return self._inline(method_def, call, conditional, nodes, instance)
        # A method call on a shared value (``conn.send(...)``): the base
        # read *is* a dereference — emit it before scanning arguments.
        deref_base = isinstance(func, ast.Attribute) and (
            self.shared_var_of(func.value) is not None
            or isinstance(self._value_binding(func.value), _SiteRef)
        )
        if deref_base:
            self.scan_expr(func, conditional, nodes)
        for arg in call.args:
            self.scan_expr(arg, conditional, nodes)
        for kw in call.keywords:
            self.scan_expr(kw.value, conditional, nodes)
        if deref_base:
            self.note(
                call.lineno,
                f"method call {_dotted(func) or '?'}(); modelled as a "
                f"dereference of the base value",
                approximate=False,
            )
        elif tail not in _PURE_CALLS:
            self.note(
                call.lineno,
                f"unknown call {callee or ast.dump(func)[:30]!r} summarized "
                f"conservatively (arguments scanned, effects unknown)",
            )
        return None

    def _value_binding(self, expr: ast.expr) -> Optional[_Binding]:
        """The binding of a plain local name, if that's what ``expr`` is."""
        if isinstance(expr, ast.Name):
            return self.binding_of(expr.id)
        return None

    def _bound_method(
        self, func: ast.expr
    ) -> Optional[Tuple[ast.FunctionDef, str]]:
        """``instance.method(...)`` / ``self.method(...)`` resolution."""
        if not isinstance(func, ast.Attribute):
            return None
        instance: Optional[str] = None
        if isinstance(func.value, ast.Name):
            if func.value.id == "self" and self.frame.instance:
                instance = self.frame.instance
            else:
                binding = self.binding_of(func.value.id)
                if isinstance(binding, _Resource) and binding.kind == "instance":
                    instance = binding.name
        if instance is None:
            return None
        resource = self.scanner.resources.get(instance)
        if resource is None or resource.cls is None:
            return None
        method = self.scanner.method_of(resource.cls, func.attr)
        if method is None:
            return None
        return method, instance

    _CHANNEL_METHODS = {"put": "send", "put_nowait": "send", "get": "recv", "get_nowait": "recv"}

    def _resource_call(
        self,
        func: ast.Attribute,
        call: ast.Call,
        conditional: bool,
        nodes: List[SummaryNode],
    ) -> Any:
        resource = self.resource_of(func.value)
        method = func.attr
        lineno = call.lineno
        if resource is None:
            binding = self._binding_of_expr(func.value) or (
                self.binding_of(func.value.id)
                if isinstance(func.value, ast.Name)
                else None
            )
            if isinstance(binding, _ThreadRef):
                if method == "start":
                    nodes.append(self.emit("spawn", binding.name, conditional, lineno))
                    return None
                if method == "join":
                    nodes.append(self.emit("join", binding.name, conditional, lineno))
                    return None
            return _UNHANDLED
        kind = resource.kind
        if kind == "lock":
            if method == "acquire":
                nodes.append(self.emit("acquire", resource.name, conditional, lineno))
                return None
            if method == "release":
                nodes.append(self.emit("release", resource.name, conditional, lineno))
                return None
        elif kind == "cond":
            if method in ("acquire", "release"):
                nodes.append(self.emit(method, resource.mutex, conditional, lineno))
                return None
            if method == "wait":
                nodes.append(self.emit("wait", resource.name, conditional, lineno))
                return None
            if method == "notify":
                nodes.append(self.emit("notify", resource.name, conditional, lineno))
                return None
            if method == "notify_all":
                nodes.append(self.emit("notify_all", resource.name, conditional, lineno))
                return None
            if method == "wait_for":
                self.note(lineno, "Condition.wait_for modelled as a bare wait")
                nodes.append(self.emit("wait", resource.name, conditional, lineno))
                return None
        elif kind == "sem":
            if method == "acquire":
                nodes.append(self.emit("sem_acquire", resource.name, conditional, lineno))
                return None
            if method == "release":
                nodes.append(self.emit("sem_release", resource.name, conditional, lineno))
                return None
        elif kind == "barrier":
            if method == "wait":
                nodes.append(self.emit("barrier_wait", resource.name, conditional, lineno))
                return None
        elif kind == "chan":
            op = self._CHANNEL_METHODS.get(method)
            if op == "send":
                value_binding = (
                    self.scan_expr(call.args[0], conditional, nodes)
                    if call.args
                    else _Const(None)
                )
                if method == "put_nowait":
                    self.note(
                        lineno, "put_nowait modelled as a blocking send",
                        approximate=False,
                    )
                nodes.append(
                    self.emit(
                        "send", resource.name, conditional, lineno,
                        value=self.value_of(value_binding, lineno),
                    )
                )
                return None
            if op == "recv":
                if method == "get_nowait":
                    self.note(
                        lineno, "get_nowait modelled as a blocking recv",
                        approximate=False,
                    )
                site = self.emit("recv", resource.name, conditional, lineno)
                nodes.append(site)
                return _SiteRef(site.site.index, "recv", resource.name)
            if method == "task_done":
                return None
            if method in ("qsize", "empty", "full"):
                self.note(lineno, f"Queue.{method} result treated as opaque")
                return None
            if method == "join":
                self.note(lineno, "Queue.join has no channel mapping; skipped")
                return None
        self.note(
            lineno,
            f"unmodelled method {method!r} on {kind} {resource.name!r}",
        )
        return None

    def _thread_ctor(self, call: ast.Call) -> Optional[_Binding]:
        """``threading.Thread(target=..., args=..., name=...)``."""
        target_expr: Optional[ast.expr] = None
        args_expr: Optional[ast.expr] = None
        declared: Optional[str] = None
        for kw in call.keywords:
            if kw.arg == "target":
                target_expr = kw.value
            elif kw.arg == "args":
                args_expr = kw.value
            elif kw.arg == "name" and isinstance(kw.value, ast.Constant):
                declared = str(kw.value.value)
        if target_expr is None:
            self.note(call.lineno, "Thread() without a resolvable target=")
            return None
        func_def: Optional[ast.FunctionDef] = None
        instance: Optional[str] = None
        dotted = _dotted(target_expr)
        if dotted in self.scanner.functions:
            func_def = self.scanner.functions[dotted]
        else:
            bound = (
                self._bound_method(target_expr)
                if isinstance(target_expr, ast.Attribute)
                else None
            )
            if bound is not None:
                func_def, instance = bound
        if func_def is None:
            self.note(
                call.lineno,
                f"Thread target {dotted or '?'} is not a module function",
            )
            return None
        bound_args: Dict[str, Any] = {}
        params = [a.arg for a in func_def.args.args if a.arg != "self"]
        if isinstance(args_expr, (ast.Tuple, ast.List)):
            for param, arg in zip(params, args_expr.elts):
                if isinstance(arg, ast.Constant):
                    bound_args[param] = arg.value
        name = self.registry.register(
            declared or func_def.name, func_def, bound_args, instance
        )
        return _ThreadRef(name)

    # -- helper inlining ---------------------------------------------------

    def _inline(
        self,
        func_def: ast.FunctionDef,
        call: ast.Call,
        conditional: bool,
        nodes: List[SummaryNode],
        instance: Optional[str],
    ) -> Optional[_Binding]:
        if len(self.call_stack) >= _INLINE_DEPTH:
            self.note(call.lineno, f"inline depth limit at {func_def.name}()")
            return None
        if func_def.name in self.call_stack:
            self.note(
                call.lineno,
                f"recursive call to {func_def.name}() cut off",
            )
            return None
        frame = _Frame(instance=instance)
        params = [a.arg for a in func_def.args.args if a.arg != "self"]
        defaults = func_def.args.defaults
        for param, default in zip(params[len(params) - len(defaults):], defaults):
            if isinstance(default, ast.Constant):
                frame.locals[param] = _Const(default.value)
        for param, arg in zip(params, call.args):
            binding = self.scan_expr(arg, conditional, nodes)
            if binding is not None:
                frame.locals[param] = binding
        for kw in call.keywords:
            if kw.arg in params:
                binding = self.scan_expr(kw.value, conditional, nodes)
                if binding is not None:
                    frame.locals[kw.arg] = binding
        self.call_stack.append(func_def.name)
        self.frames.append(frame)
        self.inline_last.append(func_def.body[-1] if func_def.body else None)
        try:
            inner = self.walk(func_def.body, conditional)
        finally:
            self.inline_last.pop()
            self.frames.pop()
            self.call_stack.pop()
        nodes.extend(inner)
        return _Opaque(f"<{func_def.name}()>")

    # -- guards ------------------------------------------------------------

    def guard_of(
        self, test: ast.expr, conditional: bool, nodes: List[SummaryNode]
    ) -> Optional[SiteGuard]:
        """A liftable guard for a branch/loop test, emitting pre-reads."""
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            guard = self.guard_of(test.operand, conditional, nodes)
            return _invert(guard) if guard is not None else None
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            comparator = test.comparators[0]
            if isinstance(comparator, ast.Constant) and comparator.value is None:
                guard = self.guard_of(test.left, conditional, nodes)
                if guard is None or guard.mode != "truthy":
                    return None
                if isinstance(test.ops[0], (ast.Is, ast.Eq)):
                    return SiteGuard(guard.site, "is-none")
                if isinstance(test.ops[0], (ast.IsNot, ast.NotEq)):
                    return SiteGuard(guard.site, "not-none")
            return None
        var = self.shared_var_of(test)
        if var is not None:
            op = self.emit("read", var, conditional, test.lineno)
            nodes.append(op)
            return SiteGuard(op.site.index, "truthy")
        if isinstance(test, ast.Name):
            binding = self.binding_of(test.id)
            if isinstance(binding, _SiteRef):
                return SiteGuard(binding.index, "truthy")
        return None

    # -- statements --------------------------------------------------------

    def walk(
        self, stmts: Sequence[ast.stmt], conditional: bool
    ) -> Tuple[SummaryNode, ...]:
        nodes: List[SummaryNode] = []
        for stmt in stmts:
            self._statement(stmt, conditional, nodes)
        return tuple(nodes)

    def _statement(
        self, stmt: ast.stmt, conditional: bool, nodes: List[SummaryNode]
    ) -> None:
        if isinstance(stmt, ast.Global):
            self.frame.global_names.update(stmt.names)
            return
        if isinstance(stmt, ast.Expr):
            if isinstance(stmt.value, ast.Constant):
                return  # docstring / bare literal
            self.scan_expr(stmt.value, conditional, nodes)
            return
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            self._assign(stmt.targets[0], stmt.value, conditional, nodes)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(stmt.target, stmt.value, conditional, nodes)
            return
        if isinstance(stmt, ast.AugAssign):
            self._augassign(stmt, conditional, nodes)
            return
        if isinstance(stmt, ast.If):
            self._if(stmt, conditional, nodes)
            return
        if isinstance(stmt, ast.While):
            self._while(stmt, conditional, nodes)
            return
        if isinstance(stmt, ast.For):
            self._for(stmt, conditional, nodes)
            return
        if isinstance(stmt, ast.With):
            self._with(stmt, conditional, nodes)
            return
        if isinstance(stmt, ast.Return):
            self.scan_expr(stmt.value, conditional, nodes)
            if self.call_stack:
                # Ends the *helper*, not the thread.  A trailing return is
                # dropped exactly; a mid-helper return loses only path
                # truncation (exclusivity), the conservative direction.
                if not (self.inline_last and stmt is self.inline_last[-1]):
                    self.note(
                        stmt.lineno,
                        f"return inside inlined {self.call_stack[-1]}(); "
                        f"helper-local truncation dropped",
                    )
                return
            nodes.append(SummaryReturn())
            return
        if isinstance(stmt, ast.Raise):
            self.scan_expr(stmt.exc, conditional, nodes)
            self.note(
                stmt.lineno, "raise modelled as thread end", approximate=False
            )
            nodes.append(SummaryReturn())
            return
        if isinstance(stmt, ast.Try):
            arms = [self.walk(stmt.body, True)]
            for handler in stmt.handlers:
                arms.append(self.walk(handler.body, True))
            nodes.append(SummaryBranch(arms=tuple(arms)))
            nodes.extend(self.walk(stmt.finalbody, conditional))
            self.note(stmt.lineno, "try/except modelled as a branch")
            return
        if isinstance(stmt, ast.Assert):
            self.scan_expr(stmt.test, conditional, nodes)
            return
        if isinstance(stmt, (ast.Pass, ast.Import, ast.ImportFrom, ast.Nonlocal)):
            return
        if isinstance(stmt, ast.Break):
            self.note(
                stmt.lineno,
                "break modelled as thread end (sound only when the loop is "
                "the final statement)",
            )
            nodes.append(SummaryReturn())
            return
        if isinstance(stmt, ast.Continue):
            self.note(stmt.lineno, "continue dropped (iteration structure kept)")
            return
        self.note(
            stmt.lineno, f"unmodelled statement ({type(stmt).__name__})"
        )

    def _assign(
        self,
        target: ast.expr,
        value: ast.expr,
        conditional: bool,
        nodes: List[SummaryNode],
    ) -> None:
        binding = self.scan_expr(value, conditional, nodes)
        var = self._write_target(target)
        if var is not None:
            nodes.append(
                self.emit(
                    "write", var, conditional, target.lineno,
                    value=self.value_of(binding, target.lineno),
                )
            )
            return
        if isinstance(target, ast.Name):
            self.frame.locals[target.id] = (
                binding
                if binding is not None
                else _Opaque(f"<{target.id}@L{target.lineno}>")
            )
            return
        self.note(
            target.lineno,
            f"unmodelled assignment target ({type(target).__name__})",
        )

    def _write_target(self, target: ast.expr) -> Optional[str]:
        """The shared variable a store writes, if it is one."""
        if isinstance(target, ast.Name):
            if target.id in self.frame.global_names:
                if target.id not in self.scanner.resources:
                    self.scanner.resources[target.id] = _Resource("var", target.id)
                    self.scanner.initial[target.id] = None
                res = self.scanner.resources[target.id]
                return res.name if res.kind == "var" else None
            return None
        binding = self._binding_of_expr(target)
        if isinstance(binding, _Resource) and binding.kind == "var":
            return binding.name
        if isinstance(target, ast.Attribute):
            base: Optional[str] = None
            if isinstance(target.value, ast.Name):
                if target.value.id == "self" and self.frame.instance:
                    base = self.frame.instance
                else:
                    inner = self.binding_of(target.value.id)
                    if isinstance(inner, _Resource) and inner.kind == "instance":
                        base = inner.name
            if base is not None:
                # First store to an undeclared instance attribute.
                name = f"{base}.{target.attr}"
                self.scanner.resources[name] = _Resource("var", name)
                self.scanner.initial.setdefault(name, None)
                return name
        return None

    def _augassign(
        self, stmt: ast.AugAssign, conditional: bool, nodes: List[SummaryNode]
    ) -> None:
        var = self._write_target(stmt.target)
        if var is not None:
            nodes.append(self.emit("read", var, conditional, stmt.lineno))
        self.scan_expr(stmt.value, conditional, nodes)
        if var is not None:
            nodes.append(
                self.emit(
                    "write", var, conditional, stmt.lineno,
                    value=f"<{self.thread}@L{stmt.lineno}>",
                )
            )

    def _if(
        self, stmt: ast.If, conditional: bool, nodes: List[SummaryNode]
    ) -> None:
        guard = self.guard_of(stmt.test, conditional, nodes)
        if guard is None:
            self.scan_expr(stmt.test, conditional, nodes)
            self.note(
                stmt.lineno,
                "branch condition is not liftable; either arm may run",
            )
        arms = (self.walk(stmt.body, True), self.walk(stmt.orelse, True))
        nodes.append(SummaryBranch(arms=arms, guard=guard))

    def _while(
        self, stmt: ast.While, conditional: bool, nodes: List[SummaryNode]
    ) -> None:
        if isinstance(stmt.test, ast.Constant) and stmt.test.value:
            nodes.append(SummaryLoop(body=self.walk(stmt.body, True)))
            return
        guard = self.guard_of(stmt.test, conditional, nodes)
        body = list(self.walk(stmt.body, True))
        if guard is not None:
            pre = self._site_by_index(guard.site)
            retest: Optional[OpSite] = None
            if pre is not None and body and isinstance(body[-1], SummaryOp):
                last = body[-1].site
                if last.kind == pre.kind and last.obj == pre.obj:
                    retest = last
            if retest is None and pre is not None and pre.kind == "read":
                op = self.emit("read", pre.obj, True, stmt.lineno)
                body.append(op)
                retest = op.site
            if retest is None:
                self.note(
                    stmt.lineno,
                    "while condition is not re-established by the loop body; "
                    "modelled as an opaque loop",
                )
                guard = None
        else:
            self.note(
                stmt.lineno,
                "while condition is not liftable; modelled as an opaque loop",
            )
        nodes.append(SummaryLoop(body=tuple(body), guard=guard))

    def _site_by_index(self, index: int) -> Optional[OpSite]:
        if 0 <= index < len(self.sites):
            return self.sites[index]
        return None

    def _for(
        self, stmt: ast.For, conditional: bool, nodes: List[SummaryNode]
    ) -> None:
        count: Optional[int] = None
        if isinstance(stmt.iter, ast.Call):
            callee = self.scanner.callee_of(stmt.iter)
            if (
                callee == "range"
                and len(stmt.iter.args) == 1
                and isinstance(stmt.iter.args[0], ast.Constant)
            ):
                count = int(stmt.iter.args[0].value)
        if count is None:
            self.scan_expr(stmt.iter, conditional, nodes)
            self.note(
                stmt.lineno,
                "for-loop iterable is not a constant range; trip count unknown",
            )
        if isinstance(stmt.target, ast.Name):
            self.frame.locals[stmt.target.id] = _Opaque(
                f"<{stmt.target.id}@L{stmt.lineno}>"
            )
        nodes.append(
            SummaryLoop(body=self.walk(stmt.body, True), count=count)
        )
        if stmt.orelse:
            nodes.extend(self.walk(stmt.orelse, conditional))

    def _with(
        self, stmt: ast.With, conditional: bool, nodes: List[SummaryNode]
    ) -> None:
        entered: List[Tuple[str, str]] = []  # (release kind, resource name)
        for item in stmt.items:
            resource = self.resource_of(item.context_expr)
            if resource is None:
                self.note(
                    stmt.lineno,
                    "with-item is not a declared lock/condition/semaphore",
                )
                continue
            if resource.kind == "lock":
                nodes.append(
                    self.emit("acquire", resource.name, conditional, stmt.lineno)
                )
                entered.append(("release", resource.name))
            elif resource.kind == "cond":
                nodes.append(
                    self.emit("acquire", resource.mutex, conditional, stmt.lineno)
                )
                entered.append(("release", resource.mutex))
            elif resource.kind == "sem":
                nodes.append(
                    self.emit("sem_acquire", resource.name, conditional, stmt.lineno)
                )
                entered.append(("sem_release", resource.name))
            else:
                self.note(
                    stmt.lineno,
                    f"with-item on {resource.kind} {resource.name!r} unmodelled",
                )
        nodes.extend(self.walk(stmt.body, conditional))
        for kind, name in reversed(entered):
            nodes.append(self.emit(kind, name, conditional, stmt.lineno))


_UNHANDLED = object()


def _invert(guard: SiteGuard) -> SiteGuard:
    flip = {
        "truthy": "falsy",
        "falsy": "truthy",
        "is-none": "not-none",
        "not-none": "is-none",
    }
    return SiteGuard(guard.site, flip[guard.mode])


# -- thread registry and assembly --------------------------------------------


class _ThreadRegistry:
    """Discovered threads, in spawn order, with name dedup."""

    def __init__(self) -> None:
        self.specs: Dict[str, _ThreadSpec] = {}

    def register(
        self,
        name: str,
        func: ast.FunctionDef,
        args: Dict[str, Any],
        instance: Optional[str],
    ) -> str:
        base, candidate, n = name, name, 1
        while candidate in self.specs:
            n += 1
            candidate = f"{base}-{n}"
        self.specs[candidate] = _ThreadSpec(candidate, func, args, instance)
        return candidate


def frontend(source: str, name: str = "module") -> ProgramSummary:
    """Summarize one real-Python ``threading`` module.

    The entry thread is the module's ``main()`` function (falling back to
    the ``if __name__ == "__main__":`` block); every
    ``threading.Thread(target=...)`` it (transitively) constructs becomes
    a declared thread reachable via its ``spawn`` site, exactly as DSL
    programs declare workers started by ``Spawn``.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise SourceError(f"cannot parse {name!r}: {exc}") from exc
    scanner = _ModuleScanner(name, tree)
    scanner.scan()

    registry = _ThreadRegistry()
    main_def = scanner.functions.get("main")
    if main_def is not None:
        body_stmts: Sequence[ast.stmt] = main_def.body
    elif scanner.main_guard:
        # A guard that only calls main() would have been caught above;
        # analyze the guard statements as the entry body.
        body_stmts = scanner.main_guard
    else:
        raise SourceError(
            f"{name!r} has no main() function and no __main__ guard; "
            f"cannot locate the entry thread"
        )

    threads: Dict[str, ThreadSummary] = {}

    def extract(thread_name: str, stmts: Sequence[ast.stmt],
                frame: _Frame) -> ThreadSummary:
        extractor = _BodyExtractor(scanner, thread_name, registry)
        extractor.frames.append(frame)
        nodes = extractor.walk(stmts, conditional=False)
        return ThreadSummary(
            thread=thread_name,
            nodes=nodes,
            sites=tuple(extractor.sites),
            approximate=extractor.approximate,
            notes=tuple(extractor.notes),
            exclusive_pairs=_exclusive_pairs(nodes, len(extractor.sites)),
        )

    threads["main"] = extract("main", body_stmts, _Frame())
    # Fixpoint over discovered threads (spawned threads can spawn more).
    done: Set[str] = set()
    while True:
        pending = [n for n in registry.specs if n not in done]
        if not pending:
            break
        for thread_name in pending:
            spec = registry.specs[thread_name]
            frame = _Frame(instance=spec.instance)
            for param, value in spec.args.items():
                frame.locals[param] = _Const(value)
            threads[thread_name] = extract(thread_name, spec.func.body, frame)
            done.add(thread_name)

    initial = {
        res.name: scanner.initial.get(res.name)
        for res in scanner.resources.values()
        if res.kind == "var"
    }
    summary = ProgramSummary(
        program=name,
        threads=threads,
        initial=initial,
        locks=tuple(scanner.locks),
        rwlocks=(),
        semaphores=tuple(scanner.semaphores),
        conditions=dict(scanner.conditions),
        barriers=tuple(scanner.barriers),
        channels=dict(scanner.channels),
        start=("main",),
        memory="sc",
    )
    if scanner.notes:
        main_summary = summary.threads["main"]
        main_summary.notes = main_summary.notes + tuple(scanner.notes)
    return summary


# -- corpus loading ----------------------------------------------------------


def load_source(path: Union[str, Path]) -> SourceModule:
    """Analyze one real-Python module file."""
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise SourceError(f"cannot read {path}: {exc}") from exc
    name = path.stem
    tree = ast.parse(source)  # reparse for expectations only
    raw: Optional[Dict[str, Any]] = None
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == "REPRO_EXPECT"
        ):
            raw = ast.literal_eval(stmt.value)
    bugs, fixed_of = parse_expectations(raw)
    return SourceModule(
        name=name,
        summary=frontend(source, name=name),
        bugs=bugs,
        fixed_of=fixed_of,
        path=path,
    )


def load_corpus(root: Union[str, Path]) -> List[SourceModule]:
    """Every ``*.py`` module under ``root``, sorted by name."""
    root = Path(root)
    if root.is_file():
        return [load_source(root)]
    modules = [
        load_source(path)
        for path in sorted(root.glob("*.py"))
        if not path.name.startswith("_")
    ]
    if not modules:
        raise SourceError(f"no corpus modules under {root}")
    return modules
