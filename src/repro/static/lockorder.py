"""Static lock-order graph: acquisition cycles as deadlock candidates.

The dynamic Goodlock pass (:mod:`repro.detectors.deadlock`) builds its
graph from one observed trace; this module builds the same graph from the
must-hold contexts of :func:`repro.static.lockset.site_contexts` — every
*blocking* acquisition site contributes an edge ``held -> acquired`` for
each resource provably held at the site.  A cycle means some schedule can
deadlock, before any schedule has run.

Three deliberate deviations from a naive textbook construction, each tied
to a kernel in the registry:

* **TryAcquire adds no edges.**  A try-lock never blocks, so it cannot
  participate in a circular wait — the "give up the resource" deadlock
  fix (``deadlock_abba``'s alternative fix) is built on exactly this, and
  edging try-acquisitions would re-flag the fixed program.
* **Mutex self-edges need one thread, rwlock self-edges need two.**
  Re-acquiring a held non-recursive mutex deadlocks the thread on itself
  (``deadlock_self``).  Requesting write mode while holding read mode
  only deadlocks when *another* reader is also upgrading — a sole reader
  upgrades in place (``deadlock_rwlock_upgrade``) — so the upgrade
  self-edge becomes a candidate only with two distinct upgrading threads.
* **Multi-resource cycles need two distinct witness threads.**  One
  thread acquiring ``A -> B`` and later ``B -> A`` in sequence cannot
  deadlock alone; the cycle is real only when distinct threads drive at
  least two of its edges.

``Wait`` sites also contribute edges: parking releases the condition's
mutex but the *re-acquisition* after wake-up happens while still holding
every other lock, exactly like the dynamic tracker's handling of
``WaitResumeEvent``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.static.lockset import SiteContext, StaticCandidate
from repro.static.summary import OpSite, ProgramSummary

__all__ = [
    "StaticLockEdge",
    "build_static_lock_order",
    "deadlock_candidates",
]


@dataclass(frozen=True)
class StaticLockEdge:
    """One ``held -> acquired`` witness.

    ``src_site`` is where the witness thread took the held resource
    (``None`` when the acquisition site could not be pinned down);
    ``dst_site`` is the blocking acquisition contributing the edge.  The
    target-pair extractor turns these directly into scheduling goals.
    """

    src: str
    dst: str
    thread: str
    src_site: Optional[OpSite]
    dst_site: OpSite
    upgrade: bool = False  # rwlock read-hold -> write-request self-edge


def build_static_lock_order(
    summary: ProgramSummary, contexts: Dict[str, List[SiteContext]]
) -> "nx.DiGraph":
    """Directed graph over lock/rwlock names; edges carry witness lists."""
    graph = nx.DiGraph()
    for name in list(summary.locks) + list(summary.rwlocks):
        graph.add_node(name)
    for thread, ctxs in contexts.items():
        # Pre-order scan remembering where each held resource was taken,
        # so edge witnesses can name both sites of the inversion.
        acquired_at: Dict[str, OpSite] = {}
        for ctx in ctxs:
            kind, obj = ctx.site.kind, ctx.site.obj
            if obj is None:
                continue
            if kind == "acquire":
                _add_edges(graph, ctx, obj, acquired_at, include_self=True)
                acquired_at[obj] = ctx.site
            elif kind == "tryacquire":
                # Never blocks: no edges, but it does hold on success.
                acquired_at[obj] = ctx.site
            elif kind in ("acquire_read", "acquire_write"):
                upgrading = kind == "acquire_write" and obj in ctx.rw_names
                _add_edges(
                    graph, ctx, obj, acquired_at,
                    include_self=upgrading, upgrade=upgrading,
                )
                if not upgrading:
                    acquired_at[obj] = ctx.site
            elif kind == "wait":
                mutex = summary.conditions.get(obj)
                if mutex is not None and mutex in ctx.mutex_names:
                    # The post-notification re-acquisition of the mutex
                    # happens while every *other* held lock stays held.
                    reacquire = SiteContext(
                        site=ctx.site,
                        mutexes=frozenset(
                            (lock, gen)
                            for lock, gen in ctx.mutexes
                            if lock != mutex
                        ),
                        rw_modes=ctx.rw_modes,
                    )
                    _add_edges(graph, reacquire, mutex, acquired_at, include_self=False)
    return graph


def _add_edges(
    graph: "nx.DiGraph",
    ctx: SiteContext,
    acquired: str,
    acquired_at: Dict[str, OpSite],
    include_self: bool,
    upgrade: bool = False,
) -> None:
    held = set(ctx.mutex_names) | set(ctx.rw_names)
    for src in sorted(held):
        if src == acquired and not include_self:
            continue
        witness = StaticLockEdge(
            src=src,
            dst=acquired,
            thread=ctx.site.thread,
            src_site=acquired_at.get(src),
            dst_site=ctx.site,
            upgrade=upgrade and src == acquired,
        )
        if graph.has_edge(src, acquired):
            graph.edges[src, acquired]["witnesses"].append(witness)
        else:
            graph.add_edge(src, acquired, witnesses=[witness])


def deadlock_candidates(
    summary: ProgramSummary, contexts: Dict[str, List[SiteContext]]
) -> List[StaticCandidate]:
    """Acquisition cycles that at least one schedule can turn into deadlock."""
    graph = build_static_lock_order(summary, contexts)
    out: List[StaticCandidate] = []
    seen: Set[frozenset] = set()
    for cycle in nx.simple_cycles(graph):
        key = frozenset(cycle)
        if key in seen:
            continue
        seen.add(key)
        edges = list(zip(cycle, cycle[1:] + cycle[:1]))
        witnesses: List[StaticLockEdge] = []
        for src, dst in edges:
            witnesses.extend(graph.edges[src, dst]["witnesses"])
        threads = sorted({w.thread for w in witnesses})
        sites = tuple(sorted({w.dst_site.describe() for w in witnesses}))
        if len(cycle) == 1:
            candidate = _self_cycle(cycle[0], summary, witnesses, threads, sites)
            if candidate is not None:
                out.append(candidate)
            continue
        if len(threads) < 2:
            out.append(
                StaticCandidate(
                    kind="deadlock",
                    description=(
                        f"acquisition cycle {' -> '.join(cycle + [cycle[0]])} "
                        f"is driven by a single thread and cannot close"
                    ),
                    threads=tuple(threads),
                    resources=tuple(sorted(key)),
                    sites=sites,
                    suppressed=True,
                    reason="all cycle edges belong to one thread",
                )
            )
            continue
        out.append(
            StaticCandidate(
                kind="deadlock",
                description=(
                    f"lock-order cycle {' -> '.join(cycle + [cycle[0]])}: "
                    f"{len(threads)} threads acquire these resources in "
                    f"conflicting orders"
                ),
                threads=tuple(threads),
                resources=tuple(sorted(key)),
                sites=sites,
            )
        )
    return out


def _self_cycle(
    resource: str,
    summary: ProgramSummary,
    witnesses: Sequence[StaticLockEdge],
    threads: Sequence[str],
    sites: Tuple[str, ...],
) -> StaticCandidate:
    """A self-edge: mutex re-acquisition or rwlock in-place upgrade."""
    if resource in summary.rwlocks:
        upgraders = sorted({w.thread for w in witnesses if w.upgrade})
        if len(upgraders) < 2:
            return StaticCandidate(
                kind="deadlock",
                description=(
                    f"in-place upgrade of rwlock {resource!r} by a sole "
                    f"reader succeeds"
                ),
                threads=tuple(upgraders),
                resources=(resource,),
                sites=sites,
                suppressed=True,
                reason="a single upgrading reader drains itself",
            )
        return StaticCandidate(
            kind="deadlock",
            description=(
                f"rwlock upgrade deadlock on {resource!r}: "
                f"{', '.join(upgraders)} all request write mode while "
                f"holding read mode; each waits for the others to drain"
            ),
            threads=tuple(upgraders),
            resources=(resource,),
            sites=sites,
        )
    return StaticCandidate(
        kind="deadlock",
        description=(
            f"self-deadlock: {resource!r} is re-acquired while already "
            f"held (non-recursive mutex waits on itself)"
        ),
        threads=tuple(threads),
        resources=(resource,),
        sites=sites,
    )
