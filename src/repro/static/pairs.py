"""Ranked target pairs: turning static candidates into scheduling goals.

The study's Finding 8 says enforcing an order among at most four memory
accesses makes almost every bug manifest.  This module derives those
orders *statically*: each candidate from the lockset and lock-order
passes is compiled into one or more :class:`TargetPair` objects — "try to
run ``first`` before ``second``" — which directed exploration
(``Explorer(targets=...)``) uses to sort branch choices.  The pair
shapes, by descending score:

* **deadlock cycles** (score 90) — for each edge of an acquisition
  cycle, the thread's first acquisition must land before the previous
  thread's second; for rwlock upgrades, every read hold must land before
  any upgrade request.
* **atomicity wedges** (score 85) — the remote conflicting access is
  wedged between a thread's local pair: ``(local1, remote)`` and
  ``(remote, local2)``.
* **order pairs** (score 80/60) — for a sentinel-initialised variable the
  read must win the race against the initialising write; for a
  truthy-initialised variable the teardown-style write is pushed before
  the read instead.
* **generic race pairs** (score 50) — both orders of an unprotected
  conflicting pair, when no sharper shape applies.

A :class:`TargetSite` matches a pending operation by thread, kind, and
resource (via :func:`repro.sim.ops.op_kind`), plus label when the static
site carries one — unlabeled sites match any same-kind access so the
dynamic fallback's labelless summaries still direct usefully.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.sim.ops import Op, op_kind
from repro.static.lockorder import StaticLockEdge, build_static_lock_order
from repro.static.lockset import SiteContext, StaticCandidate
from repro.static.summary import OpSite, ProgramSummary, exclusive

__all__ = ["TargetSite", "TargetPair", "target_pairs"]


@dataclass(frozen=True)
class TargetSite:
    """A static access point a pending operation can be matched against."""

    thread: str
    kind: str
    obj: Optional[str]
    label: Optional[str] = None

    @classmethod
    def of(cls, site: OpSite) -> "TargetSite":
        return cls(thread=site.thread, kind=site.kind, obj=site.obj, label=site.label)

    def matches(self, thread: str, op: Op) -> bool:
        """Does ``thread``'s pending ``op`` execute this site?"""
        if thread != self.thread:
            return False
        kind, obj = op_kind(op)
        if kind != self.kind or obj != self.obj:
            return False
        if self.label is not None and getattr(op, "label", None) != self.label:
            return False
        return True

    def describe(self) -> str:
        """Compact rendering used in pair listings and the run log."""
        where = self.label or self.thread
        return f"{where}:{self.kind}({self.obj!r})"


@dataclass(frozen=True)
class TargetPair:
    """Scheduling goal: make ``first`` execute before ``second``."""

    first: TargetSite
    second: TargetSite
    score: int
    reason: str

    def describe(self) -> str:
        """One-line rendering: score, both sites, and the why."""
        return (
            f"[{self.score}] {self.first.describe()} -> "
            f"{self.second.describe()} ({self.reason})"
        )


def target_pairs(
    summary: ProgramSummary,
    contexts: Dict[str, List[SiteContext]],
    candidates: Sequence[StaticCandidate],
) -> List[TargetPair]:
    """All pairs for the active candidates, best score first, deduplicated."""
    active = [c for c in candidates if not c.suppressed]
    collected: List[TargetPair] = []
    collected.extend(_deadlock_pairs(summary, contexts))
    collected.extend(_atomicity_pairs(summary, active, contexts))
    collected.extend(_order_pairs(summary, active, contexts))
    collected.extend(_generic_race_pairs(active, contexts))
    best: Dict[Tuple[TargetSite, TargetSite], TargetPair] = {}
    for pair in collected:
        if pair.first.obj is None or pair.second.obj is None:
            continue
        if pair.first.thread == pair.second.thread:
            continue  # same-thread order is program order already
        key = (pair.first, pair.second)
        kept = best.get(key)
        if kept is None or pair.score > kept.score:
            best[key] = pair
    return sorted(
        best.values(),
        key=lambda p: (-p.score, p.first.thread, p.first.kind, str(p.first.obj)),
    )


# -- deadlock cycles ---------------------------------------------------------


def _deadlock_pairs(
    summary: ProgramSummary, contexts: Dict[str, List[SiteContext]]
) -> List[TargetPair]:
    graph = build_static_lock_order(summary, contexts)
    out: List[TargetPair] = []
    seen: Set[frozenset] = set()
    for cycle in nx.simple_cycles(graph):
        key = frozenset(cycle)
        if key in seen:
            continue
        seen.add(key)
        if len(cycle) == 1:
            out.extend(_upgrade_cycle_pairs(cycle[0], graph, summary))
            continue
        edges = list(zip(cycle, cycle[1:] + cycle[:1]))
        witnesses: List[StaticLockEdge] = [
            graph.edges[src, dst]["witnesses"][0] for src, dst in edges
        ]
        if len({w.thread for w in witnesses}) < 2:
            continue
        order = " -> ".join(cycle + [cycle[0]])
        # Each thread's first acquisition (of src_i) must precede the
        # previous thread's second acquisition (of dst_{i-1} == src_i):
        # then every cycle participant holds its first resource before
        # anyone grabs a second one, and the wait closes.
        for i, witness in enumerate(witnesses):
            prev = witnesses[i - 1]
            if witness.src_site is None or witness.thread == prev.thread:
                continue
            out.append(
                TargetPair(
                    first=TargetSite.of(witness.src_site),
                    second=TargetSite.of(prev.dst_site),
                    score=90,
                    reason=f"close lock-order cycle {order}",
                )
            )
    return out


def _upgrade_cycle_pairs(
    resource: str, graph: "nx.DiGraph", summary: ProgramSummary
) -> List[TargetPair]:
    """Both read holds before either upgrade request (rwlock self-edge)."""
    if resource not in summary.rwlocks:
        return []  # mutex self-deadlock manifests in every schedule
    upgrades = [
        w
        for w in graph.edges[resource, resource]["witnesses"]
        if w.upgrade and w.src_site is not None
    ]
    out: List[TargetPair] = []
    for a in upgrades:
        for b in upgrades:
            if a.thread == b.thread:
                continue
            out.append(
                TargetPair(
                    first=TargetSite.of(a.src_site),
                    second=TargetSite.of(b.dst_site),
                    score=90,
                    reason=f"overlap read holds of {resource!r} before upgrades",
                )
            )
    return out


# -- atomicity wedges --------------------------------------------------------


def _local_pair(
    summary: ProgramSummary, local: Sequence[SiteContext]
) -> Optional[Tuple[SiteContext, SiteContext]]:
    """The local access pair a remote op should be wedged between.

    Prefer two accesses in *different* critical sections of the same lock
    (the split-section shape — a remote can only slip in between the
    sections); otherwise the thread's first and last access.
    """
    ordered = sorted(local, key=lambda c: c.site.index)
    fallback: Optional[Tuple[SiteContext, SiteContext]] = None
    for i, a in enumerate(ordered):
        for b in ordered[i + 1 :]:
            if exclusive(summary, a.site, b.site):
                continue
            if fallback is None:
                fallback = (a, b)
            for lock, gen_a in a.mutexes:
                for other, gen_b in b.mutexes:
                    if lock == other and gen_a != gen_b:
                        return a, b
    return fallback


def _atomicity_pairs(
    summary: ProgramSummary,
    candidates: Sequence[StaticCandidate],
    contexts: Dict[str, List[SiteContext]],
) -> List[TargetPair]:
    by_var = _memory_by_var(contexts)
    out: List[TargetPair] = []
    for cand in candidates:
        if cand.kind != "atomicity-violation":
            continue
        var = cand.variables[0]
        by_thread: Dict[str, List[SiteContext]] = {}
        for ctx in by_var.get(var, ()):
            by_thread.setdefault(ctx.site.thread, []).append(ctx)
        for thread in sorted(by_thread):
            local = by_thread[thread]
            pair = _local_pair(summary, local)
            if pair is None:
                continue
            first, second = pair
            remote = _remote_conflict(first, second, by_thread, thread)
            if remote is None:
                continue
            reason = f"wedge remote access between {thread}'s pair on {var!r}"
            out.append(
                TargetPair(
                    first=TargetSite.of(first.site),
                    second=TargetSite.of(remote.site),
                    score=85,
                    reason=reason,
                )
            )
            out.append(
                TargetPair(
                    first=TargetSite.of(remote.site),
                    second=TargetSite.of(second.site),
                    score=85,
                    reason=reason,
                )
            )
            break  # one wedge per variable directs enough
    return out


def _remote_conflict(
    first: SiteContext,
    second: SiteContext,
    by_thread: Dict[str, List[SiteContext]],
    local_thread: str,
) -> Optional[SiteContext]:
    local_writes = "write" in (first.site.kind, second.site.kind)
    candidates = [
        ctx
        for thread, ctxs in sorted(by_thread.items())
        if thread != local_thread
        for ctx in ctxs
        if ctx.site.kind == "write" or local_writes
    ]
    if not candidates:
        return None
    # A remote write breaks any local pair; fall back to a read, which
    # only conflicts when the local pair writes.
    writes = [c for c in candidates if c.site.kind == "write"]
    return (writes or candidates)[0]


# -- order and generic race pairs -------------------------------------------


def _order_pairs(
    summary: ProgramSummary,
    candidates: Sequence[StaticCandidate],
    contexts: Dict[str, List[SiteContext]],
) -> List[TargetPair]:
    by_var = _memory_by_var(contexts)
    out: List[TargetPair] = []
    for cand in candidates:
        if cand.kind == "order-violation":
            if not cand.variables:
                continue  # channel-level shapes carry no memory variable
            # Sentinel start: the read must beat the initialising write.
            var = cand.variables[0]
            for read, write in _cross_pairs(by_var.get(var, ()), "read", "write"):
                out.append(
                    TargetPair(
                        first=TargetSite.of(read.site),
                        second=TargetSite.of(write.site),
                        score=80,
                        reason=f"consume {var!r} before its initialising write",
                    )
                )
        elif cand.kind == "data-race":
            var = cand.variables[0]
            if var in summary.initial and summary.initial[var] not in (None, False):
                # Truthy start: push the teardown-style write before the
                # read so the consumer observes the destroyed state.
                for read, write in _cross_pairs(by_var.get(var, ()), "read", "write"):
                    out.append(
                        TargetPair(
                            first=TargetSite.of(write.site),
                            second=TargetSite.of(read.site),
                            score=60,
                            reason=f"expose overwritten {var!r} to the reader",
                        )
                    )
    return out


def _generic_race_pairs(
    candidates: Sequence[StaticCandidate],
    contexts: Dict[str, List[SiteContext]],
) -> List[TargetPair]:
    by_var = _memory_by_var(contexts)
    out: List[TargetPair] = []
    for cand in candidates:
        if cand.kind != "data-race":
            continue
        var = cand.variables[0]
        ctxs = by_var.get(var, ())
        conflicting = [
            (a, b)
            for i, a in enumerate(ctxs)
            for b in ctxs[i + 1 :]
            if a.site.thread != b.site.thread
            and "write" in (a.site.kind, b.site.kind)
            and _unprotected(a, b)
        ]
        if not conflicting:
            continue
        a, b = conflicting[0]
        reason = f"exercise both orders of the race on {var!r}"
        out.append(
            TargetPair(
                first=TargetSite.of(a.site), second=TargetSite.of(b.site),
                score=50, reason=reason,
            )
        )
        out.append(
            TargetPair(
                first=TargetSite.of(b.site), second=TargetSite.of(a.site),
                score=50, reason=reason,
            )
        )
    return out


def _unprotected(a: SiteContext, b: SiteContext) -> bool:
    return not (a.mutex_names & b.mutex_names) and not (a.rw_names & b.rw_names)


def _memory_by_var(
    contexts: Dict[str, List[SiteContext]],
) -> Dict[str, List[SiteContext]]:
    by_var: Dict[str, List[SiteContext]] = {}
    for ctxs in contexts.values():
        for ctx in ctxs:
            if ctx.site.kind in ("read", "write") and ctx.site.obj is not None:
                by_var.setdefault(ctx.site.obj, []).append(ctx)
    return by_var


def _cross_pairs(
    ctxs: Sequence[SiteContext], first_kind: str, second_kind: str
) -> List[Tuple[SiteContext, SiteContext]]:
    return [
        (a, b)
        for a in ctxs
        if a.site.kind == first_kind
        for b in ctxs
        if b.site.kind == second_kind and b.site.thread != a.site.thread
    ]
