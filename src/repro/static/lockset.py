"""Static lockset analysis: must-hold locksets and discipline candidates.

The dynamic :mod:`repro.detectors.lockset` pass refines Eraser candidate
sets along one observed trace.  This module computes the same discipline
judgement from the :mod:`repro.static.summary` tree alone — *which locks
are provably held at each operation site* — and flags the patterns the
ASPLOS'08 study says dominate:

* **race candidates** — a variable with cross-thread conflicting accesses
  where some pair shares no mutex, follows no reader-writer discipline,
  and is not ordered by the program's spawn/join structure;
* **atomicity candidates** — a thread touching a variable in *different*
  critical sections of the same lock (split-section shape: race-free yet
  unserializable, the Apache refcount class dynamic race detectors
  structurally miss), or multiple accesses to an already-racy variable
  (the classic check-then-act / read-then-write shapes);
* **order candidates** — a sentinel-initialised variable (``None`` /
  ``False``) read by a consumer thread and written by a producer with no
  spawn/join ordering and no correct condition-variable protocol between
  them — the use-before-init and lost-wakeup signatures.

The walk is a *must* analysis: branch arms are merged by intersection,
loops contribute the zero-iteration path, so a lock is reported held only
when every path to the site holds it.  Under-approximating held sets can
only add candidates, never hide one, which is the soundness direction the
cross-check in :meth:`repro.detectors.suite.DetectorSuite.analyse_static`
requires: every dynamically confirmed finding must appear here.

Acquisition *generations* distinguish re-acquisitions of the same lock:
two sites holding ``(L, gen 0)`` and ``(L, gen 1)`` are in different
critical sections even though both "hold L" — the split-section evidence.
A ``Wait`` bumps its associated mutex's generation, because parking
releases and re-acquires the lock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.static.summary import (
    MEMORY_KINDS,
    OpSite,
    ProgramSummary,
    SummaryBranch,
    SummaryLoop,
    SummaryNode,
    SummaryOp,
    SummaryReturn,
    exclusive,
)

__all__ = [
    "SiteContext",
    "StaticCandidate",
    "site_contexts",
    "race_candidates",
    "atomicity_candidates",
    "order_candidates",
    "message_candidates",
    "weakmem_candidates",
]

#: Sentinel initial values whose pre-write observation reads as
#: "uninitialised" (mirrors the dynamic order-violation heuristic).
_SENTINELS = (None, False)


@dataclass(frozen=True)
class SiteContext:
    """One operation site plus the synchronisation provably held *at* it.

    ``mutexes`` holds ``(lock, generation)`` pairs; ``rw_modes`` holds
    ``(rwlock, mode, generation)`` triples with mode ``"read"`` or
    ``"write"``.  For acquisition sites the context is the state *before*
    the acquisition — exactly the held-set a lock-order edge needs.
    """

    site: OpSite
    mutexes: FrozenSet[Tuple[str, int]] = frozenset()
    rw_modes: FrozenSet[Tuple[str, str, int]] = frozenset()

    @property
    def mutex_names(self) -> FrozenSet[str]:
        return frozenset(lock for lock, _ in self.mutexes)

    @property
    def rw_names(self) -> FrozenSet[str]:
        return frozenset(rw for rw, _, _ in self.rw_modes)

    @property
    def rw_write_names(self) -> FrozenSet[str]:
        return frozenset(rw for rw, mode, _ in self.rw_modes if mode == "write")


@dataclass(frozen=True)
class StaticCandidate:
    """One predicted bug pattern, phrased like a dynamic finding.

    ``kind`` uses the dynamic vocabulary (``data-race``,
    ``atomicity-violation``, ``order-violation``, ``deadlock``) so the
    suite cross-check can match by ``(kind-group, variable/resource)``.
    ``suppressed`` candidates are patterns the analysis recognised and
    then *discharged* (spawn/join ordering, condvar protocol); they are
    kept so precision reports can show what a naive pass would have
    flagged.
    """

    kind: str
    description: str
    threads: Tuple[str, ...]
    variables: Tuple[str, ...] = ()
    resources: Tuple[str, ...] = ()
    sites: Tuple[str, ...] = ()
    suppressed: bool = False
    reason: str = ""


# -- the must-hold walk ------------------------------------------------------


class _Held:
    """Mutable held-lock state along one walk path."""

    __slots__ = ("mutexes", "rw")

    def __init__(self) -> None:
        self.mutexes: Dict[str, int] = {}
        self.rw: Dict[str, Dict[str, int]] = {}

    def copy(self) -> "_Held":
        dup = _Held.__new__(_Held)
        dup.mutexes = dict(self.mutexes)
        dup.rw = {name: dict(modes) for name, modes in self.rw.items()}
        return dup

    def snapshot(self) -> Tuple[FrozenSet[Tuple[str, int]], FrozenSet[Tuple[str, str, int]]]:
        return (
            frozenset(self.mutexes.items()),
            frozenset(
                (name, mode, gen)
                for name, modes in self.rw.items()
                for mode, gen in modes.items()
            ),
        )

    def merge(self, others: Sequence["_Held"]) -> None:
        """Intersect this state with ``others`` in place (must-hold join)."""
        for other in others:
            self.mutexes = {
                lock: gen
                for lock, gen in self.mutexes.items()
                if other.mutexes.get(lock) == gen
            }
            self.rw = {
                name: kept
                for name, modes in self.rw.items()
                if (
                    kept := {
                        mode: gen
                        for mode, gen in modes.items()
                        if other.rw.get(name, {}).get(mode) == gen
                    }
                )
            }


class _Walker:
    """Pre-order walk assigning a held-state context to every site."""

    def __init__(self, conditions: Dict[str, str]):
        self.conditions = conditions
        self.generations: Dict[str, int] = {}
        self.contexts: List[SiteContext] = []

    def _next_gen(self, key: str) -> int:
        gen = self.generations.get(key, 0)
        self.generations[key] = gen + 1
        return gen

    def _apply(self, site: OpSite, state: _Held) -> None:
        kind, obj = site.kind, site.obj
        if obj is None:
            return
        if kind in ("acquire", "tryacquire"):
            state.mutexes[obj] = self._next_gen(f"lock:{obj}")
        elif kind == "release":
            state.mutexes.pop(obj, None)
        elif kind == "acquire_read":
            state.rw.setdefault(obj, {})["read"] = self._next_gen(f"rw:{obj}")
        elif kind == "acquire_write":
            state.rw.setdefault(obj, {})["write"] = self._next_gen(f"rw:{obj}")
        elif kind == "release_read":
            modes = state.rw.get(obj)
            if modes is not None:
                modes.pop("read", None)
                if not modes:
                    del state.rw[obj]
        elif kind == "release_write":
            modes = state.rw.get(obj)
            if modes is not None:
                modes.pop("write", None)
                if not modes:
                    del state.rw[obj]
        elif kind == "wait":
            # Parking releases and re-acquires the condition's mutex: the
            # hold after the wait is a *different* critical section.
            mutex = self.conditions.get(obj)
            if mutex is not None and mutex in state.mutexes:
                state.mutexes[mutex] = self._next_gen(f"lock:{mutex}")

    def walk(self, nodes: Sequence[SummaryNode], state: _Held) -> bool:
        """Walk ``nodes`` mutating ``state``; True if the path returned."""
        for node in nodes:
            if isinstance(node, SummaryOp):
                mutexes, rw_modes = state.snapshot()
                self.contexts.append(
                    SiteContext(site=node.site, mutexes=mutexes, rw_modes=rw_modes)
                )
                self._apply(node.site, state)
            elif isinstance(node, SummaryBranch):
                exits: List[_Held] = []
                for arm in node.arms:
                    arm_state = state.copy()
                    if not self.walk(arm, arm_state):
                        exits.append(arm_state)
                if not exits:
                    return True  # every arm returned
                first, rest = exits[0], exits[1:]
                state.mutexes = first.mutexes
                state.rw = first.rw
                state.merge(rest)
            elif isinstance(node, SummaryLoop):
                body_state = state.copy()
                returned = self.walk(node.body, body_state)
                # Zero-or-more iterations: keep only what survives both the
                # skip path and (unless the body always returns) the exit.
                if not returned:
                    state.merge([body_state])
            elif isinstance(node, SummaryReturn):
                return True
        return False


def site_contexts(summary: ProgramSummary) -> Dict[str, List[SiteContext]]:
    """Per-thread site contexts: every site with its must-hold locksets."""
    out: Dict[str, List[SiteContext]] = {}
    for name, thread in summary.threads.items():
        walker = _Walker(summary.conditions)
        walker.walk(thread.nodes, _Held())
        out[name] = walker.contexts
    return out


# -- spawn/join ordering refinement -----------------------------------------


def _spawn_entries(summary: ProgramSummary) -> Dict[str, List[Tuple[str, int]]]:
    """child thread -> every ``(parent, spawn-site index)`` spawning it."""
    entries: Dict[str, List[Tuple[str, int]]] = {}
    for parent, thread in summary.threads.items():
        for site in thread.sites_of_kind("spawn"):
            if site.obj is not None:
                entries.setdefault(site.obj, []).append((parent, site.index))
    return entries


def _site_before_thread(
    site: OpSite,
    child: str,
    spawns: Dict[str, List[Tuple[str, int]]],
    start: Tuple[str, ...],
    _seen: Optional[Set[str]] = None,
) -> bool:
    """True when ``site`` happens-before *every* operation of ``child``.

    Holds when the child is (transitively) spawned only at sites after
    ``site`` in program order.  A spawn in a branch arm exclusive with
    ``site`` is fine: on that path the site never executed, so the
    ordering claim is vacuous — pre-order index comparison is sound.
    """
    if child == site.thread or child in start:
        return False
    entries = spawns.get(child)
    if not entries:
        return False  # never spawned: the thread never runs at all
    seen = _seen if _seen is not None else set()
    if child in seen:
        return False
    seen.add(child)
    for parent, index in entries:
        if parent == site.thread and site.index < index:
            continue
        if _site_before_thread(site, parent, spawns, start, seen):
            continue  # site precedes the whole spawning thread
        return False
    return True


def _thread_before_site(thread: str, site: OpSite, summary: ProgramSummary) -> bool:
    """True when every operation of ``thread`` happens-before ``site``.

    Requires an *unconditional* join of ``thread`` earlier in ``site``'s
    own thread: a join inside a branch arm might not execute, so it
    orders nothing.
    """
    owner = summary.threads.get(site.thread)
    if owner is None or thread == site.thread:
        return False
    return any(
        join.obj == thread and not join.conditional and join.index < site.index
        for join in owner.sites_of_kind("join")
    )


def _ordered(
    a: SiteContext,
    b: SiteContext,
    summary: ProgramSummary,
    spawns: Dict[str, List[Tuple[str, int]]],
) -> Optional[str]:
    """Why the two sites cannot overlap, or ``None`` if they can."""
    start = tuple(summary.start)
    if _site_before_thread(a.site, b.site.thread, spawns, start):
        return f"{a.site.describe()} precedes spawn of {b.site.thread}"
    if _site_before_thread(b.site, a.site.thread, spawns, start):
        return f"{b.site.describe()} precedes spawn of {a.site.thread}"
    if _thread_before_site(a.site.thread, b.site, summary):
        return f"{a.site.thread} joined before {b.site.describe()}"
    if _thread_before_site(b.site.thread, a.site, summary):
        return f"{b.site.thread} joined before {a.site.describe()}"
    return None


# -- candidate extraction ----------------------------------------------------


def _memory_contexts(
    contexts: Dict[str, List[SiteContext]],
) -> Dict[str, List[SiteContext]]:
    """Non-atomic memory-access contexts grouped by variable.

    ``AtomicUpdate`` sites are exempt from the locking discipline (they
    synchronise by themselves), exactly as the dynamic Eraser pass skips
    ``AtomicUpdateEvent``.
    """
    by_var: Dict[str, List[SiteContext]] = {}
    for ctxs in contexts.values():
        for ctx in ctxs:
            if ctx.site.kind in ("read", "write") and ctx.site.obj is not None:
                by_var.setdefault(ctx.site.obj, []).append(ctx)
    return by_var


def _pair_protected(a: SiteContext, b: SiteContext) -> Optional[str]:
    """The discipline making the pair mutually exclusive, if any."""
    common = a.mutex_names & b.mutex_names
    if common:
        return f"mutex {sorted(common)[0]!r}"
    for rwlock in sorted(a.rw_names & b.rw_names):
        disciplined = all(
            ctx.site.kind != "write" or rwlock in ctx.rw_write_names
            for ctx in (a, b)
        )
        if disciplined:
            return f"rwlock {rwlock!r}"
    return None


def race_candidates(
    summary: ProgramSummary, contexts: Dict[str, List[SiteContext]]
) -> List[StaticCandidate]:
    """Variables with an unprotected, unordered cross-thread conflict."""
    spawns = _spawn_entries(summary)
    out: List[StaticCandidate] = []
    for var, ctxs in sorted(_memory_contexts(contexts).items()):
        threads = {ctx.site.thread for ctx in ctxs}
        if len(threads) < 2 or not any(c.site.kind == "write" for c in ctxs):
            continue
        racy: List[Tuple[SiteContext, SiteContext]] = []
        discharged: List[str] = []
        for a, b in combinations(ctxs, 2):
            if a.site.thread == b.site.thread:
                continue
            if a.site.kind != "write" and b.site.kind != "write":
                continue
            if _pair_protected(a, b) is not None:
                continue
            why = _ordered(a, b, summary, spawns)
            if why is not None:
                discharged.append(why)
            else:
                racy.append((a, b))
        if racy:
            sites = sorted({s.site.describe() for pair in racy for s in pair})
            involved = sorted({s.site.thread for pair in racy for s in pair})
            out.append(
                StaticCandidate(
                    kind="data-race",
                    description=(
                        f"no common lock protects {var!r}: "
                        f"{len(racy)} conflicting cross-thread access pair(s) "
                        f"can overlap"
                    ),
                    threads=tuple(involved),
                    variables=(var,),
                    sites=tuple(sites),
                )
            )
        elif discharged:
            out.append(
                StaticCandidate(
                    kind="data-race",
                    description=(
                        f"conflicting accesses to {var!r} share no lock but "
                        f"cannot overlap"
                    ),
                    threads=tuple(sorted(threads)),
                    variables=(var,),
                    suppressed=True,
                    reason="; ".join(sorted(set(discharged))),
                )
            )
    return out


def atomicity_candidates(
    summary: ProgramSummary,
    contexts: Dict[str, List[SiteContext]],
    races: Sequence[StaticCandidate],
) -> List[StaticCandidate]:
    """Split-section and multi-access atomicity shapes, one per variable."""
    race_vars = {
        var
        for cand in races
        if not cand.suppressed
        for var in cand.variables
    }
    by_var = _memory_contexts(contexts)
    out: List[StaticCandidate] = []
    for var, ctxs in sorted(by_var.items()):
        by_thread: Dict[str, List[SiteContext]] = {}
        for ctx in ctxs:
            by_thread.setdefault(ctx.site.thread, []).append(ctx)
        reasons: List[str] = []
        involved: Set[str] = set()
        sites: Set[str] = set()
        for thread, local in sorted(by_thread.items()):
            if len(local) < 2:
                continue
            split = _split_sections(summary, local)
            if split is not None:
                lock, first, second = split
                remote = [
                    r
                    for t, rs in by_thread.items()
                    if t != thread
                    for r in rs
                    if r.site.kind == "write"
                    or first.site.kind == "write"
                    or second.site.kind == "write"
                ]
                if remote:
                    reasons.append(
                        f"{thread} touches {var!r} in two critical sections "
                        f"of {lock!r} ({first.site.describe()} / "
                        f"{second.site.describe()}): race-free but not atomic"
                    )
                    involved.update({thread, *(r.site.thread for r in remote)})
                    sites.update(
                        {first.site.describe(), second.site.describe()}
                        | {r.site.describe() for r in remote}
                    )
            co_occurring = any(
                not exclusive(summary, a.site, b.site)
                for a, b in combinations(local, 2)
            )
            if var in race_vars and co_occurring:
                reasons.append(
                    f"{thread} makes {len(local)} unsynchronised accesses to "
                    f"racy {var!r}: a remote write can land between them"
                )
                involved.update(by_thread)
                sites.update(c.site.describe() for c in local)
        if reasons:
            out.append(
                StaticCandidate(
                    kind="atomicity-violation",
                    description=reasons[0],
                    threads=tuple(sorted(involved)),
                    variables=(var,),
                    sites=tuple(sorted(sites)),
                    reason="; ".join(reasons),
                )
            )
    return out


def _split_sections(
    summary: ProgramSummary, local: Sequence[SiteContext]
) -> Optional[Tuple[str, SiteContext, SiteContext]]:
    """Two same-thread accesses under different generations of one lock.

    Mutually exclusive accesses never co-occur in one execution, so they
    cannot form a split critical section (the "give up and retry"
    deadlock fix writes once on an early-exit path and once after it —
    only one of the two runs).
    """
    for a, b in combinations(local, 2):
        if exclusive(summary, a.site, b.site):
            continue
        for lock, gen_a in a.mutexes:
            for other, gen_b in b.mutexes:
                if lock == other and gen_a != gen_b:
                    return lock, a, b
    return None


def order_candidates(
    summary: ProgramSummary, contexts: Dict[str, List[SiteContext]]
) -> List[StaticCandidate]:
    """Sentinel-initialised variables consumable before their producer runs."""
    spawns = _spawn_entries(summary)
    by_var = _memory_contexts(contexts)
    out: List[StaticCandidate] = []
    for var, ctxs in sorted(by_var.items()):
        if var not in summary.initial:
            continue
        if not any(summary.initial[var] is sentinel for sentinel in _SENTINELS):
            continue
        reads = [c for c in ctxs if c.site.kind == "read"]
        writes = [c for c in ctxs if c.site.kind == "write"]
        racy: List[Tuple[SiteContext, SiteContext]] = []
        discharged: List[str] = []
        for read in reads:
            for write in writes:
                if read.site.thread == write.site.thread:
                    continue
                why = _ordered(read, write, summary, spawns)
                if why is None and _condvar_protocol(read, write, summary):
                    why = "correct condition-variable protocol"
                if why is None:
                    protection = _pair_protected(read, write)
                    if protection is not None:
                        # Mirrors the dynamic heuristic: a sentinel read
                        # under a lock the writer also holds is reported
                        # only with crash evidence, which no static pass
                        # can supply.
                        why = f"read and write both hold {protection}"
                if why is not None:
                    discharged.append(why)
                else:
                    racy.append((read, write))
        if racy:
            sites = sorted({s.site.describe() for pair in racy for s in pair})
            involved = sorted({s.site.thread for pair in racy for s in pair})
            out.append(
                StaticCandidate(
                    kind="order-violation",
                    description=(
                        f"{var!r} starts as the sentinel "
                        f"{summary.initial[var]!r} and nothing orders its "
                        f"initialising write before the remote read"
                    ),
                    threads=tuple(involved),
                    variables=(var,),
                    sites=tuple(sites),
                )
            )
        elif discharged:
            out.append(
                StaticCandidate(
                    kind="order-violation",
                    description=(
                        f"reads of sentinel-initialised {var!r} are ordered "
                        f"after its initialising write"
                    ),
                    threads=tuple(sorted({c.site.thread for c in ctxs})),
                    variables=(var,),
                    suppressed=True,
                    reason="; ".join(sorted(set(discharged))),
                )
            )
    return out


def message_candidates(
    summary: ProgramSummary, contexts: Dict[str, List[SiteContext]]
) -> List[StaticCandidate]:
    """Mailbox-order and lost-message shapes on the channel operations.

    Two protocol bugs phrased against channels instead of variables:

    * **mailbox order** — a thread selects over several channels whose
      senders are in different threads with no spawn/join ordering:
      which message wins is a race.  The candidate carries every
      sentinel-initialised variable the selecting thread initialises
      *conditionally* (i.e. depending on which message arrived) and
      also reads — the state a message overtaking another leaves unset.
    * **lost message** — every send into a channel sits on a conditional
      path while some other thread receives from it unconditionally; a
      skipped send strands the receiver on an empty mailbox forever.
    """
    spawns = _spawn_entries(summary)
    ctx_by_site: Dict[Tuple[str, int], SiteContext] = {
        (c.site.thread, c.site.index): c
        for ctxs in contexts.values()
        for c in ctxs
    }
    sends: Dict[str, List[OpSite]] = {}
    recvs: Dict[str, List[OpSite]] = {}
    for thread in summary.threads.values():
        for site in thread.sites_of_kind("send"):
            if site.obj is not None:
                sends.setdefault(site.obj, []).append(site)
        for site in thread.sites_of_kind("recv"):
            if site.obj is not None:
                recvs.setdefault(site.obj, []).append(site)
    out: List[StaticCandidate] = []
    out.extend(_mailbox_order(summary, spawns, ctx_by_site, sends))
    out.extend(_lost_messages(summary, sends, recvs))
    return out


def _mailbox_order(
    summary: ProgramSummary,
    spawns: Dict[str, List[Tuple[str, int]]],
    ctx_by_site: Dict[Tuple[str, int], SiteContext],
    sends: Dict[str, List[OpSite]],
) -> List[StaticCandidate]:
    out: List[StaticCandidate] = []
    for name, thread in summary.threads.items():
        # One select statement = the group of same-line select sites
        # (the summary emits one site per polled channel).
        groups: Dict[Tuple[Optional[int], Optional[str]], List[OpSite]] = {}
        for site in thread.sites_of_kind("select"):
            if site.obj is not None:
                groups.setdefault((site.lineno, site.label), []).append(site)
        for group in groups.values():
            chans = sorted({site.obj for site in group})
            if len(chans) < 2:
                continue
            racing: List[Tuple[OpSite, OpSite]] = []
            for i, chan_a in enumerate(chans):
                for chan_b in chans[i + 1 :]:
                    for send_a in sends.get(chan_a, ()):
                        for send_b in sends.get(chan_b, ()):
                            if name in (send_a.thread, send_b.thread):
                                continue
                            if send_a.thread == send_b.thread:
                                continue  # program order fixes arrival
                            a = ctx_by_site.get((send_a.thread, send_a.index))
                            b = ctx_by_site.get((send_b.thread, send_b.index))
                            if a is None or b is None:
                                continue
                            if _ordered(a, b, summary, spawns) is None:
                                racing.append((send_a, send_b))
            if not racing:
                continue
            # The state a wrong arrival order exposes: variables the
            # selecting thread initialises only on some message's branch
            # and reads expecting the initialisation to have happened.
            exposed = sorted(
                var
                for var in summary.initial
                if any(summary.initial[var] is s for s in _SENTINELS)
                and any(
                    s.kind == "write" and s.conditional
                    for s in thread.sites
                    if s.obj == var
                )
                and any(
                    s.kind == "read" for s in thread.sites if s.obj == var
                )
            )
            involved = sorted(
                {name} | {s.thread for pair in racing for s in pair}
            )
            sites = sorted(
                {s.describe() for s in group}
                | {s.describe() for pair in racing for s in pair}
            )
            out.append(
                StaticCandidate(
                    kind="order-violation",
                    description=(
                        f"{name} selects over {chans} but nothing orders "
                        f"the senders: whichever message arrives first "
                        f"wins, and the protocol's intended order is only "
                        f"an assumption"
                    ),
                    threads=tuple(involved),
                    variables=tuple(exposed),
                    resources=tuple(chans),
                    sites=tuple(sites),
                )
            )
    return out


def _lost_messages(
    summary: ProgramSummary,
    sends: Dict[str, List[OpSite]],
    recvs: Dict[str, List[OpSite]],
) -> List[StaticCandidate]:
    out: List[StaticCandidate] = []
    for chan in sorted(recvs):
        waiting = [site for site in recvs[chan] if not site.conditional]
        senders = sends.get(chan, [])
        cross = [
            (r, s)
            for r in waiting
            for s in senders
            if s.thread != r.thread
        ]
        if not cross or not all(s.conditional for s in senders):
            continue
        involved = sorted({s.thread for pair in cross for s in pair})
        sites = sorted({s.describe() for pair in cross for s in pair})
        out.append(
            StaticCandidate(
                kind="order-violation",
                description=(
                    f"every send into channel {chan!r} is conditional while "
                    f"a receive waits unconditionally: a skipped send "
                    f"strands the receiver forever"
                ),
                threads=tuple(involved),
                resources=(chan,),
                sites=tuple(sites),
            )
        )
    return out


#: Operation kinds that do NOT drain a TSO store buffer; every other
#: kind implicitly fences (the engine disables it while the buffer holds
#: stores), mirroring ``repro.sim.engine``'s ``_UNFENCED_OPS``.
_UNFENCED_KINDS = frozenset({"read", "write", "yield", "sleep"})


def weakmem_candidates(
    summary: ProgramSummary, contexts: Dict[str, List[SiteContext]]
) -> List[StaticCandidate]:
    """Un-fenced store-visibility shapes; only under ``memory="tso"``.

    The store-buffering litmus shape: a thread stores to a variable some
    other thread reads, then — with nothing in between that would drain
    its store buffer — reads a variable some other thread writes.  Under
    TSO the store may still be buffered at the read, so both threads can
    observe each other's *old* values, an outcome sequential consistency
    forbids.  A fencing site between the pair discharges it, but only
    when unconditional (a fence on one branch arm protects nothing).
    """
    if summary.memory != "tso":
        return []
    readers: Dict[str, Set[str]] = {}
    writers: Dict[str, Set[str]] = {}
    for thread in summary.threads.values():
        for site in thread.sites:
            if site.obj is None:
                continue
            if site.kind == "read":
                readers.setdefault(site.obj, set()).add(site.thread)
            elif site.kind in ("write", "atomic"):
                writers.setdefault(site.obj, set()).add(site.thread)
    out: List[StaticCandidate] = []
    for name, thread in summary.threads.items():
        flagged: Set[Tuple[str, str]] = set()
        for store in thread.sites_of_kind("write"):
            if store.obj is None or not (readers.get(store.obj, set()) - {name}):
                continue
            for load in thread.sites_of_kind("read"):
                if load.index <= store.index or load.obj in (None, store.obj):
                    continue
                if not (writers.get(load.obj, set()) - {name}):
                    continue
                if exclusive(summary, store, load):
                    continue
                fenced = any(
                    store.index < s.index < load.index
                    and s.kind not in _UNFENCED_KINDS
                    and not s.conditional
                    for s in thread.sites
                )
                if fenced or (store.obj, load.obj) in flagged:
                    continue
                flagged.add((store.obj, load.obj))
                out.append(
                    StaticCandidate(
                        kind="order-violation",
                        description=(
                            f"{name}'s store to {store.obj!r} can still sit "
                            f"in its TSO store buffer when it reads "
                            f"{load.obj!r}: no fence between "
                            f"{store.describe()} and {load.describe()}"
                        ),
                        threads=(name,),
                        variables=(store.obj, load.obj),
                        sites=(store.describe(), load.describe()),
                    )
                )
    return out


def _condvar_protocol(
    read: SiteContext, write: SiteContext, summary: ProgramSummary
) -> bool:
    """True when the read/write pair follows the correct condvar protocol.

    The consumer checks the flag *under* a mutex and waits on a condition
    of that same mutex later in program order; the producer writes under
    the same mutex and notifies that condition afterwards.  Under that
    shape the notification cannot fall between check and wait (the lock
    is held across them), which is precisely what separates the fixed
    lost-wakeup kernel from the buggy one.
    """
    reader = summary.threads.get(read.site.thread)
    writer = summary.threads.get(write.site.thread)
    if reader is None or writer is None:
        return False
    for cond, mutex in summary.conditions.items():
        if mutex not in read.mutex_names or mutex not in write.mutex_names:
            continue
        consumer_waits = any(
            site.obj == cond and site.index > read.site.index
            for site in reader.sites_of_kind("wait")
        )
        producer_notifies = any(
            site.obj == cond and site.index > write.site.index
            for site in writer.sites_of_kind("notify", "notify_all")
        )
        if consumer_waits and producer_notifies:
            return True
    return False
