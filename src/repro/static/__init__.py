"""Static concurrency analysis: predict the study's bug patterns from source.

The dynamic layers (:mod:`repro.sim`, :mod:`repro.detectors`) answer
"which schedule manifests the bug" by exploring interleavings.  This
package answers a cheaper question first — *which accesses even matter* —
without running a single schedule:

* :mod:`repro.static.summary` — per-thread operation summaries extracted
  from the generator AST (dynamic fallback for sourceless bodies);
* :mod:`repro.static.lockset` — must-hold lockset walk producing race,
  atomicity, and order candidates;
* :mod:`repro.static.lockorder` — static acquisition graph producing
  deadlock candidates;
* :mod:`repro.static.pairs` — candidates compiled to ranked target pairs
  for race-directed exploration (``Explorer(targets=...)``);
* :mod:`repro.static.report` — the :func:`analyse` /
  :func:`analyse_summary` entry points tying the passes together with
  ``static.*`` observability;
* :mod:`repro.static.pysource` — the real-Python frontend: summaries
  extracted from ordinary ``threading`` source instead of the DSL;
* :mod:`repro.static.lift` — compiles frontend summaries back into
  runnable simulator programs so candidates are dynamically confirmed.

Layering: this package imports only :mod:`repro.sim`, :mod:`repro.obs`,
and :mod:`repro.errors` (lift's :func:`~repro.static.lift.confirm`
lazily pulls in the detector suite at call time); the detector suite
imports *it* for the static-vs-dynamic cross-check, never the other way
around.
"""

from repro.static.lift import LiftOutcome, lift, lifted_source
from repro.static.lockorder import build_static_lock_order, deadlock_candidates
from repro.static.lockset import (
    SiteContext,
    StaticCandidate,
    atomicity_candidates,
    order_candidates,
    race_candidates,
    site_contexts,
)
from repro.static.pairs import TargetPair, TargetSite, target_pairs
from repro.static.pysource import (
    GroundTruthBug,
    SourceModule,
    frontend,
    load_corpus,
    load_source,
)
from repro.static.report import StaticReport, analyse, analyse_summary
from repro.static.summary import (
    OpSite,
    ProgramSummary,
    StaticExtractionError,
    ThreadSummary,
    exclusive,
    summarize_program,
    summarize_thread,
)

__all__ = [
    "analyse",
    "analyse_summary",
    "frontend",
    "lift",
    "lifted_source",
    "load_corpus",
    "load_source",
    "GroundTruthBug",
    "LiftOutcome",
    "SourceModule",
    "StaticReport",
    "StaticCandidate",
    "TargetPair",
    "TargetSite",
    "target_pairs",
    "OpSite",
    "exclusive",
    "ProgramSummary",
    "ThreadSummary",
    "StaticExtractionError",
    "summarize_program",
    "summarize_thread",
    "SiteContext",
    "site_contexts",
    "race_candidates",
    "atomicity_candidates",
    "order_candidates",
    "deadlock_candidates",
    "build_static_lock_order",
]
