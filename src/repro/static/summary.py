"""Per-thread operation summaries extracted *without running a schedule*.

A thread body is a generator function whose every shared-state
interaction is a ``yield``-ed :class:`~repro.sim.ops.Op`.  That makes the
body statically legible: parsing its source with :mod:`ast` recovers the
sequence of operation *sites* — kind, resource name, label, and control
structure — exactly the information the ASPLOS'08 study's pattern
taxonomy is phrased in (which accesses, under which locks, in which
order).  Extraction costs microseconds; no engine, no schedule.

Two extraction strategies, tried in order:

1. **AST** (:func:`_extract_ast`) — ``inspect.getsource`` + ``ast.parse``
   over the generator function.  Closure variables of factory-made bodies
   (``label=f"{tid}.read"``) are resolved through
   ``inspect.getclosurevars``, so kernels built by parameterised factories
   summarize with their concrete labels.  ``if``/``else`` arms become
   :class:`SummaryBranch` nodes and loops :class:`SummaryLoop` nodes, so
   downstream passes can distinguish must-execute from may-execute sites.
2. **Dynamic fallback** (:func:`_extract_dynamic`) — when source is
   unavailable (callables built by ``exec``, C-level callables, lambdas
   wrapping generators), the generator is *symbolically driven*: it is
   instantiated and advanced with abstract responses (declared initial
   values, then truth-flipped stand-ins, never touching engine or shared
   state), and the yielded operation instances are recorded.  The result
   is marked ``approximate`` — it covers the paths the abstract values
   steer into, not all of them.

The summary deliberately ignores *values* (what a ``Write`` stores, what
a local computes): the study's findings are about access patterns and
synchronisation shape, which survive value abstraction.
"""

from __future__ import annotations

import ast
import builtins
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ReproError
from repro.sim.ops import Op, op_kind
from repro.sim.program import Program

__all__ = [
    "OpSite",
    "SiteGuard",
    "exclusive",
    "SummaryOp",
    "SummaryBranch",
    "SummaryLoop",
    "SummaryDeref",
    "SummaryReturn",
    "ThreadSummary",
    "ProgramSummary",
    "StaticExtractionError",
    "summarize_program",
    "summarize_thread",
]

#: Kinds that read or write a shared variable.
MEMORY_KINDS = frozenset({"read", "write", "atomic"})

#: Kinds that block until a resource is free (edges in the lock-order graph).
BLOCKING_ACQUIRE_KINDS = frozenset({"acquire", "acquire_read", "acquire_write"})


class StaticExtractionError(ReproError):
    """AST extraction failed for a thread body (fallback handles it)."""


@dataclass(frozen=True)
class OpSite:
    """One static operation site in a thread body.

    :param thread: owning thread name.
    :param index: pre-order position within the thread summary.  Pre-order
        respects program order along any single execution path, which is
        what the ordering refinements in the analysis passes rely on.
    :param kind: canonical kind string from :data:`repro.sim.ops.OP_KINDS`.
    :param obj: resource name (variable / lock / rwlock / cond / sem /
        barrier / thread) or ``None`` when unresolvable statically.
    :param label: the site's declared ``label=`` (``None`` if unlabeled).
    :param conditional: the site sits inside an ``if`` arm, loop body, or
        other may-not-execute region.
    :param lineno: source line (AST extraction only).
    """

    thread: str
    index: int
    kind: str
    obj: Optional[str]
    label: Optional[str]
    conditional: bool = False
    lineno: Optional[int] = None

    def describe(self) -> str:
        """Compact rendering used in findings and target-pair reasons."""
        where = self.label or f"{self.thread}#{self.index}"
        target = f"({self.obj!r})" if self.obj is not None else "()"
        return f"{where}:{self.kind}{target}"


#: Guard modes a :class:`SiteGuard` can express — the value tests the
#: real-Python frontend can lift to runnable simulator code and recover
#: losslessly on re-extraction.
GUARD_MODES = ("truthy", "falsy", "is-none", "not-none")


@dataclass(frozen=True)
class SiteGuard:
    """A branch/loop condition phrased as a test of one site's value.

    ``site`` is the :attr:`OpSite.index` of the read/recv whose result is
    tested; ``mode`` is one of :data:`GUARD_MODES`.  The yield-Op DSL
    never produces guards (branch conditions are opaque locals there);
    the real-Python frontend (:mod:`repro.static.pysource`) attaches them
    so the lifter (:mod:`repro.static.lift`) can regenerate an executable
    condition instead of an arbitrary arm choice.
    """

    site: int
    mode: str


@dataclass(frozen=True)
class SummaryOp:
    """Leaf node: one operation site.

    ``value`` carries a statically-resolved write/send payload when the
    real-Python frontend knows it (the DSL extractor abstracts values
    away and leaves it ``None``); analyses ignore it, the lifter uses it.
    """

    site: OpSite
    value: Any = None


@dataclass(frozen=True)
class SummaryBranch:
    """An ``if``/``elif``/``else`` statement: one arm list per branch.

    ``guard`` (frontend summaries only) names the tested site and mode;
    ``None`` means the condition is opaque and either arm may run.
    """

    arms: Tuple[Tuple["SummaryNode", ...], ...]
    guard: Optional[SiteGuard] = None


@dataclass(frozen=True)
class SummaryLoop:
    """A ``for``/``while`` body (may execute zero or more times).

    ``guard`` (frontend summaries only) marks a ``while <test>:`` loop
    desugared to a pre-test site plus a re-test site as the body's last
    node; ``count`` a statically-known iteration count (``range(N)``).
    Both default to the DSL extractor's "unknown trip count" reading.
    """

    body: Tuple["SummaryNode", ...]
    guard: Optional[SiteGuard] = None
    count: Optional[int] = None


@dataclass(frozen=True)
class SummaryDeref:
    """The value read at ``site`` is dereferenced (attribute call/index).

    Frontend summaries only: marks where real code would raise if the
    read produced an uninitialised sentinel (``None``/``False``).  The
    lifter compiles it to a runtime null-check that crashes the simulated
    thread, giving use-before-init candidates a dynamic manifestation.
    Analyses and path enumeration skip it — it is not an operation site.
    """

    site: int
    obj: str


@dataclass(frozen=True)
class SummaryReturn:
    """An explicit ``return``: the path ends here."""


SummaryNode = Union[SummaryOp, SummaryBranch, SummaryLoop, SummaryDeref, SummaryReturn]


@dataclass
class ThreadSummary:
    """Everything statically known about one thread body."""

    thread: str
    nodes: Tuple[SummaryNode, ...]
    #: All sites in pre-order (the flattening of ``nodes``).
    sites: Tuple[OpSite, ...]
    #: True when the dynamic fallback ran or some construct / argument
    #: could not be resolved; analyses must treat the summary as a
    #: may-underapproximate view of the body.
    approximate: bool = False
    #: Human-readable extraction caveats.
    notes: Tuple[str, ...] = ()
    #: ``(min-index, max-index)`` pairs of sites no single execution of
    #: this thread runs both of — divergent branch arms, or regions cut
    #: off by a ``return`` (see :func:`exclusive`).  Empty when unknown
    #: (dynamic fallback), which conservatively means "may co-occur".
    exclusive_pairs: FrozenSet[Tuple[int, int]] = frozenset()

    def sites_of_kind(self, *kinds: str) -> List[OpSite]:
        """Sites whose kind is one of ``kinds``, in program order."""
        wanted = frozenset(kinds)
        return [s for s in self.sites if s.kind in wanted]


@dataclass
class ProgramSummary:
    """Static summaries of every thread of one program, plus declarations."""

    program: str
    threads: Dict[str, ThreadSummary]
    initial: Dict[str, Any] = field(default_factory=dict)
    locks: Tuple[str, ...] = ()
    rwlocks: Tuple[str, ...] = ()
    semaphores: Tuple[str, ...] = ()
    conditions: Dict[str, str] = field(default_factory=dict)
    barriers: Tuple[str, ...] = ()
    channels: Dict[str, Optional[int]] = field(default_factory=dict)
    start: Tuple[str, ...] = ()
    #: Declared memory model (``"sc"`` / ``"tso"``); the weak-memory
    #: candidate pass only runs when stores can be buffered.
    memory: str = "sc"

    @property
    def approximate(self) -> bool:
        """True when any thread summary is approximate."""
        return any(t.approximate for t in self.threads.values())

    def all_sites(self) -> List[OpSite]:
        """Every site of every thread, grouped by thread declaration order."""
        out: List[OpSite] = []
        for summary in self.threads.values():
            out.extend(summary.sites)
        return out

    def used_objects(self, *kinds: str) -> FrozenSet[str]:
        """Resolved resource names across all threads for the given kinds."""
        wanted = frozenset(kinds)
        return frozenset(
            s.obj for s in self.all_sites() if s.kind in wanted and s.obj is not None
        )


def exclusive(summary: ProgramSummary, a: OpSite, b: OpSite) -> bool:
    """True when no single execution runs both sites.

    Holds for same-thread sites in divergent branch arms (an ``if`` body
    vs its ``else``, a ``try`` body vs a handler) and for sites separated
    by a ``return`` — e.g. an early-exit arm vs the code after the
    branch.  Sites of different threads trivially co-occur; so does any
    pair the enumeration could not decide (dynamic-fallback summaries,
    path blow-ups), keeping the conservative direction: treating fewer
    pairs as exclusive can only *add* candidates downstream.
    """
    if a.thread != b.thread or a.index == b.index:
        return False
    thread = summary.threads.get(a.thread)
    if thread is None:
        return False
    key = (min(a.index, b.index), max(a.index, b.index))
    return key in thread.exclusive_pairs


# -- public entry points -----------------------------------------------------


def summarize_program(program: Program) -> ProgramSummary:
    """Static summary of every declared thread of ``program``."""
    threads = {
        name: summarize_thread(name, body, program)
        for name, body in program.threads.items()
    }
    return ProgramSummary(
        program=program.name,
        threads=threads,
        initial=dict(program.initial),
        locks=tuple(program.locks),
        rwlocks=tuple(program.rwlocks),
        semaphores=tuple(program.semaphores),
        conditions=dict(program.conditions),
        barriers=tuple(program.barriers),
        channels=dict(program.channels),
        start=tuple(program.start),
        memory=program.memory,
    )


def summarize_thread(
    name: str, body: Any, program: Optional[Program] = None
) -> ThreadSummary:
    """Summarize one thread body, AST-first with the dynamic fallback."""
    try:
        return _extract_ast(name, body)
    except StaticExtractionError as exc:
        summary = _extract_dynamic(name, body, program)
        return ThreadSummary(
            thread=name,
            nodes=summary.nodes,
            sites=summary.sites,
            approximate=True,
            notes=(f"ast extraction failed: {exc}",) + summary.notes,
        )


# -- AST extraction ----------------------------------------------------------

#: Op class name -> dataclass field order (positional argument mapping).
#: Only the resource field and ``label`` are resolved; value/fn/ticks
#: arguments are abstracted away.
_OP_FIELDS: Dict[str, Tuple[str, ...]] = {
    "Read": ("var", "label"),
    "Write": ("var", "value", "label"),
    "AtomicUpdate": ("var", "fn", "label"),
    "Acquire": ("lock", "label"),
    "Release": ("lock", "label"),
    "TryAcquire": ("lock", "label"),
    "AcquireRead": ("rwlock", "label"),
    "AcquireWrite": ("rwlock", "label"),
    "ReleaseRead": ("rwlock", "label"),
    "ReleaseWrite": ("rwlock", "label"),
    "Wait": ("cond", "label"),
    "Notify": ("cond", "label"),
    "NotifyAll": ("cond", "label"),
    "SemAcquire": ("sem", "label"),
    "SemRelease": ("sem", "label"),
    "BarrierWait": ("barrier", "label"),
    "Spawn": ("thread", "label"),
    "Join": ("thread", "label"),
    "Yield": ("label",),
    "Sleep": ("ticks", "label"),
    "Send": ("chan", "value", "label"),
    "Recv": ("chan", "label"),
    "Select": ("chans", "label"),
    "Fence": ("label",),
}

_OP_KIND_BY_NAME: Dict[str, str] = {
    "Read": "read",
    "Write": "write",
    "AtomicUpdate": "atomic",
    "Acquire": "acquire",
    "Release": "release",
    "TryAcquire": "tryacquire",
    "AcquireRead": "acquire_read",
    "AcquireWrite": "acquire_write",
    "ReleaseRead": "release_read",
    "ReleaseWrite": "release_write",
    "Wait": "wait",
    "Notify": "notify",
    "NotifyAll": "notify_all",
    "SemAcquire": "sem_acquire",
    "SemRelease": "sem_release",
    "BarrierWait": "barrier_wait",
    "Spawn": "spawn",
    "Join": "join",
    "Yield": "yield",
    "Sleep": "sleep",
    "Send": "send",
    "Recv": "recv",
    "Select": "select",
    "Fence": "fence",
}

_RESOURCE_FIELDS = frozenset(
    {"var", "lock", "rwlock", "cond", "sem", "barrier", "thread", "chan"}
)


class _Extractor:
    """Stateful AST walk over one thread body's statement list."""

    def __init__(self, thread: str, env: Mapping[str, Any]):
        self.thread = thread
        self.env = env
        self.index = 0
        self.sites: List[OpSite] = []
        self.notes: List[str] = []
        self.approximate = False
        #: >0 while walking the body of an inlined sub-generator; one
        #: level only, and ``return`` means "end of helper", not "end of
        #: thread" there.
        self.inline_depth = 0

    # -- expression resolution ------------------------------------------

    def _resolve(self, node: Optional[ast.expr]) -> Tuple[Any, bool]:
        """Evaluate a constant-ish expression against the closure env."""
        if node is None:
            return None, True
        if isinstance(node, ast.Constant):
            return node.value, True
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id], True
            return None, False
        if isinstance(node, ast.JoinedStr):
            parts: List[str] = []
            for piece in node.values:
                if isinstance(piece, ast.Constant):
                    parts.append(str(piece.value))
                elif isinstance(piece, ast.FormattedValue):
                    value, ok = self._resolve(piece.value)
                    if not ok:
                        return None, False
                    parts.append(format(value, "") if piece.format_spec is None else "")
                else:
                    return None, False
            return "".join(parts), True
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            left, ok_l = self._resolve(node.left)
            right, ok_r = self._resolve(node.right)
            if ok_l and ok_r and isinstance(left, str) and isinstance(right, str):
                return left + right, True
        if isinstance(node, (ast.Tuple, ast.List)):
            items = []
            for element in node.elts:
                value, ok = self._resolve(element)
                if not ok:
                    return None, False
                items.append(value)
            return tuple(items), True
        return None, False

    # -- op construction -------------------------------------------------

    def _op_from_call(self, call: ast.expr, conditional: bool) -> List[SummaryOp]:
        if not isinstance(call, ast.Call):
            self.approximate = True
            self.notes.append(
                f"line {getattr(call, 'lineno', '?')}: yield of a non-call "
                f"expression; site skipped"
            )
            return []
        func = call.func
        if isinstance(func, ast.Name):
            op_name = func.id
        elif isinstance(func, ast.Attribute):
            op_name = func.attr
        else:
            op_name = None
        if op_name not in _OP_FIELDS:
            self.approximate = True
            self.notes.append(
                f"line {call.lineno}: unknown operation constructor "
                f"{ast.dump(func)[:40]}; site skipped"
            )
            return []
        fields = _OP_FIELDS[op_name]
        bound: Dict[str, ast.expr] = {}
        for position, arg in enumerate(call.args):
            if position < len(fields):
                bound[fields[position]] = arg
        for keyword in call.keywords:
            if keyword.arg is not None:
                bound[keyword.arg] = keyword.value
        label, label_ok = self._resolve(bound.get("label"))
        if not label_ok:
            label = None
            self.approximate = True
            self.notes.append(f"line {call.lineno}: unresolved label= of {op_name}")
        if not isinstance(label, str) and label is not None:
            label = str(label)
        if op_name == "Select":
            # A select touches every listed channel: one site per channel,
            # sharing the select's label and line, so channel-level passes
            # (mailbox-order candidates, the lint namespace check) see each
            # mailbox the statement can commit to.
            chans, ok = self._resolve(bound.get("chans"))
            if not ok or not isinstance(chans, tuple):
                self.approximate = True
                self.notes.append(
                    f"line {call.lineno}: unresolved chans= argument of Select"
                )
                chans = (None,)
            return [
                self._emit_site("select", chan, label, conditional, call.lineno)
                for chan in chans
            ]
        obj: Optional[str] = None
        resource_field = next((f for f in fields if f in _RESOURCE_FIELDS), None)
        if resource_field is not None:
            obj, ok = self._resolve(bound.get(resource_field))
            if not ok:
                obj = None
                self.approximate = True
                self.notes.append(
                    f"line {call.lineno}: unresolved {resource_field}= argument "
                    f"of {op_name}"
                )
            elif obj is not None and not isinstance(obj, str):
                obj = str(obj)
        return [
            self._emit_site(
                _OP_KIND_BY_NAME[op_name], obj, label, conditional, call.lineno
            )
        ]

    def _emit_site(
        self,
        kind: str,
        obj: Optional[Any],
        label: Optional[str],
        conditional: bool,
        lineno: Optional[int],
    ) -> SummaryOp:
        site = OpSite(
            thread=self.thread,
            index=self.index,
            kind=kind,
            obj=obj if isinstance(obj, str) or obj is None else str(obj),
            label=label,
            conditional=conditional,
            lineno=lineno,
        )
        self.index += 1
        self.sites.append(site)
        return SummaryOp(site)

    # -- statement walk ---------------------------------------------------

    def walk(self, stmts: List[ast.stmt], conditional: bool) -> Tuple[SummaryNode, ...]:
        nodes: List[SummaryNode] = []
        for stmt in stmts:
            yielded = _yield_expression(stmt)
            if yielded is not None:
                nodes.extend(self._op_from_call(yielded, conditional))
                continue
            delegated = _yield_from_expression(stmt)
            if delegated is not None:
                nodes.extend(self._inline_yield_from(delegated, conditional))
                continue
            if isinstance(stmt, ast.If):
                arms = (
                    self.walk(stmt.body, True),
                    self.walk(stmt.orelse, True),
                )
                nodes.append(SummaryBranch(arms=arms))
                continue
            if isinstance(stmt, (ast.For, ast.While, ast.AsyncFor)):
                body = self.walk(stmt.body, True)
                nodes.append(SummaryLoop(body=body))
                if stmt.orelse:
                    nodes.extend(self.walk(stmt.orelse, conditional))
                continue
            if isinstance(stmt, ast.Return):
                if self.inline_depth:
                    # A return inside an inlined sub-generator ends the
                    # *helper*, not the thread.  Mid-helper returns would
                    # need helper-local path truncation; dropping the node
                    # only loses exclusivity (conservative direction).
                    self.approximate = True
                    self.notes.append(
                        f"line {stmt.lineno}: return inside an inlined "
                        f"sub-generator; helper-local truncation dropped"
                    )
                else:
                    nodes.append(SummaryReturn())
                continue
            if isinstance(stmt, ast.Try):
                arms = [self.walk(stmt.body, True)]
                for handler in stmt.handlers:
                    arms.append(self.walk(handler.body, True))
                nodes.append(SummaryBranch(arms=tuple(arms)))
                nodes.extend(self.walk(stmt.finalbody, conditional))
                self.approximate = True
                self.notes.append(
                    f"line {stmt.lineno}: try/except modelled as a branch"
                )
                continue
            if isinstance(stmt, ast.With):
                nodes.extend(self.walk(stmt.body, conditional))
                continue
            # Anything else (assignments of locals, raise, pass, ...) has
            # no shared-state effect of its own — but if a yield hides
            # inside, extract it flat and flag the approximation.
            for inner in ast.walk(stmt):
                if isinstance(inner, ast.Yield) and inner.value is not None:
                    self.approximate = True
                    self.notes.append(
                        f"line {stmt.lineno}: yield inside an unmodelled "
                        f"statement; extracted without structure"
                    )
                    nodes.extend(self._op_from_call(inner.value, True))
        return tuple(nodes)

    # -- sub-generator inlining -------------------------------------------

    def _inline_yield_from(
        self, call: ast.expr, conditional: bool
    ) -> Tuple[SummaryNode, ...]:
        """Inline one level of ``yield from helper(...)`` exactly.

        The helper is resolved through the closure environment, its
        source is parsed, constant call arguments are bound to parameter
        names, and its body is walked with the *helper's* own closure
        environment — so a factory-built sub-generator summarizes with
        its concrete labels, just like a top-level body.  Nested
        ``yield from`` (depth two) falls back to an approximate note.
        """

        def give_up(why: str) -> Tuple[SummaryNode, ...]:
            self.approximate = True
            self.notes.append(
                f"line {getattr(call, 'lineno', '?')}: yield from {why}; "
                f"sites dropped"
            )
            return ()

        if self.inline_depth >= 1:
            return give_up("nested beyond one level")
        if not isinstance(call, ast.Call):
            return give_up("a non-call expression")
        func = call.func
        if not isinstance(func, ast.Name) or func.id not in self.env:
            return give_up("an unresolvable callee")
        helper = self.env[func.id]
        try:
            source = inspect.getsource(helper)
            tree = ast.parse(textwrap.dedent(source))
        except (OSError, TypeError, SyntaxError, IndentationError) as exc:
            return give_up(f"a sourceless helper ({exc})")
        helper_def = next(
            (
                node
                for node in ast.walk(tree)
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            ),
            None,
        )
        if helper_def is None:
            return give_up("a helper with no function definition")
        sub_env = _closure_env(helper)
        params = [arg.arg for arg in helper_def.args.args]
        defaults = helper_def.args.defaults
        for param, default in zip(params[len(params) - len(defaults):], defaults):
            value, ok = self._resolve_in_env(default, sub_env)
            if ok:
                sub_env[param] = value
        for position, arg in enumerate(call.args):
            if position < len(params):
                value, ok = self._resolve(arg)
                if ok:
                    sub_env[params[position]] = value
        for keyword in call.keywords:
            if keyword.arg in params:
                value, ok = self._resolve(keyword.value)
                if ok:
                    sub_env[keyword.arg] = value
        outer_env = self.env
        self.env = sub_env
        self.inline_depth += 1
        try:
            return self.walk(helper_def.body, conditional)
        finally:
            self.env = outer_env
            self.inline_depth -= 1

    def _resolve_in_env(
        self, node: Optional[ast.expr], env: Mapping[str, Any]
    ) -> Tuple[Any, bool]:
        """:meth:`_resolve` against a temporary environment."""
        outer = self.env
        self.env = env
        try:
            return self._resolve(node)
        finally:
            self.env = outer


def _yield_expression(stmt: ast.stmt) -> Optional[ast.expr]:
    """The yielded expression of ``yield Op(...)`` statement shapes."""
    value: Optional[ast.expr] = None
    if isinstance(stmt, ast.Expr):
        value = stmt.value
    elif isinstance(stmt, (ast.Assign, ast.AugAssign)):
        value = stmt.value
    elif isinstance(stmt, ast.AnnAssign):
        value = stmt.value
    if isinstance(value, ast.Yield):
        return value.value
    return None


def _yield_from_expression(stmt: ast.stmt) -> Optional[ast.expr]:
    """The delegated expression of ``yield from helper(...)`` statements."""
    value: Optional[ast.expr] = None
    if isinstance(stmt, ast.Expr):
        value = stmt.value
    elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
        value = stmt.value
    if isinstance(value, ast.YieldFrom):
        return value.value
    return None


def _closure_env(body: Any) -> Dict[str, Any]:
    """Name environment for resolving op arguments: closure + globals."""
    env: Dict[str, Any] = dict(vars(builtins))
    try:
        closure = inspect.getclosurevars(body)
    except TypeError:
        return env
    env.update(closure.globals)
    env.update(closure.nonlocals)
    return env


def _extract_ast(name: str, body: Any) -> ThreadSummary:
    try:
        source = inspect.getsource(body)
    except (OSError, TypeError) as exc:
        raise StaticExtractionError(f"no source for {name!r}: {exc}") from exc
    try:
        tree = ast.parse(textwrap.dedent(source))
    except (SyntaxError, IndentationError) as exc:
        raise StaticExtractionError(f"unparsable source for {name!r}: {exc}") from exc
    func = next(
        (
            node
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ),
        None,
    )
    if func is None:
        raise StaticExtractionError(f"no function definition in source of {name!r}")
    extractor = _Extractor(name, _closure_env(body))
    nodes = extractor.walk(func.body, conditional=False)
    return ThreadSummary(
        thread=name,
        nodes=nodes,
        sites=tuple(extractor.sites),
        approximate=extractor.approximate,
        notes=tuple(extractor.notes),
        exclusive_pairs=_exclusive_pairs(nodes, len(extractor.sites)),
    )


# -- mutual exclusivity ------------------------------------------------------

#: Abstract-path count above which exclusivity computation gives up
#: (conservatively: every pair may co-occur).
_PATH_LIMIT = 512


class _PathOverflow(Exception):
    pass


def _exclusive_pairs(
    nodes: Tuple[SummaryNode, ...], site_count: int
) -> FrozenSet[Tuple[int, int]]:
    """Site-index pairs that can never execute together in one run.

    Abstract executions of the tree are enumerated — each branch picks
    one arm, each loop runs zero, one, or two iterations, ``return``
    truncates the rest — and a pair is exclusive iff no enumerated path
    contains both indexes.  Two loop iterations suffice for *pairwise*
    co-occurrence: any pair realised across many iterations is realised
    by the two relevant ones, since arms are re-chosen freely each time.
    """
    if site_count < 2:
        return frozenset()
    try:
        paths = _enumerate_paths(nodes)
    except _PathOverflow:
        return frozenset()  # undecided: treat every pair as co-occurring
    co_occur = set()
    for indexes, _ in paths:
        present = sorted(set(indexes))
        for i, a in enumerate(present):
            for b in present[i + 1 :]:
                co_occur.add((a, b))
    return frozenset(
        (a, b)
        for a in range(site_count)
        for b in range(a + 1, site_count)
        if (a, b) not in co_occur
    )


def _enumerate_paths(
    nodes: Sequence[SummaryNode],
) -> List[Tuple[Tuple[int, ...], bool]]:
    """All abstract executions of ``nodes`` as ``(site indexes, returned)``."""
    paths: List[Tuple[Tuple[int, ...], bool]] = [((), False)]
    for node in nodes:
        if isinstance(node, SummaryOp):
            paths = [
                (p + (node.site.index,), r) if not r else (p, r) for p, r in paths
            ]
        elif isinstance(node, SummaryBranch):
            arm_paths: List[Tuple[Tuple[int, ...], bool]] = []
            for arm in node.arms:
                arm_paths.extend(_enumerate_paths(arm))
            paths = _compose(paths, arm_paths)
        elif isinstance(node, SummaryLoop):
            once = _enumerate_paths(node.body)
            iterations = [((), False)] + once + _compose(once, once)
            paths = _compose(paths, iterations)
        elif isinstance(node, SummaryReturn):
            paths = [(p, True) for p, _ in paths]
        if len(paths) > _PATH_LIMIT:
            raise _PathOverflow()
    return paths


def _compose(
    prefixes: List[Tuple[Tuple[int, ...], bool]],
    suffixes: List[Tuple[Tuple[int, ...], bool]],
) -> List[Tuple[Tuple[int, ...], bool]]:
    out: List[Tuple[Tuple[int, ...], bool]] = []
    for p, returned in prefixes:
        if returned:
            out.append((p, returned))
            continue
        for q, q_returned in suffixes:
            out.append((p + q, q_returned))
            if len(out) > _PATH_LIMIT:
                raise _PathOverflow()
    return out


# -- dynamic fallback --------------------------------------------------------

#: Abstract stand-in sent into generators for values we cannot know.
_ABSTRACT = object()

_DRIVE_LIMIT = 256


def _drive_policy_initial(op: Op, initial: Mapping[str, Any]) -> Any:
    """Respond with declared initial values (the no-interference view)."""
    kind, obj = op_kind(op)
    if kind == "read":
        return initial.get(obj)
    if kind == "atomic":
        fn = getattr(op, "fn", None)
        if callable(fn):
            try:
                return fn(initial.get(obj))
            except Exception:
                return _ABSTRACT
    if kind == "tryacquire":
        return True
    if kind == "recv":
        return _ABSTRACT
    if kind == "select":
        # A select evaluates to (channel, value); answer with the first
        # declared channel so tuple unpacking in the body keeps working.
        chans = getattr(op, "chans", ())
        return (chans[0] if chans else None, _ABSTRACT)
    return None


def _drive_policy_flipped(op: Op, initial: Mapping[str, Any]) -> Any:
    """Respond with truth-flipped values to steer into the other arms."""
    kind, obj = op_kind(op)
    if kind == "read":
        value = initial.get(obj)
        return _ABSTRACT if not value else None
    if kind == "tryacquire":
        return False
    return _drive_policy_initial(op, initial)


def _extract_dynamic(
    name: str, body: Any, program: Optional[Program]
) -> ThreadSummary:
    """Symbolically drive the generator; record the yielded op instances.

    The generator runs *outside* any engine: responses are abstract
    values, no shared memory or sync object is touched, and exceptions
    (including simulated crashes on abstract values) simply end that
    drive.  Two drives with different response policies cover both arms
    of simple value-dependent branches; anything deeper stays uncovered,
    which is why the result is always ``approximate``.
    """
    initial = dict(program.initial) if program is not None else {}
    seen: Dict[Tuple[str, Optional[str], Optional[str]], OpSite] = {}
    notes: List[str] = ["summarized by symbolic generator drive (approximate)"]
    index = 0
    for policy in (_drive_policy_initial, _drive_policy_flipped):
        try:
            generator = body()
        except Exception as exc:  # body() itself failed — nothing to drive
            notes.append(f"generator construction failed: {exc!r}")
            break
        response: Any = None
        try:
            for _ in range(_DRIVE_LIMIT):
                op = generator.send(response)
                if not isinstance(op, Op):
                    notes.append(f"non-Op yield {op!r}; drive stopped")
                    break
                kind, obj = op_kind(op)
                label = getattr(op, "label", None)
                key = (kind, obj, label)
                if key not in seen:
                    site = OpSite(
                        thread=name,
                        index=index,
                        kind=kind,
                        obj=obj,
                        label=label,
                        conditional=True,
                    )
                    seen[key] = site
                    index += 1
                response = policy(op, initial)
        except StopIteration:
            pass
        except Exception as exc:
            notes.append(f"drive ended early: {exc!r}")
        finally:
            generator.close()
    sites = tuple(seen.values())
    return ThreadSummary(
        thread=name,
        nodes=tuple(SummaryOp(site) for site in sites),
        sites=sites,
        approximate=True,
        notes=tuple(notes),
    )
