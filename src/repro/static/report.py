"""The static analysis entry point: one call, zero schedules.

:func:`analyse` runs the whole static battery over a program — thread
summaries, must-hold locksets, lock-order graph, candidate extraction,
target-pair compilation — and packages the result as a
:class:`StaticReport`.  Everything downstream consumes this one object:
the CLI renders it, :meth:`repro.detectors.suite.DetectorSuite.analyse_static`
cross-checks it against dynamic findings, and directed exploration takes
its ``pairs``.

Observability mirrors the dynamic layers: ``static.*`` metrics count
analyses, candidates (labelled by kind and suppression), and pairs, with
the pass wall time in a histogram; a ``static.analyse`` runlog record
captures the same numbers per invocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs import runlog as obs_runlog
from repro.sim.program import Program
from repro.static.lockorder import deadlock_candidates
from repro.static.lockset import (
    StaticCandidate,
    atomicity_candidates,
    message_candidates,
    order_candidates,
    race_candidates,
    site_contexts,
    weakmem_candidates,
)
from repro.static.pairs import TargetPair, target_pairs
from repro.static.summary import ProgramSummary, summarize_program

__all__ = ["StaticReport", "analyse", "analyse_summary"]

#: Rendering / grouping order for candidate kinds.
_KIND_ORDER = ("data-race", "atomicity-violation", "order-violation", "deadlock")


@dataclass
class StaticReport:
    """Everything the static battery predicted about one program."""

    program: str
    summary: ProgramSummary
    candidates: List[StaticCandidate] = field(default_factory=list)
    pairs: List[TargetPair] = field(default_factory=list)
    wall_seconds: float = 0.0

    def active(self) -> List[StaticCandidate]:
        """Candidates standing after every refinement (the predictions)."""
        return [c for c in self.candidates if not c.suppressed]

    def suppressed(self) -> List[StaticCandidate]:
        """Patterns recognised and then discharged (would-be false alarms)."""
        return [c for c in self.candidates if c.suppressed]

    def by_kind(self, *kinds: str) -> List[StaticCandidate]:
        """Active candidates of the given kinds."""
        wanted = frozenset(kinds)
        return [c for c in self.active() if c.kind in wanted]

    def variables(self, *kinds: str) -> frozenset:
        """Variables named by active candidates of the given kinds."""
        return frozenset(
            var for cand in self.by_kind(*kinds) for var in cand.variables
        )

    def resource_sets(self) -> List[frozenset]:
        """Resource sets of active deadlock candidates."""
        return [frozenset(c.resources) for c in self.by_kind("deadlock")]

    @property
    def clean(self) -> bool:
        """No active candidate of any kind."""
        return not self.active()

    @property
    def approximate(self) -> bool:
        """Some thread needed the dynamic fallback or dropped a construct."""
        return self.summary.approximate

    def format(self) -> str:
        """Console-ready rendering of candidates and top pairs."""
        lines = [f"static analysis of {self.program!r}"]
        active = self.active()
        if not active:
            lines.append("  no candidates: locking discipline holds statically")
        for kind in _KIND_ORDER:
            for cand in (c for c in active if c.kind == kind):
                lines.append(f"  [{cand.kind}] {cand.description}")
                if cand.sites:
                    lines.append(f"      sites: {', '.join(cand.sites)}")
        for cand in self.suppressed():
            lines.append(
                f"  (suppressed {cand.kind} on "
                f"{', '.join(cand.variables or cand.resources)}: {cand.reason})"
            )
        if self.pairs:
            lines.append(f"  target pairs ({len(self.pairs)}):")
            for pair in self.pairs[:8]:
                lines.append(f"    {pair.describe()}")
            if len(self.pairs) > 8:
                lines.append(f"    ... and {len(self.pairs) - 8} more")
        if self.approximate:
            lines.append("  note: summaries are approximate (dynamic fallback)")
        lines.append(f"  wall time: {self.wall_seconds * 1e3:.2f} ms, 0 schedules")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        """JSON-ready dict (CLI ``--json`` and the runlog record body)."""
        return {
            "program": self.program,
            "approximate": self.approximate,
            "wall_seconds": self.wall_seconds,
            "candidates": [
                {
                    "kind": c.kind,
                    "description": c.description,
                    "threads": list(c.threads),
                    "variables": list(c.variables),
                    "resources": list(c.resources),
                    "sites": list(c.sites),
                    "suppressed": c.suppressed,
                    "reason": c.reason,
                }
                for c in self.candidates
            ],
            "pairs": [
                {
                    "first": pair.first.describe(),
                    "second": pair.second.describe(),
                    "score": pair.score,
                    "reason": pair.reason,
                }
                for pair in self.pairs
            ],
        }


def analyse(program: Program) -> StaticReport:
    """Run the full static battery over ``program`` without executing it."""
    return analyse_summary(summarize_program(program))


def analyse_summary(summary: ProgramSummary) -> StaticReport:
    """Run the candidate passes over an already-extracted summary.

    This is the entry point for summaries that did not come from a
    :class:`Program` — the real-Python frontend
    (:func:`repro.static.pysource.frontend`) produces them straight from
    source text.  :func:`analyse` is the thin DSL wrapper around it.
    """
    start = perf_counter()
    contexts = site_contexts(summary)
    races = race_candidates(summary, contexts)
    candidates: List[StaticCandidate] = list(races)
    candidates.extend(atomicity_candidates(summary, contexts, races))
    candidates.extend(order_candidates(summary, contexts))
    candidates.extend(message_candidates(summary, contexts))
    candidates.extend(weakmem_candidates(summary, contexts))
    candidates.extend(deadlock_candidates(summary, contexts))
    pairs = target_pairs(summary, contexts, candidates)
    report = StaticReport(
        program=summary.program,
        summary=summary,
        candidates=candidates,
        pairs=pairs,
        wall_seconds=perf_counter() - start,
    )
    _record(report)
    return report


def _record(report: StaticReport) -> None:
    registry = obs_metrics.active()
    if registry is not None:
        registry.inc("static.analyses", 1)
        for cand in report.candidates:
            registry.inc(
                "static.candidates", 1,
                kind=cand.kind,
                suppressed=str(cand.suppressed).lower(),
            )
        registry.inc("static.pairs", len(report.pairs))
        registry.observe("static.wall_seconds", report.wall_seconds)
    if obs_runlog.active_runlog() is not None:
        counts: Dict[str, int] = {}
        for cand in report.active():
            counts[cand.kind] = counts.get(cand.kind, 0) + 1
        obs_runlog.emit(
            "static.analyse",
            program=report.program,
            wall_seconds=report.wall_seconds,
            approximate=report.approximate,
            candidates=counts,
            suppressed=len(report.suppressed()),
            pairs=len(report.pairs),
        )
