"""Lift a frontend :class:`ProgramSummary` into a runnable ``Program``.

The real-Python frontend (:mod:`repro.static.pysource`) turns ordinary
``threading`` source into the static summary vocabulary; this module
closes the loop by *compiling the summary back down* into a simulator
:class:`~repro.sim.program.Program` — generator threads yielding the
mapped :mod:`repro.sim.ops` operations — so every static candidate can
be dynamically confirmed by the existing explorers and detectors.

The generated code is designed to round-trip: each thread function is
registered in :mod:`linecache` under a synthetic filename, so
``inspect.getsource`` works and the DSL extractor
(:func:`repro.static.summary.summarize_program`) recovers the *same*
summary site-for-site (kinds, resources, labels, branch/loop structure)
from the lifted program.  Liftable structure maps as:

* :class:`SiteGuard` branches/loops become real ``if``/``while`` tests
  of the guarded site's value (``_v<i>``), with the while-loop's re-test
  site emitted as the body's last operation and copied back into the
  guard local — invisible to re-extraction, faithful at runtime.
* :class:`SummaryDeref` markers become ``_deref(_v<i>, 'var')`` calls
  that raise :class:`~repro.errors.SimCrash` on ``None``/``False`` —
  use-before-init candidates manifest as ``CRASH`` runs.
* Opaque branches (no guard) take their first arm via the ``_arm()``
  stub; the summary was already marked approximate there.
* Statically-resolved write/send payloads are emitted literally;
  unknown payloads became opaque (truthy) token strings in the frontend.

Declarations the summary cannot carry — semaphore permits and barrier
parties — default to 1 and 2 respectively; the study's bug shapes do
not depend on them.

:func:`confirm` packages the whole static→dynamic pipeline for one
module: analyse the summary, lift it, explore the lifted program, and
decide per candidate whether it *manifested* (matching dynamic finding,
or a crash / deadlock / hang status its shape predicts).
"""

from __future__ import annotations

import itertools
import linecache
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError, SimCrash
from repro.sim import ops as _ops
from repro.sim.engine import RunStatus
from repro.sim.program import Program
from repro.static.summary import (
    OpSite,
    ProgramSummary,
    SiteGuard,
    SummaryBranch,
    SummaryDeref,
    SummaryLoop,
    SummaryNode,
    SummaryOp,
    SummaryReturn,
)

__all__ = [
    "LiftError",
    "lift",
    "lifted_source",
    "structure",
    "confirm",
    "CandidateOutcome",
    "LiftOutcome",
]


class LiftError(ReproError):
    """The summary contains structure the lifter cannot compile."""


#: kind -> (Op constructor name, takes-resource, binds-result)
_KIND_CTORS: Dict[str, Tuple[str, bool, bool]] = {
    "read": ("Read", True, True),
    "write": ("Write", True, False),
    "acquire": ("Acquire", True, False),
    "release": ("Release", True, False),
    "wait": ("Wait", True, False),
    "notify": ("Notify", True, False),
    "notify_all": ("NotifyAll", True, False),
    "sem_acquire": ("SemAcquire", True, False),
    "sem_release": ("SemRelease", True, False),
    "barrier_wait": ("BarrierWait", True, False),
    "spawn": ("Spawn", True, False),
    "join": ("Join", True, False),
    "send": ("Send", True, False),
    "recv": ("Recv", True, True),
    "sleep": ("Sleep", False, False),
    "yield": ("Yield", False, False),
    "fence": ("Fence", False, False),
}

_GUARD_TESTS = {
    "truthy": "{v}",
    "falsy": "not {v}",
    "is-none": "{v} is None",
    "not-none": "{v} is not None",
}

_LIFT_COUNTER = itertools.count()


def _deref(value: Any, var: str) -> Any:
    """Runtime null-check compiled from a :class:`SummaryDeref` marker."""
    if value is None or value is False:
        raise SimCrash(f"dereference of uninitialised {var!r}")
    return value


def _arm() -> bool:
    """Stand-in test for an opaque branch: always the first arm."""
    return True


def _fn_name(thread: str) -> str:
    return "_lifted_" + re.sub(r"\W", "_", thread)


class _CodeGen:
    """Emit one thread's generator function from its summary nodes."""

    def __init__(self, thread: str):
        self.thread = thread
        self.lines: List[str] = [f"def {_fn_name(thread)}():"]
        self.emitted_ops = 0

    def line(self, depth: int, text: str) -> None:
        self.lines.append("    " * (depth + 1) + text)

    def op(self, depth: int, node: SummaryOp) -> None:
        site = node.site
        spec = _KIND_CTORS.get(site.kind)
        if spec is None:
            raise LiftError(
                f"thread {self.thread!r}: site kind {site.kind!r} has no "
                f"lifting (summary not produced by the frontend?)"
            )
        ctor, takes_resource, binds = spec
        args: List[str] = []
        if takes_resource:
            if site.obj is None:
                raise LiftError(
                    f"thread {self.thread!r}: {site.kind} site with no "
                    f"resolved resource cannot be lifted"
                )
            args.append(repr(site.obj))
        if site.kind == "write" or site.kind == "send":
            args.append(repr(node.value))
        if site.kind == "sleep":
            args.append("1")
        if site.label is not None:
            args.append(f"label={site.label!r}")
        call = f"yield {ctor}({', '.join(args)})"
        if binds:
            call = f"_v{site.index} = {call}"
        self.line(depth, call)
        self.emitted_ops += 1

    def block(self, depth: int, nodes: Sequence[SummaryNode]) -> None:
        wrote = False
        for node in nodes:
            if isinstance(node, SummaryOp):
                self.op(depth, node)
            elif isinstance(node, SummaryDeref):
                self.line(depth, f"_deref(_v{node.site}, {node.obj!r})")
            elif isinstance(node, SummaryReturn):
                self.line(depth, "return")
            elif isinstance(node, SummaryBranch):
                self.branch(depth, node)
            elif isinstance(node, SummaryLoop):
                self.loop(depth, node)
            else:
                raise LiftError(
                    f"thread {self.thread!r}: unliftable node {node!r}"
                )
            wrote = True
        if not wrote:
            self.line(depth, "pass")

    def branch(self, depth: int, node: SummaryBranch) -> None:
        test = (
            _GUARD_TESTS[node.guard.mode].format(v=f"_v{node.guard.site}")
            if node.guard is not None
            else "_arm()"
        )
        arms = node.arms or ((),)
        self.line(depth, f"if {test}:")
        self.block(depth + 1, arms[0])
        rest = arms[1:]
        if len(rest) == 1:
            if rest[0]:
                self.line(depth, "else:")
                self.block(depth + 1, rest[0])
        elif rest:
            # Multi-arm branches (try/except lowering) nest binary
            # opaque choices; those summaries are approximate already.
            self.line(depth, "else:")
            self.branch(depth + 1, SummaryBranch(arms=rest))

    def loop(self, depth: int, node: SummaryLoop) -> None:
        if node.guard is not None:
            guard = node.guard
            body = node.body
            if not (body and isinstance(body[-1], SummaryOp)):
                raise LiftError(
                    f"thread {self.thread!r}: guarded loop without a "
                    f"re-test site as its last body node"
                )
            retest = body[-1].site
            test = _GUARD_TESTS[guard.mode].format(v=f"_v{guard.site}")
            self.line(depth, f"while {test}:")
            self.block(depth + 1, body)
            # The re-test site's value drives the next evaluation.
            self.line(depth + 1, f"_v{guard.site} = _v{retest.index}")
            return
        if node.count is not None:
            self.line(depth, f"for _iter in range({node.count}):")
            self.block(depth + 1, node.body)
            return
        self.line(depth, "while True:")
        self.block(depth + 1, node.body)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def lifted_source(summary: ProgramSummary) -> str:
    """The generated module source for ``summary`` (debugging/docs aid)."""
    pieces = []
    for name, thread in summary.threads.items():
        gen = _CodeGen(name)
        gen.block(0, thread.nodes)
        pieces.append(gen.source())
    return "\n\n".join(pieces)


def lift(summary: ProgramSummary, name: Optional[str] = None) -> Program:
    """Compile a frontend summary into a runnable simulator program.

    The generated thread bodies are registered in :mod:`linecache`, so
    the DSL extractor re-derives the same summary from the result —
    :func:`structure` states the exact invariant.  Raises
    :class:`LiftError` on summaries with unresolved resources (a site
    whose ``obj`` could not be determined statically cannot be replayed).
    """
    program_name = name or f"lifted:{summary.program}"
    namespace: Dict[str, Any] = {
        "_deref": _deref,
        "_arm": _arm,
    }
    for ctor, _, _ in _KIND_CTORS.values():
        namespace[ctor] = getattr(_ops, ctor)
    threads: Dict[str, Any] = {}
    for thread_name, thread in summary.threads.items():
        gen = _CodeGen(thread_name)
        gen.block(0, thread.nodes)
        source = gen.source()
        filename = (
            f"<repro-lift-{next(_LIFT_COUNTER)}-"
            f"{re.sub(r'[^A-Za-z0-9_.-]', '_', summary.program)}-"
            f"{re.sub(r'[^A-Za-z0-9_.-]', '_', thread_name)}>.py"
        )
        code = compile(source, filename, "exec")
        # ``inspect.getsource`` consults linecache; an entry with
        # ``mtime=None`` survives ``checkcache`` for synthetic files.
        linecache.cache[filename] = (
            len(source),
            None,
            source.splitlines(keepends=True),
            filename,
        )
        exec(code, namespace)
        threads[thread_name] = namespace[_fn_name(thread_name)]
    return Program(
        name=program_name,
        threads=threads,
        initial=dict(summary.initial),
        locks=tuple(summary.locks),
        rwlocks=tuple(summary.rwlocks),
        semaphores={s: 1 for s in summary.semaphores},
        conditions=dict(summary.conditions),
        barriers={b: 2 for b in summary.barriers},
        channels=dict(summary.channels),
        start=tuple(summary.start) or None,
        memory=summary.memory,
    )


# -- round-trip canonicalisation ---------------------------------------------


def structure(summary: ProgramSummary) -> Dict[str, Any]:
    """Canonical shape of a summary for round-trip comparison.

    Two summaries with equal :func:`structure` agree site-for-site on
    kinds, resources, labels, and branch/loop nesting.  Frontend-only
    decoration that re-extraction cannot recover is normalised away:
    guards, payload values, :class:`SummaryDeref` markers, and linenos
    (the lifted file has its own numbering).  A binary branch whose
    whole else-arm is another branch is flattened to a multi-arm one,
    matching the lifter's nested lowering of try/except arms.
    """

    def nodes_of(nodes: Sequence[SummaryNode]) -> Tuple[Any, ...]:
        out: List[Any] = []
        for node in nodes:
            if isinstance(node, SummaryOp):
                site = node.site
                out.append(("op", site.kind, site.obj, site.label,
                            site.conditional))
            elif isinstance(node, SummaryBranch):
                arms = [nodes_of(arm) for arm in node.arms]
                while (
                    len(arms) == 2
                    and len(arms[1]) == 1
                    and isinstance(arms[1][0], tuple)
                    and arms[1][0] and arms[1][0][0] == "branch"
                ):
                    arms = [arms[0]] + list(arms[1][0][1])
                out.append(("branch", tuple(arms)))
            elif isinstance(node, SummaryLoop):
                out.append(("loop", nodes_of(node.body)))
            elif isinstance(node, SummaryReturn):
                out.append(("return",))
            # SummaryDeref: frontend-only, skipped.
        return tuple(out)

    return {
        "threads": {
            name: nodes_of(thread.nodes)
            for name, thread in summary.threads.items()
        },
        "initial": dict(summary.initial),
        "locks": tuple(summary.locks),
        "semaphores": tuple(summary.semaphores),
        "conditions": dict(summary.conditions),
        "barriers": tuple(summary.barriers),
        "channels": dict(summary.channels),
        "start": tuple(summary.start),
        "memory": summary.memory,
    }


# -- static -> dynamic confirmation ------------------------------------------


@dataclass
class CandidateOutcome:
    """One static candidate and how (whether) exploration manifested it."""

    kind: str
    description: str
    variables: Tuple[str, ...]
    resources: Tuple[str, ...]
    confirmed: bool
    how: str  # "finding" | "crash" | "deadlock" | "hang" | ""

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "description": self.description,
            "variables": list(self.variables),
            "resources": list(self.resources),
            "confirmed": self.confirmed,
            "how": self.how,
        }


@dataclass
class LiftOutcome:
    """The full static→dynamic verdict for one lifted module."""

    program: str
    outcomes: List[CandidateOutcome] = field(default_factory=list)
    #: Terminal statuses the exploration of the lifted program reached.
    statuses: Dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def clean(self) -> bool:
        """No failing terminal status: the module verifies clean.

        Residual *candidates* may remain (tolerated races); cleanliness
        is about dynamic manifestation, matching the study's fix
        strategies that tolerate rather than remove a race.
        """
        return not any(
            self.statuses.get(status, 0)
            for status in ("crash", "deadlock", "hang")
        )

    @property
    def confirmed(self) -> List[CandidateOutcome]:
        return [o for o in self.outcomes if o.confirmed]

    def to_json(self) -> Dict[str, Any]:
        """JSON-native rendering (CLI ``--json``, service verdicts)."""
        return {
            "program": self.program,
            "clean": self.clean,
            "statuses": dict(self.statuses),
            "candidates": [o.to_json() for o in self.outcomes],
            "wall_seconds": round(self.wall_seconds, 6),
        }


def _summary_derefs(summary: ProgramSummary) -> Dict[str, bool]:
    """Variables whose read value is dereferenced somewhere."""
    derefed: Dict[str, bool] = {}

    def walk(nodes: Sequence[SummaryNode]) -> None:
        for node in nodes:
            if isinstance(node, SummaryDeref):
                derefed[node.obj] = True
            elif isinstance(node, SummaryBranch):
                for arm in node.arms:
                    walk(arm)
            elif isinstance(node, SummaryLoop):
                walk(node.body)

    for thread in summary.threads.values():
        walk(thread.nodes)
    return derefed


def _status_confirms(
    candidate: Any, statuses: Dict[str, int], derefed: Dict[str, bool]
) -> str:
    """Which failing terminal status manifests this candidate's shape."""
    if candidate.kind == "deadlock":
        if statuses.get(RunStatus.DEADLOCK.value, 0):
            return "deadlock"
        return ""
    if statuses.get(RunStatus.CRASH.value, 0) and any(
        derefed.get(var) for var in candidate.variables
    ):
        return "crash"
    if candidate.kind == "order-violation" and statuses.get(
        RunStatus.HANG.value, 0
    ):
        # Lost messages / lost wakeups starve a blocking recv or wait.
        return "hang"
    return ""


def confirm(
    summary: ProgramSummary,
    max_schedules: int = 2000,
    max_steps: int = 4000,
    reduction: Optional[str] = "dpor",
) -> LiftOutcome:
    """Lift ``summary`` and dynamically confirm its static candidates.

    Two confirmation routes per candidate, either suffices:

    1. **finding** — the detector suite's static cross-check on the
       lifted program reports a matching dynamic finding on some
       schedule (the same matcher the DSL kernels are scored with);
    2. **status** — exhaustive exploration reaches a terminal status the
       candidate's shape predicts (deadlock cycles → ``DEADLOCK``,
       dereferenced use-before-init variables → ``CRASH``, lost
       messages/wakeups → ``HANG``).

    Exploration is serial on purpose: lifted thread bodies are built by
    ``exec`` and cannot cross a process boundary.
    """
    from time import perf_counter

    from repro.detectors.suite import DetectorSuite
    from repro.sim.explorer import enumerate_outcomes
    from repro.static.report import analyse_summary

    start = perf_counter()
    report = analyse_summary(summary)
    program = lift(summary)
    comparison = DetectorSuite.for_program(program, streaming=True).analyse_static(
        program,
        max_schedules=max_schedules,
        reduction=reduction,
    )
    exploration = enumerate_outcomes(
        program,
        max_schedules=max_schedules,
        max_steps=max_steps,
        reduction=reduction,
    )
    statuses = {
        status.value: count for status, count in exploration.statuses.items()
    }
    confirmed_keys = {
        (c.kind, c.variables, c.resources)
        for c in comparison.confirmed_candidates
    }
    derefed = _summary_derefs(summary)
    outcomes: List[CandidateOutcome] = []
    for candidate in report.active():
        how = ""
        if (candidate.kind, candidate.variables, candidate.resources) in confirmed_keys:
            how = "finding"
        else:
            how = _status_confirms(candidate, statuses, derefed)
        outcomes.append(
            CandidateOutcome(
                kind=candidate.kind,
                description=candidate.description,
                variables=candidate.variables,
                resources=candidate.resources,
                confirmed=bool(how),
                how=how,
            )
        )
    return LiftOutcome(
        program=summary.program,
        outcomes=outcomes,
        statuses=statuses,
        wall_seconds=perf_counter() - start,
    )
