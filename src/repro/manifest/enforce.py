"""Enforcing partial orders among labelled operations (Finding 8).

The study's most actionable manifestation finding: for 92% of the bugs,
*enforcing a certain partial order among no more than four memory
accesses/resource acquisitions guarantees the bug manifests*.  This module
turns a partial order over operation labels into a scheduling constraint:

* an operation carrying a constrained label may only execute once all its
  predecessor labels have executed;
* everything else schedules freely.

The constraint is implemented as an engine ``enabled_filter`` — no engine
changes, no program changes.  If at some step *every* enabled thread is
held back by the order (which can only happen when the order conflicts
with the program's own synchronisation), the engine falls back to the
unconstrained enabled set and the enforcer records the violation, so
callers can distinguish "bug didn't manifest" from "order was
unenforceable".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import EnforcementError
from repro.sim.engine import Engine, RunResult
from repro.sim.program import Program
from repro.sim.scheduler import RandomScheduler, Scheduler

__all__ = ["OrderEnforcer", "EnforcedRun", "enforce_order", "order_guarantees"]

OrderPairs = Sequence[Tuple[str, str]]


class OrderEnforcer:
    """A scheduling filter holding back successors until predecessors ran."""

    def __init__(self, order: OrderPairs):
        self.order: Tuple[Tuple[str, str], ...] = tuple(order)
        self.predecessors: Dict[str, Set[str]] = {}
        labels: Set[str] = set()
        for earlier, later in self.order:
            if earlier == later:
                raise EnforcementError(f"self-edge on label {earlier!r}")
            self.predecessors.setdefault(later, set()).add(earlier)
            labels.update((earlier, later))
        self.labels = labels
        self._check_acyclic()
        self.stalled = False

    def _check_acyclic(self) -> None:
        visiting: Set[str] = set()
        done: Set[str] = set()

        def visit(node: str) -> None:
            if node in done:
                return
            if node in visiting:
                raise EnforcementError(
                    f"the requested order contains a cycle through {node!r}"
                )
            visiting.add(node)
            for predecessor in self.predecessors.get(node, ()):
                visit(predecessor)
            visiting.discard(node)
            done.add(node)

        for label in list(self.labels):
            visit(label)

    def reset(self) -> None:
        """Clear per-run state before a fresh run."""
        self.stalled = False

    def __call__(self, engine: Engine, enabled: List[str]) -> List[str]:
        executed = set(engine.executed_labels)
        allowed: List[str] = []
        for name in enabled:
            pending = engine.pending_op(name)
            label = getattr(pending, "label", None)
            if label is not None and label in self.predecessors:
                if not self.predecessors[label] <= executed:
                    continue
            allowed.append(name)
        if not allowed and enabled:
            self.stalled = True
        return allowed


@dataclass
class EnforcedRun:
    """A run under order enforcement, plus whether the order actually held."""

    result: RunResult
    satisfied: bool
    missing_labels: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        """Order held and every constrained label executed.

        This is the *strict* notion, useful when the caller expects the
        whole constrained region to run.  Manifestation-guarantee checks
        use the weaker ``satisfied`` plus the failure oracle, because a
        manifesting crash/deadlock cuts execution short of later labels.
        """
        return self.satisfied and not self.missing_labels


def enforce_order(
    program: Program,
    order: OrderPairs,
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 20000,
) -> EnforcedRun:
    """Run ``program`` with ``order`` enforced; report whether it held.

    ``satisfied`` is false if the engine ever had to fall back because the
    order fought the program's own synchronisation; ``missing_labels``
    lists constrained labels that never executed (e.g. a branch not
    taken), which also voids the guarantee.
    """
    enforcer = OrderEnforcer(order)
    engine = Engine(
        program,
        scheduler if scheduler is not None else RandomScheduler(seed=0),
        max_steps=max_steps,
        enabled_filter=enforcer,
    )
    enforcer.reset()
    result = engine.run()
    executed = set(engine.executed_labels)
    missing = tuple(sorted(enforcer.labels - executed))
    return EnforcedRun(
        result=result,
        satisfied=not enforcer.stalled,
        missing_labels=missing,
    )


def order_guarantees(
    program: Program,
    order: OrderPairs,
    failure,
    attempts: int = 20,
    max_steps: int = 20000,
) -> bool:
    """Whether enforcing ``order`` makes ``failure`` hold on *every* run.

    Runs the enforced program under ``attempts`` different random
    schedulers; the guarantee claim requires each run to both respect the
    order and fail per the oracle.  (Free scheduling outside the
    constrained labels is exactly what 'a certain partial order among K
    accesses *guarantees* manifestation' quantifies over.)
    """
    for seed in range(attempts):
        run = enforce_order(
            program, order, scheduler=RandomScheduler(seed=seed), max_steps=max_steps
        )
        # The order must never have been violated, and the bug must show.
        # Constrained labels that never executed are fine *when the run
        # failed*: a crash or deadlock legitimately cuts execution short of
        # the remaining labels.
        if not run.satisfied or not failure(run.result):
            return False
    return True
