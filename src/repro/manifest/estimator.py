"""Manifestation-rate estimation under different testing strategies.

Quantifies the study's testing implications on executable kernels:

* random stress testing (``RandomScheduler``) hits these bugs rarely;
* PCT improves on random by bounding the number of ordering decisions;
* enforcing the kernel's recorded ≤4-access partial order
  (:mod:`repro.manifest.enforce`) manifests the bug *every* time.

All estimates are deterministic given the seed range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.kernels.base import BugKernel
from repro.manifest.enforce import enforce_order
from repro.sim.engine import RunResult, run_program
from repro.sim.program import Program
from repro.sim.scheduler import (
    CooperativeScheduler,
    PCTScheduler,
    RandomScheduler,
    Scheduler,
)

__all__ = [
    "ManifestationEstimate",
    "estimate_manifestation",
    "compare_strategies",
]

SchedulerFactory = Callable[[int], Scheduler]


@dataclass(frozen=True)
class ManifestationEstimate:
    """Outcome of repeated testing runs against one program + oracle."""

    strategy: str
    runs: int
    manifested: int

    @property
    def rate(self) -> float:
        """Fraction of runs that manifested the bug."""
        return self.manifested / self.runs if self.runs else 0.0

    def summary(self) -> str:
        """One-line rendering."""
        return f"{self.strategy}: {self.manifested}/{self.runs} ({self.rate:.1%})"


def estimate_manifestation(
    program: Program,
    failure: Callable[[RunResult], bool],
    scheduler_factory: SchedulerFactory,
    runs: int = 100,
    strategy: str = "custom",
    max_steps: int = 20000,
) -> ManifestationEstimate:
    """Run ``program`` ``runs`` times under seeded schedulers; count failures."""
    manifested = 0
    for seed in range(runs):
        result = run_program(program, scheduler_factory(seed), max_steps=max_steps)
        if failure(result):
            manifested += 1
    return ManifestationEstimate(strategy=strategy, runs=runs, manifested=manifested)


def compare_strategies(
    kernel: BugKernel,
    runs: int = 100,
    pct_depth: int = 3,
    pct_horizon: Optional[int] = None,
) -> Dict[str, ManifestationEstimate]:
    """Manifestation rates of one kernel under the standard strategies.

    Returns estimates for: ``cooperative`` (non-preemptive — typically
    0%), ``random`` stress, ``pct`` (depth-bounded priority testing), and
    ``enforced`` (the kernel's recorded ≤4-access partial order — the
    Finding 8 guarantee, typically 100%).

    Note on PCT: its per-run probability is a *guaranteed lower bound*
    (~1/(n·k^(d-1))) that holds however deep or adversarial the bug; on
    these small two-thread kernels plain uniform random often samples the
    tiny interleaving space at a higher raw rate.  The study's point
    survives either way: both are orders of magnitude below the enforced
    order's 100%.
    """
    # Horizon defaults near the kernels' actual step counts; PCT's change
    # points only matter when they land inside the run.
    horizon = pct_horizon if pct_horizon is not None else 12
    estimates = {
        "cooperative": estimate_manifestation(
            kernel.buggy, kernel.failure,
            lambda seed: CooperativeScheduler(),
            runs=1, strategy="cooperative",
        ),
        "random": estimate_manifestation(
            kernel.buggy, kernel.failure,
            lambda seed: RandomScheduler(seed=seed),
            runs=runs, strategy="random",
        ),
        "pct": estimate_manifestation(
            kernel.buggy, kernel.failure,
            lambda seed: PCTScheduler(seed=seed, depth=pct_depth, horizon=horizon),
            runs=runs, strategy="pct",
        ),
    }
    enforced = 0
    for seed in range(runs):
        run = enforce_order(
            kernel.buggy,
            kernel.manifest_order,
            scheduler=RandomScheduler(seed=seed),
        )
        # Same semantics as order_guarantees: the order must hold and the
        # bug must show; labels cut off by the manifesting crash/deadlock
        # do not void the guarantee.
        if run.satisfied and kernel.failure(run.result):
            enforced += 1
    estimates["enforced"] = ManifestationEstimate(
        strategy="enforced(<=4 accesses)", runs=runs, manifested=enforced
    )
    return estimates
