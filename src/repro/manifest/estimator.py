"""Manifestation-rate estimation under different testing strategies.

Quantifies the study's testing implications on executable kernels:

* random stress testing (``RandomScheduler``) hits these bugs rarely;
* PCT improves on random by bounding the number of ordering decisions;
* enforcing the kernel's recorded ≤4-access partial order
  (:mod:`repro.manifest.enforce`) manifests the bug *every* time.

All estimates are deterministic given the seed range.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.kernels.base import BugKernel
from repro.obs import metrics as obs_metrics
from repro.obs import runlog as obs_runlog
from repro.manifest.enforce import enforce_order
from repro.sim.engine import RunResult, run_program
from repro.sim.program import Program
from repro.sim.scheduler import (
    CooperativeScheduler,
    PCTScheduler,
    RandomScheduler,
    Scheduler,
)

__all__ = [
    "ManifestationEstimate",
    "estimate_manifestation",
    "compare_strategies",
]

SchedulerFactory = Callable[[int], Scheduler]


@dataclass(frozen=True)
class ManifestationEstimate:
    """Outcome of repeated testing runs against one program + oracle."""

    strategy: str
    runs: int
    manifested: int

    @property
    def rate(self) -> float:
        """Fraction of runs that manifested the bug."""
        return self.manifested / self.runs if self.runs else 0.0

    def summary(self) -> str:
        """One-line rendering."""
        return f"{self.strategy}: {self.manifested}/{self.runs} ({self.rate:.1%})"


#: Worker-process state for parallel estimation (inherited via fork, so
#: generator-closure programs and closure factories need not pickle).
_WORKER: Dict[str, Any] = {}


def _init_worker(
    program: Program,
    failure: Callable[[RunResult], bool],
    scheduler_factory: SchedulerFactory,
    max_steps: int,
) -> None:
    _WORKER["program"] = program
    _WORKER["failure"] = failure
    _WORKER["scheduler_factory"] = scheduler_factory
    _WORKER["max_steps"] = max_steps


def _count_range(seed_range: Tuple[int, int]) -> int:
    """Failures over ``range(*seed_range)``; runs inside a worker."""
    lo, hi = seed_range
    manifested = 0
    for seed in range(lo, hi):
        result = run_program(
            _WORKER["program"],
            _WORKER["scheduler_factory"](seed),
            max_steps=_WORKER["max_steps"],
        )
        if _WORKER["failure"](result):
            manifested += 1
    return manifested


def _seed_ranges(runs: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``range(runs)`` into ``shards`` contiguous near-equal ranges."""
    step, extra = divmod(runs, shards)
    ranges = []
    lo = 0
    for index in range(shards):
        hi = lo + step + (1 if index < extra else 0)
        if hi > lo:
            ranges.append((lo, hi))
        lo = hi
    return ranges


def estimate_manifestation(
    program: Program,
    failure: Callable[[RunResult], bool],
    scheduler_factory: SchedulerFactory,
    runs: int = 100,
    strategy: str = "custom",
    max_steps: int = 20000,
    workers: Optional[int] = None,
) -> ManifestationEstimate:
    """Run ``program`` ``runs`` times under seeded schedulers; count failures.

    ``workers > 1`` splits the seed range across a process pool; every
    seed still runs exactly once, so the estimate is identical to the
    serial one for any worker count.
    """
    start = perf_counter()
    if (
        workers is not None
        and workers > 1
        and runs > 1
        and "fork" in multiprocessing.get_all_start_methods()
    ):
        ranges = _seed_ranges(runs, min(workers, runs))
        context = multiprocessing.get_context("fork")
        with context.Pool(
            processes=len(ranges),
            initializer=_init_worker,
            initargs=(program, failure, scheduler_factory, max_steps),
        ) as pool:
            manifested = sum(pool.map(_count_range, ranges))
    else:
        manifested = 0
        for seed in range(runs):
            result = run_program(
                program, scheduler_factory(seed), max_steps=max_steps
            )
            if failure(result):
                manifested += 1
    estimate = ManifestationEstimate(
        strategy=strategy, runs=runs, manifested=manifested
    )
    _record_estimate(program.name, estimate, workers, perf_counter() - start)
    return estimate


def _record_estimate(
    program: str,
    estimate: ManifestationEstimate,
    workers: Optional[int],
    wall_seconds: float,
) -> None:
    """Publish one estimator sweep to metrics and the run log (if active)."""
    registry = obs_metrics.active()
    if registry is not None:
        labels = {"program": program, "strategy": estimate.strategy}
        registry.inc("estimator.runs", estimate.runs, **labels)
        registry.inc("estimator.manifested", estimate.manifested, **labels)
    if obs_runlog.active_runlog() is not None:
        obs_runlog.emit(
            "estimate_manifestation",
            program=program,
            strategy=estimate.strategy,
            args={"runs": estimate.runs, "workers": workers},
            result={
                "manifested": estimate.manifested,
                "rate": estimate.rate,
            },
            wall_seconds=wall_seconds,
        )


def compare_strategies(
    kernel: BugKernel,
    runs: int = 100,
    pct_depth: int = 3,
    pct_horizon: Optional[int] = None,
    workers: Optional[int] = None,
    reduction: Optional[str] = None,
) -> Dict[str, ManifestationEstimate]:
    """Manifestation rates of one kernel under the standard strategies.

    Returns estimates for: ``cooperative`` (non-preemptive — typically
    0%), ``random`` stress, ``pct`` (depth-bounded priority testing),
    ``exhaustive`` (systematic DFS, stopping at the first failing
    schedule; ``reduction`` selects the partial-order reduction it
    searches under, so its ``runs`` is the schedules-to-first-failure
    of that search), and ``enforced`` (the kernel's recorded ≤4-access
    partial order — the Finding 8 guarantee, typically 100%).

    An ``adaptive`` row reports the cost of *not knowing* the right
    strategy up front: :func:`repro.alloc.adaptive_first_finding` races
    dfs / sleep-set / random / pct arms under a UCB1 bandit and its
    ``runs`` is the total schedules spent (across every arm) until the
    bug first manifested.

    Note on PCT: its per-run probability is a *guaranteed lower bound*
    (~1/(n·k^(d-1))) that holds however deep or adversarial the bug; on
    these small two-thread kernels plain uniform random often samples the
    tiny interleaving space at a higher raw rate.  The study's point
    survives either way: both are orders of magnitude below the enforced
    order's 100%.
    """
    from repro.alloc import adaptive_first_finding, derive_horizon

    # Horizon defaults to the kernel's *measured* step count (longest of
    # a cooperative and a seed-0 random run); PCT's change points only
    # matter when they land inside the run, so a hardcoded constant
    # under- or over-shoots kernels whose runs are shorter or longer.
    horizon = (
        pct_horizon if pct_horizon is not None
        else derive_horizon(kernel.buggy)
    )
    estimates = {
        "cooperative": estimate_manifestation(
            kernel.buggy, kernel.failure,
            lambda seed: CooperativeScheduler(),
            runs=1, strategy="cooperative",
        ),
        "random": estimate_manifestation(
            kernel.buggy, kernel.failure,
            lambda seed: RandomScheduler(seed=seed),
            runs=runs, strategy="random", workers=workers,
        ),
        "pct": estimate_manifestation(
            kernel.buggy, kernel.failure,
            lambda seed: PCTScheduler(seed=seed, depth=pct_depth, horizon=horizon),
            runs=runs, strategy="pct", workers=workers,
        ),
    }
    # Systematic-search row: a bounded exhaustive hunt for the first
    # failing schedule.  Its "rate" is 1 / schedules-to-first-failure —
    # the systematic counterpart of the samplers' hit probability.
    from repro.sim.explorer import make_explorer

    exhaustive_start = perf_counter()
    # Workers ride along wherever the combination is legal (plain DFS
    # and parallel DPOR); sleep sets stay serial — their pruning needs
    # the full sibling set in one process.
    exhaustive_workers = workers if reduction != "sleepset" else None
    explorer = make_explorer(
        kernel.buggy, workers=exhaustive_workers, reduction=reduction
    )
    exploration = explorer.explore(
        predicate=kernel.failure, stop_on_first=True
    )
    probes = (
        exploration.schedules_to_first_finding
        if exploration.schedules_to_first_finding is not None
        else exploration.schedules_run
    )
    estimates["exhaustive"] = ManifestationEstimate(
        strategy=f"exhaustive[{reduction or 'none'}]",
        runs=probes,
        manifested=1 if exploration.match_count else 0,
    )
    _record_estimate(
        kernel.buggy.name, estimates["exhaustive"], workers,
        perf_counter() - exhaustive_start,
    )
    # Adaptive row: schedules-to-first-finding when a UCB1 bandit must
    # *discover* the right strategy.  ``runs`` is total spend across all
    # arms, so its "rate" is directly comparable to the exhaustive row.
    adaptive_start = perf_counter()
    race = adaptive_first_finding(
        kernel.buggy, kernel.failure,
        pct_depth=pct_depth, pct_horizon=horizon,
    )
    estimates["adaptive"] = ManifestationEstimate(
        strategy=f"adaptive[ucb:{race.winner or 'none'}]",
        runs=race.schedules,
        manifested=1 if race.found else 0,
    )
    _record_estimate(
        kernel.buggy.name, estimates["adaptive"], None,
        perf_counter() - adaptive_start,
    )
    enforced = 0
    enforced_start = perf_counter()
    for seed in range(runs):
        run = enforce_order(
            kernel.buggy,
            kernel.manifest_order,
            scheduler=RandomScheduler(seed=seed),
        )
        # Same semantics as order_guarantees: the order must hold and the
        # bug must show; labels cut off by the manifesting crash/deadlock
        # do not void the guarantee.
        if run.satisfied and kernel.failure(run.result):
            enforced += 1
    estimates["enforced"] = ManifestationEstimate(
        strategy="enforced(<=4 accesses)", runs=runs, manifested=enforced
    )
    _record_estimate(
        kernel.buggy.name, estimates["enforced"], None,
        perf_counter() - enforced_start,
    )
    return estimates
