"""Statistical treatment of manifestation-rate estimates.

Manifestation rates from finite run samples deserve error bars: a bug
that showed up in 0/100 random runs is not proven absent (the study's
core warning about stress testing).  This module provides:

* :func:`wilson_interval` — the Wilson score interval for a binomial
  proportion, well-behaved at the extremes (0/n, n/n) where the naive
  normal interval collapses;
* :func:`runs_needed` — how many independent runs are required to
  observe a bug of per-run probability *p* at least once with
  confidence *c*: the study's "how long must you stress-test" question,
  inverted;
* :func:`compare_rates` — a two-proportion z-test for "did strategy A
  really manifest more often than strategy B", used when comparing
  schedulers on the same kernel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from scipy import stats as scipy_stats

__all__ = ["wilson_interval", "runs_needed", "compare_rates", "RateComparison"]


def wilson_interval(
    successes: int, runs: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Returns ``(low, high)``; both in [0, 1].  ``runs == 0`` yields the
    vacuous interval (0, 1).
    """
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    if successes < 0 or successes > runs:
        raise ValueError("successes must be between 0 and runs")
    if runs == 0:
        return (0.0, 1.0)
    z = float(scipy_stats.norm.ppf(1 - (1 - confidence) / 2))
    phat = successes / runs
    denom = 1 + z * z / runs
    centre = (phat + z * z / (2 * runs)) / denom
    margin = (
        z
        * math.sqrt(phat * (1 - phat) / runs + z * z / (4 * runs * runs))
        / denom
    )
    # The extremes are exact by construction; clear the FP residue there.
    low = 0.0 if successes == 0 else max(0.0, centre - margin)
    high = 1.0 if successes == runs else min(1.0, centre + margin)
    return (float(low), float(high))


def runs_needed(per_run_probability: float, confidence: float = 0.95) -> int:
    """Independent runs needed to hit a bug at least once with confidence.

    Solves ``1 - (1-p)^n >= c``.  For the study's point: a bug with a 1%
    per-run manifestation probability needs ~300 random runs for 95%
    confidence, while enforcing its ≤4-access order needs exactly one.
    """
    p = per_run_probability
    if not 0 < p <= 1:
        raise ValueError("per-run probability must be in (0, 1]")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    if p == 1.0:
        return 1
    return math.ceil(math.log(1 - confidence) / math.log(1 - p))


@dataclass(frozen=True)
class RateComparison:
    """Result of a two-proportion comparison."""

    rate_a: float
    rate_b: float
    z_score: float
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the difference is significant at level ``alpha``."""
        return self.p_value < alpha


def compare_rates(
    successes_a: int, runs_a: int, successes_b: int, runs_b: int
) -> RateComparison:
    """Two-proportion z-test (pooled); two-sided p-value."""
    if runs_a <= 0 or runs_b <= 0:
        raise ValueError("both samples need at least one run")
    pa = successes_a / runs_a
    pb = successes_b / runs_b
    pooled = (successes_a + successes_b) / (runs_a + runs_b)
    se = math.sqrt(pooled * (1 - pooled) * (1 / runs_a + 1 / runs_b))
    if se == 0:
        z = 0.0
    else:
        z = (pa - pb) / se
    p_value = 2 * (1 - scipy_stats.norm.cdf(abs(z)))
    return RateComparison(rate_a=pa, rate_b=pb, z_score=z, p_value=float(p_value))
