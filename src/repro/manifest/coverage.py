"""Pairwise interleaving coverage — the study's testing implication.

Findings 3 and 8 argue that concurrency testing should target *pairwise*
orderings between accesses from two threads, because (a) 96% of bugs need
only two threads and (b) a handful of ordered accesses decides
manifestation.  The practical metric that fell out of this line of work is
**ordered-pair coverage**: of all conflicting access pairs (same variable,
different threads, at least one write), which observed orders has testing
exercised?

:class:`PairwiseCoverage` accumulates that metric over traces.  Access
sites are identified by their operation label when present, else by a
synthesised ``thread:var:kind#occurrence`` id, so unlabelled programs get
stable site identities too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.sim import events as ev
from repro.sim.trace import Trace

__all__ = ["access_sites", "ordered_pairs", "PairwiseCoverage"]


@dataclass(frozen=True)
class _Site:
    site_id: str
    thread: str
    var: str
    is_write: bool


def access_sites(trace: Trace) -> List[_Site]:
    """Memory accesses of a trace with stable site identities, in order."""
    occurrence: Dict[Tuple[str, str, str], int] = {}
    sites: List[_Site] = []
    for event in trace:
        if not event.is_memory_access:
            continue
        var = event.var  # type: ignore[attr-defined]
        is_write = isinstance(event, (ev.WriteEvent, ev.AtomicUpdateEvent))
        kind = "w" if is_write else "r"
        if event.label is not None:
            site_id = event.label
        else:
            key = (event.thread, var, kind)
            occurrence[key] = occurrence.get(key, 0) + 1
            site_id = f"{event.thread}:{var}:{kind}#{occurrence[key]}"
        sites.append(
            _Site(site_id=site_id, thread=event.thread, var=var, is_write=is_write)
        )
    return sites


def ordered_pairs(trace: Trace) -> Set[Tuple[str, str]]:
    """Observed (earlier_site, later_site) conflicting pairs of one trace.

    Only *adjacent-conflict* pairs count: accesses to the same variable
    from different threads with at least one write and no other access to
    that variable between them.  Adjacency is what an interleaving
    decision actually controls, and it keeps the metric linear in trace
    length.
    """
    pairs: Set[Tuple[str, str]] = set()
    last_by_var: Dict[str, _Site] = {}
    for site in access_sites(trace):
        previous = last_by_var.get(site.var)
        if (
            previous is not None
            and previous.thread != site.thread
            and (previous.is_write or site.is_write)
        ):
            pairs.add((previous.site_id, site.site_id))
        last_by_var[site.var] = site
    return pairs


@dataclass
class PairwiseCoverage:
    """Accumulates ordered-pair coverage across many traces."""

    covered: Set[Tuple[str, str]] = field(default_factory=set)
    traces_seen: int = 0

    def add(self, trace: Trace) -> int:
        """Add one trace; returns how many new pairs it contributed."""
        fresh = ordered_pairs(trace) - self.covered
        self.covered |= fresh
        self.traces_seen += 1
        return len(fresh)

    @property
    def pairs_covered(self) -> int:
        """Number of distinct ordered pairs observed so far."""
        return len(self.covered)

    def symmetric_gaps(self) -> Set[Tuple[str, str]]:
        """Covered pairs whose *reverse* order has never been observed.

        Each gap is an untested interleaving direction — exactly the
        orders a guided tester should force next.
        """
        return {
            (a, b) for (a, b) in self.covered if (b, a) not in self.covered
        }

    def coverage_ratio(self) -> float:
        """Covered fraction of the both-directions universe.

        The universe is estimated as both orders of every pair seen in at
        least one direction; 1.0 means every observed conflict has been
        exercised both ways.
        """
        universe = set(self.covered)
        universe |= {(b, a) for (a, b) in self.covered}
        if not universe:
            return 0.0
        return len(self.covered) / len(universe)
