"""Bug-manifestation machinery: the study's testing implications.

* :mod:`repro.manifest.enforce` — impose a partial order over labelled
  accesses and check it guarantees manifestation (Finding 8).
* :mod:`repro.manifest.coverage` — pairwise interleaving coverage.
* :mod:`repro.manifest.estimator` — manifestation rates under random /
  PCT / cooperative / order-enforced testing.
"""

from repro.manifest.coverage import PairwiseCoverage, access_sites, ordered_pairs
from repro.manifest.enforce import (
    EnforcedRun,
    OrderEnforcer,
    enforce_order,
    order_guarantees,
)
from repro.manifest.estimator import (
    ManifestationEstimate,
    compare_strategies,
    estimate_manifestation,
)

__all__ = [
    "OrderEnforcer",
    "EnforcedRun",
    "enforce_order",
    "order_guarantees",
    "PairwiseCoverage",
    "access_sites",
    "ordered_pairs",
    "ManifestationEstimate",
    "estimate_manifestation",
    "compare_strategies",
]
