"""Detector framework: finding/report types and the streaming detector ABC.

Every detector is a **streaming observer**: it declares which shared
:class:`~repro.detectors.pipeline.AnalysisState` components it reads
(:attr:`Detector.requires`), receives every event exactly once through
:meth:`Detector.on_event`, and finishes end-of-trace analyses in
:meth:`Detector.finish`.  A :class:`~repro.detectors.pipeline.DetectorPipeline`
owns the single event pass and the shared state (vector clocks, locksets,
lock-order graph), so running five detectors costs one pass, not five.

The batch entry points survive as thin compatibility shims:
:meth:`Detector.analyse` runs a one-detector pipeline over a recorded
:class:`~repro.sim.trace.Trace`, so existing callers (and the guarantee
that one recorded interleaving is analysed reproducibly) are unchanged.

The detector taxonomy mirrors the tool landscape the ASPLOS'08 study draws
implications for: data-race detectors (happens-before and lockset),
atomicity-violation detectors (AVIO-style), order-violation heuristics, and
deadlock detectors (lock-order graphs).  :mod:`repro.detectors.suite` runs
them side by side to reproduce the study's "which tool class can catch
which bug class" discussion.
"""

from __future__ import annotations

import abc
import copy
import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, FrozenSet, Iterable, List, Tuple

from repro.sim import events as ev
from repro.sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pipeline imports base)
    from repro.detectors.pipeline import AnalysisState

__all__ = ["FindingKind", "Finding", "Report", "Detector"]


class FindingKind(enum.Enum):
    """What class of concurrency problem a finding reports."""

    DATA_RACE = "data-race"
    ATOMICITY_VIOLATION = "atomicity-violation"
    ORDER_VIOLATION = "order-violation"
    DEADLOCK = "deadlock"
    POTENTIAL_DEADLOCK = "potential-deadlock"
    HANG = "hang"


@dataclass(frozen=True)
class Finding:
    """One reported problem.

    :param kind: problem class.
    :param detector: name of the reporting detector.
    :param description: human-readable explanation.
    :param threads: threads implicated, sorted.
    :param variables: shared variables implicated, sorted.
    :param resources: locks/other sync resources implicated, sorted.
    :param events: trace sequence numbers of the witnessing events.
    """

    kind: FindingKind
    detector: str
    description: str
    threads: Tuple[str, ...] = ()
    variables: Tuple[str, ...] = ()
    resources: Tuple[str, ...] = ()
    events: Tuple[int, ...] = ()

    def involves_variable(self, var: str) -> bool:
        """Whether ``var`` is implicated in this finding."""
        return var in self.variables

    def summary(self) -> str:
        """Compact one-line rendering."""
        where = ",".join(self.variables or self.resources) or "-"
        who = ",".join(self.threads) or "-"
        return f"[{self.kind.value}] {self.detector}: {where} ({who}) — {self.description}"


@dataclass
class Report:
    """Findings from running one detector over one trace."""

    detector: str
    findings: List[Finding] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        """Append a finding, de-duplicating identical reports."""
        if finding not in self.findings:
            self.findings.append(finding)

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)

    @property
    def clean(self) -> bool:
        """Whether the trace produced no findings."""
        return not self.findings

    def of_kind(self, kind: FindingKind) -> List[Finding]:
        """Findings of one problem class."""
        return [f for f in self.findings if f.kind is kind]

    def variables(self) -> List[str]:
        """All implicated variables across findings, sorted and unique."""
        out = set()
        for f in self.findings:
            out.update(f.variables)
        return sorted(out)

    def merged(self, other: "Report") -> "Report":
        """A new report containing both reports' findings."""
        combined = Report(detector=f"{self.detector}+{other.detector}")
        for f in self.findings:
            combined.add(f)
        for f in other.findings:
            combined.add(f)
        return combined

    def format(self) -> str:
        """Multi-line rendering for console output."""
        if self.clean:
            return f"{self.detector}: no findings"
        lines = [f"{self.detector}: {len(self.findings)} finding(s)"]
        lines.extend(f"  {f.summary()}" for f in self.findings)
        return "\n".join(lines)


class Detector(abc.ABC):
    """A streaming dynamic analysis over an execution's event stream.

    Subclasses implement the observer protocol — :meth:`begin`,
    :meth:`on_event`, :meth:`finish`, :meth:`copy_state` — and declare
    the shared-state components they read in :attr:`requires`.  The
    batch entry points (:meth:`analyse`, :meth:`analyse_many`) are
    compatibility shims over a one-detector
    :class:`~repro.detectors.pipeline.DetectorPipeline`.
    """

    #: Short stable name used in reports and coverage tables.
    name: str = "detector"

    #: Shared :class:`~repro.detectors.pipeline.AnalysisState` components
    #: this detector reads (subset of ``pipeline.COMPONENTS``); the
    #: pipeline maintains only the union its detectors require.
    requires: FrozenSet[str] = frozenset()

    # -- streaming observer protocol ---------------------------------------

    def begin(self) -> Any:
        """Fresh per-pass local state (any value; ``None`` if stateless)."""
        return None

    def on_event(
        self, event: ev.Event, state: "AnalysisState", local: Any, report: Report
    ) -> None:
        """Observe one event; read ``state``, mutate ``local``, add findings."""

    def finish(self, state: "AnalysisState", local: Any, report: Report) -> None:
        """End-of-trace analyses once the event stream is exhausted."""

    def copy_state(self, local: Any) -> Any:
        """Copy per-pass local state for a pipeline snapshot.

        The default deep-copies; detectors with hot local state override
        this with a cheaper structural copy.
        """
        return copy.deepcopy(local)

    # -- batch compatibility shims -----------------------------------------

    def analyse(self, trace: Trace) -> Report:
        """Analyse one recorded trace (shim over the streaming pipeline)."""
        from repro.detectors.pipeline import DetectorPipeline

        pipeline = DetectorPipeline([self])
        pipeline.run_trace(trace)
        return pipeline.reports[self.name]

    def analyse_many(self, traces: Iterable[Trace]) -> Report:
        """Analyse several traces and merge the findings (de-duplicated)."""
        from repro.detectors.pipeline import DetectorPipeline

        pipeline = DetectorPipeline([self])
        for trace in traces:
            pipeline.run_trace(trace)
        return pipeline.reports[self.name]
