"""Detector framework: common finding/report types and the detector ABC.

Every detector consumes a :class:`~repro.sim.trace.Trace` (never live
engine state) and produces a :class:`Report` of :class:`Finding`s.  Keeping
detectors trace-based means one recorded interleaving can be analysed by
every detector, and detector results are exactly reproducible.

The detector taxonomy mirrors the tool landscape the ASPLOS'08 study draws
implications for: data-race detectors (happens-before and lockset),
atomicity-violation detectors (AVIO-style), order-violation heuristics, and
deadlock detectors (lock-order graphs).  :mod:`repro.detectors.suite` runs
them side by side to reproduce the study's "which tool class can catch
which bug class" discussion.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

from repro.sim.trace import Trace

__all__ = ["FindingKind", "Finding", "Report", "Detector"]


class FindingKind(enum.Enum):
    """What class of concurrency problem a finding reports."""

    DATA_RACE = "data-race"
    ATOMICITY_VIOLATION = "atomicity-violation"
    ORDER_VIOLATION = "order-violation"
    DEADLOCK = "deadlock"
    POTENTIAL_DEADLOCK = "potential-deadlock"
    HANG = "hang"


@dataclass(frozen=True)
class Finding:
    """One reported problem.

    :param kind: problem class.
    :param detector: name of the reporting detector.
    :param description: human-readable explanation.
    :param threads: threads implicated, sorted.
    :param variables: shared variables implicated, sorted.
    :param resources: locks/other sync resources implicated, sorted.
    :param events: trace sequence numbers of the witnessing events.
    """

    kind: FindingKind
    detector: str
    description: str
    threads: Tuple[str, ...] = ()
    variables: Tuple[str, ...] = ()
    resources: Tuple[str, ...] = ()
    events: Tuple[int, ...] = ()

    def involves_variable(self, var: str) -> bool:
        """Whether ``var`` is implicated in this finding."""
        return var in self.variables

    def summary(self) -> str:
        """Compact one-line rendering."""
        where = ",".join(self.variables or self.resources) or "-"
        who = ",".join(self.threads) or "-"
        return f"[{self.kind.value}] {self.detector}: {where} ({who}) — {self.description}"


@dataclass
class Report:
    """Findings from running one detector over one trace."""

    detector: str
    findings: List[Finding] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        """Append a finding, de-duplicating identical reports."""
        if finding not in self.findings:
            self.findings.append(finding)

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)

    @property
    def clean(self) -> bool:
        """Whether the trace produced no findings."""
        return not self.findings

    def of_kind(self, kind: FindingKind) -> List[Finding]:
        """Findings of one problem class."""
        return [f for f in self.findings if f.kind is kind]

    def variables(self) -> List[str]:
        """All implicated variables across findings, sorted and unique."""
        out = set()
        for f in self.findings:
            out.update(f.variables)
        return sorted(out)

    def merged(self, other: "Report") -> "Report":
        """A new report containing both reports' findings."""
        combined = Report(detector=f"{self.detector}+{other.detector}")
        for f in self.findings:
            combined.add(f)
        for f in other.findings:
            combined.add(f)
        return combined

    def format(self) -> str:
        """Multi-line rendering for console output."""
        if self.clean:
            return f"{self.detector}: no findings"
        lines = [f"{self.detector}: {len(self.findings)} finding(s)"]
        lines.extend(f"  {f.summary()}" for f in self.findings)
        return "\n".join(lines)


class Detector(abc.ABC):
    """A dynamic analysis over one execution trace."""

    #: Short stable name used in reports and coverage tables.
    name: str = "detector"

    @abc.abstractmethod
    def analyse(self, trace: Trace) -> Report:
        """Analyse ``trace`` and return a report of findings."""

    def analyse_many(self, traces: Iterable[Trace]) -> Report:
        """Analyse several traces and merge the findings."""
        merged = Report(detector=self.name)
        for trace in traces:
            for finding in self.analyse(trace):
                merged.add(finding)
        return merged
