"""Eraser-style lockset data-race detection.

The lockset algorithm checks the *locking discipline*: every shared
variable should be consistently protected by at least one lock.  For each
variable it maintains a candidate set ``C(v)`` — the locks that have been
held on *every* access so far — and refines it by intersection.  An empty
candidate set on a shared-modified variable is a violation.

The variable state machine follows the original Eraser paper:

* ``VIRGIN`` — never accessed;
* ``EXCLUSIVE`` — accessed by one thread only (no refinement yet, so
  single-threaded initialisation does not raise alarms);
* ``SHARED`` — read by multiple threads after a write (refine ``C(v)`` but
  do not report: read-only sharing is benign);
* ``SHARED_MODIFIED`` — written by a thread other than the initialiser, or
  written while shared: refine and report when ``C(v)`` empties.

Compared with happens-before, lockset flags inconsistent locking even in
interleavings where the racy pair happened to be ordered — catching more
schedules of the same bug — at the price of false positives for programs
synchronised without locks (semaphore handoffs, barriers, spawn/join).
Those are *exactly* the order-violation fixes the study's Table 7
documents, so the detector suite reports both detectors side by side.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.detectors.base import Detector, Finding, FindingKind, Report
from repro.sim import events as ev
from repro.sim.trace import Trace

__all__ = ["LocksetDetector", "VariableState"]


class VariableState(enum.Enum):
    """Eraser's per-variable ownership states."""

    VIRGIN = "virgin"
    EXCLUSIVE = "exclusive"
    SHARED = "shared"
    SHARED_MODIFIED = "shared-modified"


@dataclass
class _VarTracking:
    state: VariableState = VariableState.VIRGIN
    owner: Optional[str] = None
    candidates: Optional[Set[str]] = None  # None = universe (not yet refined)
    reported: bool = False
    first_seq: Optional[int] = None


class LocksetDetector(Detector):
    """Locking-discipline checker (Eraser)."""

    name = "lockset"

    def analyse(self, trace: Trace) -> Report:
        report = Report(detector=self.name)
        held: Dict[str, Set[str]] = {}
        tracking: Dict[str, _VarTracking] = {}
        for event in trace:
            self._track_locks(event, held)
            # Hardware-atomic read-modify-writes are exempt from the locking
            # discipline (as in Eraser): they synchronise by themselves.
            if event.is_memory_access and not isinstance(event, ev.AtomicUpdateEvent):
                self._track_access(event, held, tracking, report)
        return report

    # -- lock tracking ----------------------------------------------------

    @staticmethod
    def _track_locks(event: ev.Event, held: Dict[str, Set[str]]) -> None:
        locks = held.setdefault(event.thread, set())
        if isinstance(event, ev.AcquireEvent):
            locks.add(event.lock)
        elif isinstance(event, ev.TryAcquireEvent) and event.success:
            locks.add(event.lock)
        elif isinstance(event, ev.ReleaseEvent):
            locks.discard(event.lock)
        elif isinstance(event, ev.WaitParkEvent):
            locks.discard(event.lock)
        elif isinstance(event, ev.WaitResumeEvent):
            locks.add(event.lock)
        elif isinstance(event, ev.RWAcquireEvent):
            locks.add(event.rwlock)
        elif isinstance(event, ev.RWReleaseEvent):
            locks.discard(event.rwlock)

    # -- access tracking -----------------------------------------------------

    def _track_access(
        self,
        event: ev.Event,
        held: Dict[str, Set[str]],
        tracking: Dict[str, _VarTracking],
        report: Report,
    ) -> None:
        var = event.var  # type: ignore[attr-defined]
        thread = event.thread
        is_write = isinstance(event, (ev.WriteEvent, ev.AtomicUpdateEvent))
        info = tracking.setdefault(var, _VarTracking())
        if info.first_seq is None:
            info.first_seq = event.seq

        if info.state is VariableState.VIRGIN:
            info.state = VariableState.EXCLUSIVE
            info.owner = thread
            return
        if info.state is VariableState.EXCLUSIVE:
            if thread == info.owner:
                return
            # Second thread arrives: start refining from its lockset.
            info.candidates = set(held.get(thread, ()))
            info.state = (
                VariableState.SHARED_MODIFIED if is_write else VariableState.SHARED
            )
            self._maybe_report(event, info, report)
            return
        # SHARED or SHARED_MODIFIED: refine on every access.
        assert info.candidates is not None
        info.candidates &= held.get(thread, set())
        if is_write:
            info.state = VariableState.SHARED_MODIFIED
        self._maybe_report(event, info, report)

    @staticmethod
    def _maybe_report(event: ev.Event, info: _VarTracking, report: Report) -> None:
        if (
            info.state is VariableState.SHARED_MODIFIED
            and info.candidates is not None
            and not info.candidates
            and not info.reported
        ):
            info.reported = True
            report.add(
                Finding(
                    kind=FindingKind.DATA_RACE,
                    detector=LocksetDetector.name,
                    description=(
                        f"no common lock protects {event.var!r}; candidate "
                        f"lockset emptied at access by {event.thread}"
                    ),
                    threads=(event.thread,),
                    variables=(event.var,),  # type: ignore[attr-defined]
                    events=(event.seq,),
                )
            )
