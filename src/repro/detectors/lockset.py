"""Eraser-style lockset data-race detection.

The lockset algorithm checks the *locking discipline*: every shared
variable should be consistently protected by at least one lock.  For each
variable it maintains a candidate set ``C(v)`` — the locks that have been
held on *every* access so far — and refines it by intersection.  An empty
candidate set on a shared-modified variable is a violation.

The variable state machine follows the original Eraser paper:

* ``VIRGIN`` — never accessed;
* ``EXCLUSIVE`` — accessed by one thread only (no refinement yet, so
  single-threaded initialisation does not raise alarms);
* ``SHARED`` — read by multiple threads after a write (refine ``C(v)`` but
  do not report: read-only sharing is benign);
* ``SHARED_MODIFIED`` — written by a thread other than the initialiser, or
  written while shared: refine and report when ``C(v)`` empties.

Compared with happens-before, lockset flags inconsistent locking even in
interleavings where the racy pair happened to be ordered — catching more
schedules of the same bug — at the price of false positives for programs
synchronised without locks (semaphore handoffs, barriers, spawn/join).
Those are *exactly* the order-violation fixes the study's Table 7
documents, so the detector suite reports both detectors side by side.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional, Set

from repro.detectors.base import Detector, Finding, FindingKind, Report
from repro.sim import events as ev

if TYPE_CHECKING:  # pragma: no cover
    from repro.detectors.pipeline import AnalysisState

__all__ = ["LocksetDetector", "VariableState"]


class VariableState(enum.Enum):
    """Eraser's per-variable ownership states."""

    VIRGIN = "virgin"
    EXCLUSIVE = "exclusive"
    SHARED = "shared"
    SHARED_MODIFIED = "shared-modified"


@dataclass
class _VarTracking:
    state: VariableState = VariableState.VIRGIN
    owner: Optional[str] = None
    candidates: Optional[Set[str]] = None  # None = universe (not yet refined)
    reported: bool = False
    first_seq: Optional[int] = None


class LocksetDetector(Detector):
    """Locking-discipline checker (Eraser)."""

    name = "lockset"
    requires = frozenset({"locks"})

    def begin(self) -> Dict[str, _VarTracking]:
        """Fresh per-variable state machines."""
        return {}

    def copy_state(self, local: Dict[str, _VarTracking]) -> Dict[str, _VarTracking]:
        """Structural copy of every variable's tracking record."""
        return {
            var: _VarTracking(
                state=info.state,
                owner=info.owner,
                candidates=(
                    None if info.candidates is None else set(info.candidates)
                ),
                reported=info.reported,
                first_seq=info.first_seq,
            )
            for var, info in local.items()
        }

    def on_event(
        self, event: ev.Event, state: "AnalysisState", local: Any, report: Report
    ) -> None:
        """Refine each accessed variable's candidate lockset."""
        # Hardware-atomic read-modify-writes are exempt from the locking
        # discipline (as in Eraser): they synchronise by themselves.
        if event.is_memory_access and not isinstance(event, ev.AtomicUpdateEvent):
            self._track_access(event, state, local, report)

    # -- access tracking -----------------------------------------------------

    def _track_access(
        self,
        event: ev.Event,
        state: "AnalysisState",
        tracking: Dict[str, _VarTracking],
        report: Report,
    ) -> None:
        var = event.var  # type: ignore[attr-defined]
        thread = event.thread
        is_write = isinstance(event, (ev.WriteEvent, ev.AtomicUpdateEvent))
        info = tracking.setdefault(var, _VarTracking())
        if info.first_seq is None:
            info.first_seq = event.seq

        if info.state is VariableState.VIRGIN:
            info.state = VariableState.EXCLUSIVE
            info.owner = thread
            return
        if info.state is VariableState.EXCLUSIVE:
            if thread == info.owner:
                return
            # Second thread arrives: start refining from its lockset.
            info.candidates = set(state.locks.held_by(thread))
            info.state = (
                VariableState.SHARED_MODIFIED if is_write else VariableState.SHARED
            )
            self._maybe_report(event, info, report)
            return
        # SHARED or SHARED_MODIFIED: refine on every access.
        assert info.candidates is not None
        info.candidates &= state.locks.held_by(thread)
        if is_write:
            info.state = VariableState.SHARED_MODIFIED
        self._maybe_report(event, info, report)

    @staticmethod
    def _maybe_report(event: ev.Event, info: _VarTracking, report: Report) -> None:
        if (
            info.state is VariableState.SHARED_MODIFIED
            and info.candidates is not None
            and not info.candidates
            and not info.reported
        ):
            info.reported = True
            report.add(
                Finding(
                    kind=FindingKind.DATA_RACE,
                    detector=LocksetDetector.name,
                    description=(
                        f"no common lock protects {event.var!r}; candidate "
                        f"lockset emptied at access by {event.thread}"
                    ),
                    threads=(event.thread,),
                    variables=(event.var,),  # type: ignore[attr-defined]
                    events=(event.seq,),
                )
            )
