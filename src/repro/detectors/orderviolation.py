"""Order-violation detection heuristics.

Order violations — the second-largest non-deadlock class in the study
(Finding 2) — occur when code assumes "A always executes before B" without
enforcing it.  Unlike races and atomicity violations they have no crisp
single-trace definition, so this detector implements the three signatures
that cover the study's order-violation examples:

1. **Use-before-initialisation** — a thread reads a variable and observes
   its declared initial value although another thread is the intended
   producer.  Two evidence levels keep this heuristic from flagging every
   consumer that correctly *handles* the not-yet-ready case (e.g. a
   condition-variable wait loop checking its flag under the lock):

   * the reading thread later **crashed** — the consumed value is
     presumed the cause; or
   * the read was **unprotected** (no lock held), the first write to the
     variable comes later from a different thread, and the reader never
     touches the variable again — it consumed the uninitialised value
     and moved on, the signature of the study's order-violation examples.

2. **Lost notification** — a ``Notify``/``NotifyAll`` wakes nobody, and a
   thread parks on that same condition *later* in the trace.  The waiter
   missed a wakeup that was meant for it; if no further notify arrives the
   trace ends in a hang.

3. **Terminal hang evidence** — the trace ends with a deadlock event whose
   blocked threads include condition-parked ones; reported as a hang
   finding with the conditions involved (complementary to the deadlock
   detector, which owns cyclic lock waits).

Initial values are needed for signature 1, so the detector takes the
program's ``initial`` mapping at construction; callers created from a
:class:`~repro.sim.Program` can use :meth:`OrderViolationDetector.for_program`.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.detectors.base import Detector, Finding, FindingKind, Report
from repro.sim import events as ev
from repro.sim.program import Program
from repro.sim.trace import Trace

__all__ = ["OrderViolationDetector"]


class OrderViolationDetector(Detector):
    """Use-before-init, lost-notification, and hang signatures."""

    name = "order-violation"

    def __init__(self, initial: Optional[Mapping[str, Any]] = None):
        self.initial: Dict[str, Any] = dict(initial or {})

    @classmethod
    def for_program(cls, program: Program) -> "OrderViolationDetector":
        """Detector wired with ``program``'s declared initial values."""
        return cls(initial=program.initial)

    def analyse(self, trace: Trace) -> Report:
        report = Report(detector=self.name)
        self._use_before_init(trace, report)
        self._lost_notifications(trace, report)
        self._terminal_hang(trace, report)
        return report

    # -- signature 1 ---------------------------------------------------------

    def _use_before_init(self, trace: Trace, report: Report) -> None:
        first_write: Dict[str, ev.Event] = {}
        crash_seq: Dict[str, int] = {}
        locks_held: Dict[str, set] = {}
        read_protection: Dict[int, bool] = {}
        last_touch: Dict[tuple, int] = {}
        for event in trace:
            held = locks_held.setdefault(event.thread, set())
            if isinstance(event, ev.AcquireEvent):
                held.add(event.lock)
            elif isinstance(event, ev.TryAcquireEvent) and event.success:
                held.add(event.lock)
            elif isinstance(event, (ev.ReleaseEvent, ev.WaitParkEvent)):
                held.discard(event.lock)
            elif isinstance(event, ev.WaitResumeEvent):
                held.add(event.lock)
            elif isinstance(event, (ev.WriteEvent, ev.AtomicUpdateEvent)):
                first_write.setdefault(event.var, event)
                last_touch[(event.thread, event.var)] = event.seq
            elif isinstance(event, ev.ReadEvent):
                read_protection[event.seq] = bool(held)
                last_touch[(event.thread, event.var)] = event.seq
            elif isinstance(event, ev.ThreadCrashEvent):
                crash_seq[event.thread] = event.seq

        for event in trace:
            if not isinstance(event, ev.ReadEvent):
                continue
            var = event.var
            if var not in self.initial:
                continue
            if not _same_value(event.value, self.initial[var]):
                continue
            # Only sentinel-like initial values (None/False) read as
            # "uninitialised"; a truthy initial value is a real resource,
            # and reading it before some *later* write (e.g. teardown) is
            # the intended order, not a violation.
            if self.initial[var] is not None and self.initial[var] is not False:
                continue
            writer = first_write.get(var)
            if writer is not None and writer.thread == event.thread:
                continue
            crashed_after = crash_seq.get(event.thread, -1) > event.seq
            write_is_later = writer is not None and event.seq < writer.seq
            consumed_and_left = (
                write_is_later
                and not read_protection.get(event.seq, False)
                and last_touch.get((event.thread, var)) == event.seq
            )
            if not (crashed_after or consumed_and_left):
                continue
            implicated = {event.thread}
            evidence = [event.seq]
            if writer is not None:
                implicated.add(writer.thread)
                evidence.append(writer.seq)
            why = (
                "the reading thread crashed afterwards"
                if crashed_after
                else f"{writer.thread}'s initialising write came later"
            )
            report.add(
                Finding(
                    kind=FindingKind.ORDER_VIOLATION,
                    detector=self.name,
                    description=(
                        f"{event.thread} read {var!r} and observed its "
                        f"uninitialised value {event.value!r}; {why}"
                    ),
                    threads=tuple(sorted(implicated)),
                    variables=(var,),
                    events=tuple(sorted(evidence)),
                )
            )

    # -- signature 2 -----------------------------------------------------------

    def _lost_notifications(self, trace: Trace, report: Report) -> None:
        for event in trace:
            if not isinstance(event, ev.NotifyEvent) or event.woken:
                continue
            later_parks = [
                e
                for e in trace
                if isinstance(e, ev.WaitParkEvent)
                and e.cond == event.cond
                and e.seq > event.seq
            ]
            for park in later_parks:
                resumed = any(
                    isinstance(e, ev.WaitResumeEvent)
                    and e.thread == park.thread
                    and e.cond == park.cond
                    and e.seq > park.seq
                    for e in trace
                )
                if not resumed:
                    report.add(
                        Finding(
                            kind=FindingKind.ORDER_VIOLATION,
                            detector=self.name,
                            description=(
                                f"{park.thread} waited on {event.cond!r} after "
                                f"{event.thread}'s notification was lost and "
                                f"never resumed"
                            ),
                            threads=tuple(sorted({event.thread, park.thread})),
                            resources=(event.cond,),
                            events=(event.seq, park.seq),
                        )
                    )

    # -- signature 3 ----------------------------------------------------------------

    def _terminal_hang(self, trace: Trace, report: Report) -> None:
        deadlock = trace.deadlock()
        if deadlock is None:
            return
        cond_blocked = [
            (thread, waiting)
            for thread, waiting in deadlock.blocked
            if waiting.startswith("cond:") or waiting.startswith("sem:")
        ]
        if not cond_blocked:
            return
        threads = tuple(sorted(t for t, _ in cond_blocked))
        resources = tuple(sorted(w.split(":", 1)[1] for _, w in cond_blocked))
        report.add(
            Finding(
                kind=FindingKind.HANG,
                detector=self.name,
                description=(
                    "execution ended with threads parked forever: "
                    + ", ".join(f"{t} on {w}" for t, w in cond_blocked)
                ),
                threads=threads,
                resources=resources,
                events=(deadlock.seq,),
            )
        )


def _same_value(a: Any, b: Any) -> bool:
    try:
        return bool(a == b)
    except Exception:
        return a is b
