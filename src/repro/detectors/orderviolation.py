"""Order-violation detection heuristics.

Order violations — the second-largest non-deadlock class in the study
(Finding 2) — occur when code assumes "A always executes before B" without
enforcing it.  Unlike races and atomicity violations they have no crisp
single-trace definition, so this detector implements the three signatures
that cover the study's order-violation examples:

1. **Use-before-initialisation** — a thread reads a variable and observes
   its declared initial value although another thread is the intended
   producer.  Two evidence levels keep this heuristic from flagging every
   consumer that correctly *handles* the not-yet-ready case (e.g. a
   condition-variable wait loop checking its flag under the lock):

   * the reading thread later **crashed** — the consumed value is
     presumed the cause; or
   * the read was **unprotected** (no lock held), the first write to the
     variable comes later from a different thread, and the reader never
     touches the variable again — it consumed the uninitialised value
     and moved on, the signature of the study's order-violation examples.

2. **Lost notification** — a ``Notify``/``NotifyAll`` wakes nobody, and a
   thread parks on that same condition *later* in the trace.  The waiter
   missed a wakeup that was meant for it; if no further notify arrives the
   trace ends in a hang.

3. **Terminal hang evidence** — the trace ends with a deadlock event whose
   blocked threads include condition-parked ones; reported as a hang
   finding with the conditions involved (complementary to the deadlock
   detector, which owns cyclic lock waits).

All three signatures need whole-trace evidence ("the write came later",
"no resume ever arrived"), so the streaming observer records candidate
events during the pass and reports from :meth:`Detector.finish`.  Lock
protection of reads comes from the pipeline's shared lock tracker.

Initial values are needed for signature 1, so the detector takes the
program's ``initial`` mapping at construction; callers created from a
:class:`~repro.sim.Program` can use :meth:`OrderViolationDetector.for_program`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Tuple

from repro.detectors.base import Detector, Finding, FindingKind, Report
from repro.sim import events as ev
from repro.sim.program import Program

if TYPE_CHECKING:  # pragma: no cover
    from repro.detectors.pipeline import AnalysisState

__all__ = ["OrderViolationDetector"]


class _OrderLocal:
    """Per-pass evidence records (events are immutable, lists copy shallow)."""

    __slots__ = (
        "first_write",
        "crash_seq",
        "last_touch",
        "reads",
        "notifies",
        "parks",
        "resumes",
    )

    def __init__(self) -> None:
        # var -> first initialising write; thread -> crash seq.
        self.first_write: Dict[str, ev.Event] = {}
        self.crash_seq: Dict[str, int] = {}
        # (thread, var) -> seq of the thread's last access to var.
        self.last_touch: Dict[Tuple[str, str], int] = {}
        # Reads of declared-initial variables, with lock-protection flag.
        self.reads: List[Tuple[ev.ReadEvent, bool]] = []
        self.notifies: List[ev.NotifyEvent] = []
        self.parks: List[ev.WaitParkEvent] = []
        self.resumes: List[ev.WaitResumeEvent] = []

    def copy(self) -> "_OrderLocal":
        dup = _OrderLocal.__new__(_OrderLocal)
        dup.first_write = dict(self.first_write)
        dup.crash_seq = dict(self.crash_seq)
        dup.last_touch = dict(self.last_touch)
        dup.reads = list(self.reads)
        dup.notifies = list(self.notifies)
        dup.parks = list(self.parks)
        dup.resumes = list(self.resumes)
        return dup


class OrderViolationDetector(Detector):
    """Use-before-init, lost-notification, and hang signatures."""

    name = "order-violation"
    requires = frozenset({"locks"})

    def __init__(self, initial: Optional[Mapping[str, Any]] = None):
        self.initial: Dict[str, Any] = dict(initial or {})

    @classmethod
    def for_program(cls, program: Program) -> "OrderViolationDetector":
        """Detector wired with ``program``'s declared initial values."""
        return cls(initial=program.initial)

    def begin(self) -> _OrderLocal:
        """Fresh per-pass evidence records."""
        return _OrderLocal()

    def copy_state(self, local: _OrderLocal) -> _OrderLocal:
        """Structural copy of the evidence records."""
        return local.copy()

    def on_event(
        self, event: ev.Event, state: "AnalysisState", local: Any, report: Report
    ) -> None:
        """Record the evidence each signature needs at finish time."""
        if isinstance(event, (ev.WriteEvent, ev.AtomicUpdateEvent)):
            local.first_write.setdefault(event.var, event)
            local.last_touch[(event.thread, event.var)] = event.seq
        elif isinstance(event, ev.ReadEvent):
            local.last_touch[(event.thread, event.var)] = event.seq
            if event.var in self.initial:
                protected = bool(state.locks.mutexes_held(event.thread))
                local.reads.append((event, protected))
        elif isinstance(event, ev.ThreadCrashEvent):
            local.crash_seq[event.thread] = event.seq
        elif isinstance(event, ev.NotifyEvent):
            if not event.woken:
                local.notifies.append(event)
        elif isinstance(event, ev.WaitParkEvent):
            local.parks.append(event)
        elif isinstance(event, ev.WaitResumeEvent):
            local.resumes.append(event)

    def finish(self, state: "AnalysisState", local: Any, report: Report) -> None:
        """Run the three signatures over the recorded evidence."""
        self._use_before_init(local, report)
        self._lost_notifications(local, report)
        self._terminal_hang(state.deadlock, report)

    # -- signature 1 ---------------------------------------------------------

    def _use_before_init(self, local: _OrderLocal, report: Report) -> None:
        for event, protected in local.reads:
            var = event.var
            if not _same_value(event.value, self.initial[var]):
                continue
            # Only sentinel-like initial values (None/False) read as
            # "uninitialised"; a truthy initial value is a real resource,
            # and reading it before some *later* write (e.g. teardown) is
            # the intended order, not a violation.
            if self.initial[var] is not None and self.initial[var] is not False:
                continue
            writer = local.first_write.get(var)
            if writer is not None and writer.thread == event.thread:
                continue
            crashed_after = local.crash_seq.get(event.thread, -1) > event.seq
            write_is_later = writer is not None and event.seq < writer.seq
            consumed_and_left = (
                write_is_later
                and not protected
                and local.last_touch.get((event.thread, var)) == event.seq
            )
            if not (crashed_after or consumed_and_left):
                continue
            implicated = {event.thread}
            evidence = [event.seq]
            if writer is not None:
                implicated.add(writer.thread)
                evidence.append(writer.seq)
            why = (
                "the reading thread crashed afterwards"
                if crashed_after
                else f"{writer.thread}'s initialising write came later"
            )
            report.add(
                Finding(
                    kind=FindingKind.ORDER_VIOLATION,
                    detector=self.name,
                    description=(
                        f"{event.thread} read {var!r} and observed its "
                        f"uninitialised value {event.value!r}; {why}"
                    ),
                    threads=tuple(sorted(implicated)),
                    variables=(var,),
                    events=tuple(sorted(evidence)),
                )
            )

    # -- signature 2 -----------------------------------------------------------

    def _lost_notifications(self, local: _OrderLocal, report: Report) -> None:
        for event in local.notifies:
            for park in local.parks:
                if park.cond != event.cond or park.seq <= event.seq:
                    continue
                resumed = any(
                    resume.thread == park.thread
                    and resume.cond == park.cond
                    and resume.seq > park.seq
                    for resume in local.resumes
                )
                if not resumed:
                    report.add(
                        Finding(
                            kind=FindingKind.ORDER_VIOLATION,
                            detector=self.name,
                            description=(
                                f"{park.thread} waited on {event.cond!r} after "
                                f"{event.thread}'s notification was lost and "
                                f"never resumed"
                            ),
                            threads=tuple(sorted({event.thread, park.thread})),
                            resources=(event.cond,),
                            events=(event.seq, park.seq),
                        )
                    )

    # -- signature 3 ----------------------------------------------------------------

    def _terminal_hang(
        self, deadlock: Optional[ev.DeadlockEvent], report: Report
    ) -> None:
        if deadlock is None:
            return
        cond_blocked = [
            (thread, waiting)
            for thread, waiting in deadlock.blocked
            if waiting.startswith("cond:") or waiting.startswith("sem:")
        ]
        if not cond_blocked:
            return
        threads = tuple(sorted(t for t, _ in cond_blocked))
        resources = tuple(sorted(w.split(":", 1)[1] for _, w in cond_blocked))
        report.add(
            Finding(
                kind=FindingKind.HANG,
                detector=self.name,
                description=(
                    "execution ended with threads parked forever: "
                    + ", ".join(f"{t} on {w}" for t, w in cond_blocked)
                ),
                threads=threads,
                resources=resources,
                events=(deadlock.seq,),
            )
        )


def _same_value(a: Any, b: Any) -> bool:
    try:
        return bool(a == b)
    except Exception:
        return a is b
