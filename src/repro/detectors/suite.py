"""Run every detector class side by side, the way the study compares them.

The ASPLOS'08 implications sections argue about *tool coverage*: race
detectors cannot see all atomicity violations (a bug can be atomicity-
broken yet race-free under lock-protected accesses), atomicity detectors
miss order violations and multi-variable bugs, and deadlock detection is a
separate analysis entirely.  :class:`DetectorSuite` makes those statements
measurable on our executable kernels: give it traces, get a per-detector
report and a coverage map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.detectors.atomicity import AtomicityDetector
from repro.obs import metrics as obs_metrics
from repro.detectors.base import Detector, FindingKind, Report
from repro.detectors.deadlock import DeadlockDetector
from repro.detectors.happensbefore import HappensBeforeDetector
from repro.detectors.lockset import LocksetDetector
from repro.detectors.orderviolation import OrderViolationDetector
from repro.sim.engine import RunResult, run_program
from repro.sim.explorer import _make_explorer
from repro.sim.program import Program
from repro.sim.scheduler import CooperativeScheduler
from repro.sim.trace import Trace

__all__ = ["DetectorSuite", "SuiteResult", "default_detectors"]


def default_detectors(program: Optional[Program] = None) -> List[Detector]:
    """The standard detector battery (order-violation needs the program)."""
    order = (
        OrderViolationDetector.for_program(program)
        if program is not None
        else OrderViolationDetector()
    )
    return [
        HappensBeforeDetector(),
        LocksetDetector(),
        AtomicityDetector(),
        order,
        DeadlockDetector(),
    ]


@dataclass
class SuiteResult:
    """Per-detector reports for one set of traces."""

    reports: Dict[str, Report] = field(default_factory=dict)

    def report(self, detector: str) -> Report:
        """The report of one detector by name."""
        return self.reports[detector]

    def flagged_by(self) -> List[str]:
        """Names of detectors that produced at least one finding."""
        return sorted(name for name, report in self.reports.items() if not report.clean)

    def kinds_found(self) -> List[FindingKind]:
        """All finding kinds across detectors, unique and ordered by value."""
        kinds = {f.kind for report in self.reports.values() for f in report}
        return sorted(kinds, key=lambda k: k.value)

    @property
    def clean(self) -> bool:
        """No detector found anything."""
        return all(report.clean for report in self.reports.values())

    def format(self) -> str:
        """Console-ready rendering of every report."""
        return "\n".join(
            self.reports[name].format() for name in sorted(self.reports)
        )


def _record_suite(result: SuiteResult) -> SuiteResult:
    """Tally per-detector verdicts and findings into the metrics registry.

    One ``detector.verdicts`` increment per detector per analysis
    (labelled clean/flagged) plus one ``detector.findings`` increment
    per finding (labelled by kind) — the coverage-matrix evidence in
    countable form.  No-op while metrics are disabled.
    """
    registry = obs_metrics.active()
    if registry is not None:
        for name, report in result.reports.items():
            registry.inc("detector.analyses", 1, detector=name)
            registry.inc(
                "detector.verdicts", 1, detector=name,
                verdict="clean" if report.clean else "flagged",
            )
            for finding in report:
                registry.inc(
                    "detector.findings", 1, detector=name,
                    kind=finding.kind.value,
                )
    return result


class DetectorSuite:
    """A battery of detectors applied to one or more traces."""

    def __init__(self, detectors: Optional[Iterable[Detector]] = None):
        self.detectors: List[Detector] = (
            list(detectors) if detectors is not None else default_detectors()
        )

    @classmethod
    def for_program(cls, program: Program) -> "DetectorSuite":
        """Suite with program-aware detectors wired up."""
        return cls(default_detectors(program))

    def analyse(self, trace: Trace) -> SuiteResult:
        """Run every detector on one trace."""
        return _record_suite(SuiteResult(
            reports={d.name: d.analyse(trace) for d in self.detectors}
        ))

    def analyse_many(self, traces: Iterable[Trace]) -> SuiteResult:
        """Run every detector across several traces, merging findings."""
        trace_list = list(traces)
        return _record_suite(SuiteResult(
            reports={d.name: d.analyse_many(trace_list) for d in self.detectors}
        ))

    def analyse_program(
        self,
        program: Program,
        predicate: Optional[Callable[[RunResult], bool]] = None,
        max_schedules: int = 20000,
        workers: Optional[int] = None,
        keep_matches: int = 16,
    ) -> SuiteResult:
        """Explore the program's schedules, then analyse the interesting runs.

        Explores up to ``max_schedules`` interleavings (sharded across a
        process pool when ``workers > 1``), collects the traces of runs
        matching ``predicate`` (default: failing runs) up to
        ``keep_matches``, and feeds them through :meth:`analyse_many`.  If
        no run matches, analyses the single cooperative-schedule baseline
        run instead, so detectors still see one representative trace.
        """
        explorer = _make_explorer(
            program, max_schedules, 5000, None, workers, False,
            keep_matches=keep_matches,
        )
        result = explorer.explore(predicate=predicate)
        traces = [run.trace for run in result.matching]
        if not traces:
            baseline = run_program(program, CooperativeScheduler())
            traces = [baseline.trace]
        return self.analyse_many(traces)
