"""Run every detector class side by side, the way the study compares them.

The ASPLOS'08 implications sections argue about *tool coverage*: race
detectors cannot see all atomicity violations (a bug can be atomicity-
broken yet race-free under lock-protected accesses), atomicity detectors
miss order violations and multi-variable bugs, and deadlock detection is a
separate analysis entirely.  :class:`DetectorSuite` makes those statements
measurable on our executable kernels: give it traces, get a per-detector
report and a coverage map.

Two execution modes share one API:

* ``streaming=True`` runs the whole battery through a single shared
  :class:`~repro.detectors.pipeline.DetectorPipeline` pass per trace —
  each event is dispatched once, not once per detector.
* :meth:`DetectorSuite.analyse_online` goes further and analyses *during*
  exploration: the explorer feeds events to the pipeline as the engine
  executes, reusing analysis state along shared schedule prefixes.

:meth:`DetectorSuite.analyse_static` closes the loop with the static
layer: it runs :func:`repro.static.analyse` (zero schedules) next to a
dynamic exploration of the same program and scores the static
predictions against the dynamically confirmed findings — the
precision/recall evidence behind ``repro static``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.detectors.atomicity import AtomicityDetector
from repro.obs import metrics as obs_metrics
from repro.obs import runlog as obs_runlog
from repro.detectors.base import Detector, FindingKind, Report
from repro.detectors.deadlock import DeadlockDetector
from repro.detectors.happensbefore import HappensBeforeDetector
from repro.detectors.lockset import LocksetDetector
from repro.detectors.orderviolation import OrderViolationDetector
from repro.detectors.pipeline import DetectorPipeline
from repro.sim.engine import RunResult, run_program
from repro.sim.explorer import ExplorationResult, make_explorer
from repro.sim.program import Program
from repro.sim.scheduler import CooperativeScheduler
from repro.sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - layering: static imports stay lazy
    from repro.static.lockset import StaticCandidate
    from repro.static.report import StaticReport

__all__ = [
    "DetectorSuite",
    "StaticComparison",
    "SuiteResult",
    "default_detectors",
]


def default_detectors(program: Optional[Program] = None) -> List[Detector]:
    """The standard detector battery (order-violation needs the program)."""
    order = (
        OrderViolationDetector.for_program(program)
        if program is not None
        else OrderViolationDetector()
    )
    return [
        HappensBeforeDetector(),
        LocksetDetector(),
        AtomicityDetector(),
        order,
        DeadlockDetector(),
    ]


@dataclass
class SuiteResult:
    """Per-detector reports for one set of traces."""

    reports: Dict[str, Report] = field(default_factory=dict)
    #: For :meth:`DetectorSuite.analyse_online`: the exploration result
    #: the findings came from (pipeline counters live on
    #: ``exploration.pipeline_stats``).  ``None`` for trace-based modes.
    exploration: Optional[ExplorationResult] = None

    def report(self, detector: str) -> Report:
        """The report of one detector by name."""
        return self.reports[detector]

    def flagged_by(self) -> List[str]:
        """Names of detectors that produced at least one finding."""
        return sorted(name for name, report in self.reports.items() if not report.clean)

    def kinds_found(self) -> List[FindingKind]:
        """All finding kinds across detectors, unique and ordered by value."""
        kinds = {f.kind for report in self.reports.values() for f in report}
        return sorted(kinds, key=lambda k: k.value)

    @property
    def clean(self) -> bool:
        """No detector found anything."""
        return all(report.clean for report in self.reports.values())

    def format(self) -> str:
        """Console-ready rendering of every report."""
        return "\n".join(
            self.reports[name].format() for name in sorted(self.reports)
        )


#: Static candidate kinds a dynamic finding kind may be matched against.
#: Deliberately same-class: a dynamic race only counts as predicted by a
#: static *race* candidate, never by e.g. an atomicity candidate on the
#: same variable — agreement must hold per bug class, as in the study's
#: per-tool coverage tables.
_STATIC_KINDS = {
    FindingKind.DATA_RACE: frozenset({"data-race"}),
    FindingKind.ATOMICITY_VIOLATION: frozenset({"atomicity-violation"}),
    FindingKind.ORDER_VIOLATION: frozenset({"order-violation"}),
    FindingKind.DEADLOCK: frozenset({"deadlock"}),
    FindingKind.POTENTIAL_DEADLOCK: frozenset({"deadlock"}),
}


def _static_scope(finding) -> bool:
    """Whether a dynamic finding is in the static analyzer's scope.

    Races, atomicity violations, and order violations are matched by
    shared variable, so they need one; deadlocks are matched by resource
    set.  Out of scope stay (a) ``HANG`` — a liveness verdict about one
    executed schedule, which no zero-schedule analysis can phrase — and
    (b) order findings without variables (the lost-notification shape is
    reported against a condvar resource; statically it surfaces as a
    race/order candidate on the guarded *variable* instead).
    """
    kinds = _STATIC_KINDS.get(finding.kind)
    if kinds is None:
        return False
    if finding.kind in (FindingKind.DEADLOCK, FindingKind.POTENTIAL_DEADLOCK):
        return bool(finding.resources)
    return bool(finding.variables)


def _predicts(candidate: "StaticCandidate", finding) -> bool:
    """Whether one active static candidate predicts one dynamic finding."""
    if candidate.kind not in _STATIC_KINDS[finding.kind]:
        return False
    if finding.kind in (FindingKind.DEADLOCK, FindingKind.POTENTIAL_DEADLOCK):
        found = frozenset(finding.resources)
        predicted = frozenset(candidate.resources)
        # Subset either way: a dynamic deadlock names the cycle actually
        # hit, a static candidate the cycle in the graph — a three-lock
        # static cycle covers the two-lock deadlock a schedule realises.
        return bool(predicted) and (predicted <= found or found <= predicted)
    return bool(set(candidate.variables) & set(finding.variables))


@dataclass
class StaticComparison:
    """Static predictions scored against dynamically confirmed findings.

    ``confirmed`` holds the in-scope dynamic findings (de-duplicated on
    ``(kind, variables, resources)`` across detectors); ``out_of_scope``
    the rest.  ``recalled``/``missed`` partition ``confirmed`` by whether
    an active static candidate of the same bug class predicts them;
    ``confirmed_candidates``/``unconfirmed_candidates`` partition the
    active static candidates the other way around.
    """

    program: str
    static: "StaticReport"
    dynamic: SuiteResult
    confirmed: List[Any] = field(default_factory=list)
    out_of_scope: List[Any] = field(default_factory=list)
    recalled: List[Any] = field(default_factory=list)
    missed: List[Any] = field(default_factory=list)
    confirmed_candidates: List["StaticCandidate"] = field(default_factory=list)
    unconfirmed_candidates: List["StaticCandidate"] = field(default_factory=list)

    @property
    def precision(self) -> float:
        """Fraction of active static candidates dynamically confirmed."""
        predicted = len(self.confirmed_candidates) + len(self.unconfirmed_candidates)
        return len(self.confirmed_candidates) / predicted if predicted else 1.0

    @property
    def recall(self) -> float:
        """Fraction of confirmed dynamic findings statically predicted."""
        return len(self.recalled) / len(self.confirmed) if self.confirmed else 1.0

    @property
    def sound(self) -> bool:
        """Every confirmed dynamic finding was statically predicted."""
        return not self.missed

    def format(self) -> str:
        """Console-ready rendering of the cross-check."""
        lines = [
            f"static vs dynamic on {self.program!r}: "
            f"precision {self.precision:.0%}, recall {self.recall:.0%} "
            f"({len(self.confirmed)} confirmed, "
            f"{len(self.confirmed_candidates)}/"
            f"{len(self.confirmed_candidates) + len(self.unconfirmed_candidates)}"
            " predictions confirmed)"
        ]
        for finding in self.recalled:
            lines.append(f"  predicted+confirmed: {finding.summary()}")
        for finding in self.missed:
            lines.append(f"  MISSED statically:   {finding.summary()}")
        for cand in self.unconfirmed_candidates:
            lines.append(
                f"  unconfirmed prediction: [{cand.kind}] {cand.description}"
            )
        for finding in self.out_of_scope:
            lines.append(f"  out of static scope: {finding.summary()}")
        if self.static.approximate:
            lines.append("  note: static summaries are approximate")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        """JSON-ready dict (CLI ``--json`` and the runlog record body)."""
        def finding_dict(finding) -> Dict[str, Any]:
            return {
                "kind": finding.kind.value,
                "detector": finding.detector,
                "variables": list(finding.variables),
                "resources": list(finding.resources),
            }

        return {
            "program": self.program,
            "precision": self.precision,
            "recall": self.recall,
            "sound": self.sound,
            "confirmed": [finding_dict(f) for f in self.confirmed],
            "missed": [finding_dict(f) for f in self.missed],
            "out_of_scope": [finding_dict(f) for f in self.out_of_scope],
            "unconfirmed_candidates": [
                {"kind": c.kind, "description": c.description}
                for c in self.unconfirmed_candidates
            ],
            "static": self.static.to_json(),
        }


def _dedup_findings(result: SuiteResult) -> List[Any]:
    """All findings across detectors, one per (kind, variables, resources).

    The battery reports the same underlying problem through several
    detectors (happens-before and lockset both flag a race); scoring
    recall per *problem* rather than per *report* keeps one miss from
    counting twice.
    """
    seen: Dict[Tuple[Any, ...], Any] = {}
    for name in sorted(result.reports):
        for finding in result.reports[name]:
            key = (finding.kind, finding.variables, finding.resources)
            seen.setdefault(key, finding)
    return list(seen.values())


def _record_suite(result: SuiteResult) -> SuiteResult:
    """Tally per-detector verdicts and findings into the metrics registry.

    One ``detector.verdicts`` increment per detector per analysis
    (labelled clean/flagged) plus one ``detector.findings`` increment
    per finding (labelled by kind) — the coverage-matrix evidence in
    countable form.  No-op while metrics are disabled.
    """
    registry = obs_metrics.active()
    if registry is not None:
        for name, report in result.reports.items():
            registry.inc("detector.analyses", 1, detector=name)
            registry.inc(
                "detector.verdicts", 1, detector=name,
                verdict="clean" if report.clean else "flagged",
            )
            for finding in report:
                registry.inc(
                    "detector.findings", 1, detector=name,
                    kind=finding.kind.value,
                )
    return result


def _record_static_comparison(
    comparison: StaticComparison, wall_seconds: float
) -> None:
    """Metrics + runlog record for one static-vs-dynamic cross-check."""
    registry = obs_metrics.active()
    if registry is not None:
        registry.inc("static.compare.runs", 1)
        registry.inc("static.compare.confirmed", len(comparison.confirmed))
        registry.inc("static.compare.recalled", len(comparison.recalled))
        registry.inc("static.compare.missed", len(comparison.missed))
        registry.inc(
            "static.compare.unconfirmed",
            len(comparison.unconfirmed_candidates),
        )
    if obs_runlog.active_runlog() is not None:
        obs_runlog.emit(
            "suite.analyse_static",
            program=comparison.program,
            precision=comparison.precision,
            recall=comparison.recall,
            sound=comparison.sound,
            confirmed=len(comparison.confirmed),
            missed=len(comparison.missed),
            out_of_scope=len(comparison.out_of_scope),
            unconfirmed=len(comparison.unconfirmed_candidates),
            wall_seconds=wall_seconds,
        )


class DetectorSuite:
    """A battery of detectors applied to one or more traces.

    ``streaming=True`` analyses each trace in one shared pipeline pass
    (one event dispatch feeds every detector) instead of one pass per
    detector; findings are identical either way.
    """

    def __init__(
        self,
        detectors: Optional[Iterable[Detector]] = None,
        streaming: bool = False,
    ):
        self.detectors: List[Detector] = (
            list(detectors) if detectors is not None else default_detectors()
        )
        self.streaming = streaming

    @classmethod
    def for_program(
        cls, program: Program, streaming: bool = False
    ) -> "DetectorSuite":
        """Suite with program-aware detectors wired up."""
        return cls(default_detectors(program), streaming=streaming)

    def _pipeline(self) -> DetectorPipeline:
        """A fresh shared pipeline over this suite's detectors."""
        return DetectorPipeline(self.detectors)

    def analyse(self, trace: Trace) -> SuiteResult:
        """Run every detector on one trace."""
        return self.analyse_many([trace])

    def analyse_many(self, traces: Iterable[Trace]) -> SuiteResult:
        """Run every detector across several traces, merging findings."""
        trace_list = list(traces)
        if self.streaming:
            pipeline = self._pipeline()
            for trace in trace_list:
                pipeline.run_trace(trace)
            pipeline.record_metrics()
            return _record_suite(SuiteResult(reports=dict(pipeline.reports)))
        return _record_suite(SuiteResult(
            reports={d.name: d.analyse_many(trace_list) for d in self.detectors}
        ))

    def analyse_program(
        self,
        program: Program,
        predicate: Optional[Callable[[RunResult], bool]] = None,
        max_schedules: int = 20000,
        workers: Optional[int] = None,
        keep_matches: int = 16,
        reduction: Optional[str] = None,
    ) -> SuiteResult:
        """Explore the program's schedules, then analyse the interesting runs.

        Explores up to ``max_schedules`` interleavings (sharded across a
        process pool when ``workers > 1``), collects the traces of runs
        matching ``predicate`` (default: failing runs) up to
        ``keep_matches``, and feeds them through :meth:`analyse_many`.  If
        no run matches, analyses the single cooperative-schedule baseline
        run instead, so detectors still see one representative trace.
        ``reduction`` prunes schedules equivalent up to swapping
        independent operations (see
        :func:`~repro.sim.explorer.make_explorer`) — sound here because
        at least one representative of every outcome still runs — and
        composes with ``workers`` (``reduction="dpor"`` selects the
        speculative parallel DPOR search).
        """
        explorer = make_explorer(
            program, max_schedules, 5000, None, workers, False,
            keep_matches=keep_matches, reduction=reduction,
        )
        result = explorer.explore(predicate=predicate)
        traces = [run.trace for run in result.matching]
        if not traces:
            baseline = run_program(program, CooperativeScheduler())
            traces = [baseline.trace]
        return self.analyse_many(traces)

    def analyse_static(
        self,
        program: Program,
        predicate: Optional[Callable[[RunResult], bool]] = None,
        max_schedules: int = 20000,
        workers: Optional[int] = None,
        keep_matches: int = 16,
        reduction: Optional[str] = None,
    ) -> StaticComparison:
        """Score static predictions against dynamically confirmed findings.

        Runs :func:`repro.static.analyse` over the program (zero
        schedules), then a dynamic :meth:`analyse_program` pass, and
        matches each confirmed dynamic finding against the active static
        candidates of the *same* bug class — by shared variable for
        races / atomicity / order violations, by resource-set inclusion
        for deadlocks.  The result carries both error directions:
        ``missed`` (dynamic findings no static candidate predicts —
        unsoundness over this program) and ``unconfirmed_candidates``
        (static predictions exploration never confirmed — imprecision).
        """
        from repro.static import analyse as static_analyse

        start = perf_counter()
        static = static_analyse(program)
        dynamic = self.analyse_program(
            program,
            predicate=predicate,
            max_schedules=max_schedules,
            workers=workers,
            keep_matches=keep_matches,
            reduction=reduction,
        )
        comparison = StaticComparison(
            program=program.name, static=static, dynamic=dynamic,
        )
        for finding in _dedup_findings(dynamic):
            if not _static_scope(finding):
                comparison.out_of_scope.append(finding)
                continue
            comparison.confirmed.append(finding)
            predicted = any(
                _predicts(cand, finding) for cand in static.active()
            )
            (comparison.recalled if predicted else comparison.missed).append(
                finding
            )
        for cand in static.active():
            bucket = (
                comparison.confirmed_candidates
                if any(_predicts(cand, f) for f in comparison.confirmed)
                else comparison.unconfirmed_candidates
            )
            bucket.append(cand)
        _record_static_comparison(comparison, perf_counter() - start)
        return comparison

    def analyse_online(
        self,
        program: Program,
        predicate: Optional[Callable[[RunResult], bool]] = None,
        max_schedules: int = 20000,
        max_steps: int = 5000,
        preemption_bound: Optional[int] = None,
        workers: Optional[int] = None,
        reduction: Optional[str] = None,
    ) -> SuiteResult:
        """Analyse *while* exploring: one streamed pass over every schedule.

        A shared detector pipeline rides along with the exploration
        (sharded across processes when ``workers > 1``), observing every
        executed event; analysis state is snapshotted at branch points
        and restored for sibling schedules, so shared prefixes are
        analysed once instead of once per schedule.  Unlike
        :meth:`analyse_program` this covers **every** explored
        interleaving, not just the ``keep_matches`` retained ones —
        without retaining any traces.

        ``predicate`` only controls the exploration's match bookkeeping
        (default: nothing matches); detection does not depend on it.
        With ``reduction`` the pipeline observes one representative per
        equivalence class of schedules instead of every interleaving:
        the outcome set and the findings reachable from it are
        preserved, but per-interleaving tallies shrink.
        """
        start = perf_counter()
        explorer = make_explorer(
            program,
            max_schedules,
            max_steps,
            preemption_bound,
            workers,
            False,
            keep_matches=0,
            pipeline_factory=self._pipeline,
            reduction=reduction,
        )
        exploration = explorer.explore(
            predicate=predicate if predicate is not None else (lambda run: False)
        )
        reports = dict(exploration.detector_reports or {})
        for detector in self.detectors:
            reports.setdefault(detector.name, Report(detector=detector.name))
        result = _record_suite(
            SuiteResult(reports=reports, exploration=exploration)
        )
        if obs_runlog.active_runlog() is not None:
            args = {
                "max_schedules": max_schedules,
                "max_steps": max_steps,
                "preemption_bound": preemption_bound,
                "workers": workers,
                "memoize": False,
                "online": True,
                "reduction": reduction or "none",
            }
            stats = exploration.pipeline_stats or {}
            obs_runlog.emit(
                "suite.analyse_online",
                **obs_runlog.exploration_record(
                    exploration, args, perf_counter() - start
                ),
                pipeline=stats,
                findings={name: len(report) for name, report in reports.items()},
                first_finding_step=stats.get("first_finding_step"),
            )
        return result
