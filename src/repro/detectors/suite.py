"""Run every detector class side by side, the way the study compares them.

The ASPLOS'08 implications sections argue about *tool coverage*: race
detectors cannot see all atomicity violations (a bug can be atomicity-
broken yet race-free under lock-protected accesses), atomicity detectors
miss order violations and multi-variable bugs, and deadlock detection is a
separate analysis entirely.  :class:`DetectorSuite` makes those statements
measurable on our executable kernels: give it traces, get a per-detector
report and a coverage map.

Two execution modes share one API:

* ``streaming=True`` runs the whole battery through a single shared
  :class:`~repro.detectors.pipeline.DetectorPipeline` pass per trace —
  each event is dispatched once, not once per detector.
* :meth:`DetectorSuite.analyse_online` goes further and analyses *during*
  exploration: the explorer feeds events to the pipeline as the engine
  executes, reusing analysis state along shared schedule prefixes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.detectors.atomicity import AtomicityDetector
from repro.obs import metrics as obs_metrics
from repro.obs import runlog as obs_runlog
from repro.detectors.base import Detector, FindingKind, Report
from repro.detectors.deadlock import DeadlockDetector
from repro.detectors.happensbefore import HappensBeforeDetector
from repro.detectors.lockset import LocksetDetector
from repro.detectors.orderviolation import OrderViolationDetector
from repro.detectors.pipeline import DetectorPipeline
from repro.sim.engine import RunResult, run_program
from repro.sim.explorer import ExplorationResult, make_explorer
from repro.sim.program import Program
from repro.sim.scheduler import CooperativeScheduler
from repro.sim.trace import Trace

__all__ = ["DetectorSuite", "SuiteResult", "default_detectors"]


def default_detectors(program: Optional[Program] = None) -> List[Detector]:
    """The standard detector battery (order-violation needs the program)."""
    order = (
        OrderViolationDetector.for_program(program)
        if program is not None
        else OrderViolationDetector()
    )
    return [
        HappensBeforeDetector(),
        LocksetDetector(),
        AtomicityDetector(),
        order,
        DeadlockDetector(),
    ]


@dataclass
class SuiteResult:
    """Per-detector reports for one set of traces."""

    reports: Dict[str, Report] = field(default_factory=dict)
    #: For :meth:`DetectorSuite.analyse_online`: the exploration result
    #: the findings came from (pipeline counters live on
    #: ``exploration.pipeline_stats``).  ``None`` for trace-based modes.
    exploration: Optional[ExplorationResult] = None

    def report(self, detector: str) -> Report:
        """The report of one detector by name."""
        return self.reports[detector]

    def flagged_by(self) -> List[str]:
        """Names of detectors that produced at least one finding."""
        return sorted(name for name, report in self.reports.items() if not report.clean)

    def kinds_found(self) -> List[FindingKind]:
        """All finding kinds across detectors, unique and ordered by value."""
        kinds = {f.kind for report in self.reports.values() for f in report}
        return sorted(kinds, key=lambda k: k.value)

    @property
    def clean(self) -> bool:
        """No detector found anything."""
        return all(report.clean for report in self.reports.values())

    def format(self) -> str:
        """Console-ready rendering of every report."""
        return "\n".join(
            self.reports[name].format() for name in sorted(self.reports)
        )


def _record_suite(result: SuiteResult) -> SuiteResult:
    """Tally per-detector verdicts and findings into the metrics registry.

    One ``detector.verdicts`` increment per detector per analysis
    (labelled clean/flagged) plus one ``detector.findings`` increment
    per finding (labelled by kind) — the coverage-matrix evidence in
    countable form.  No-op while metrics are disabled.
    """
    registry = obs_metrics.active()
    if registry is not None:
        for name, report in result.reports.items():
            registry.inc("detector.analyses", 1, detector=name)
            registry.inc(
                "detector.verdicts", 1, detector=name,
                verdict="clean" if report.clean else "flagged",
            )
            for finding in report:
                registry.inc(
                    "detector.findings", 1, detector=name,
                    kind=finding.kind.value,
                )
    return result


class DetectorSuite:
    """A battery of detectors applied to one or more traces.

    ``streaming=True`` analyses each trace in one shared pipeline pass
    (one event dispatch feeds every detector) instead of one pass per
    detector; findings are identical either way.
    """

    def __init__(
        self,
        detectors: Optional[Iterable[Detector]] = None,
        streaming: bool = False,
    ):
        self.detectors: List[Detector] = (
            list(detectors) if detectors is not None else default_detectors()
        )
        self.streaming = streaming

    @classmethod
    def for_program(
        cls, program: Program, streaming: bool = False
    ) -> "DetectorSuite":
        """Suite with program-aware detectors wired up."""
        return cls(default_detectors(program), streaming=streaming)

    def _pipeline(self) -> DetectorPipeline:
        """A fresh shared pipeline over this suite's detectors."""
        return DetectorPipeline(self.detectors)

    def analyse(self, trace: Trace) -> SuiteResult:
        """Run every detector on one trace."""
        return self.analyse_many([trace])

    def analyse_many(self, traces: Iterable[Trace]) -> SuiteResult:
        """Run every detector across several traces, merging findings."""
        trace_list = list(traces)
        if self.streaming:
            pipeline = self._pipeline()
            for trace in trace_list:
                pipeline.run_trace(trace)
            pipeline.record_metrics()
            return _record_suite(SuiteResult(reports=dict(pipeline.reports)))
        return _record_suite(SuiteResult(
            reports={d.name: d.analyse_many(trace_list) for d in self.detectors}
        ))

    def analyse_program(
        self,
        program: Program,
        predicate: Optional[Callable[[RunResult], bool]] = None,
        max_schedules: int = 20000,
        workers: Optional[int] = None,
        keep_matches: int = 16,
    ) -> SuiteResult:
        """Explore the program's schedules, then analyse the interesting runs.

        Explores up to ``max_schedules`` interleavings (sharded across a
        process pool when ``workers > 1``), collects the traces of runs
        matching ``predicate`` (default: failing runs) up to
        ``keep_matches``, and feeds them through :meth:`analyse_many`.  If
        no run matches, analyses the single cooperative-schedule baseline
        run instead, so detectors still see one representative trace.
        """
        explorer = make_explorer(
            program, max_schedules, 5000, None, workers, False,
            keep_matches=keep_matches,
        )
        result = explorer.explore(predicate=predicate)
        traces = [run.trace for run in result.matching]
        if not traces:
            baseline = run_program(program, CooperativeScheduler())
            traces = [baseline.trace]
        return self.analyse_many(traces)

    def analyse_online(
        self,
        program: Program,
        predicate: Optional[Callable[[RunResult], bool]] = None,
        max_schedules: int = 20000,
        max_steps: int = 5000,
        preemption_bound: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> SuiteResult:
        """Analyse *while* exploring: one streamed pass over every schedule.

        A shared detector pipeline rides along with the exploration
        (sharded across processes when ``workers > 1``), observing every
        executed event; analysis state is snapshotted at branch points
        and restored for sibling schedules, so shared prefixes are
        analysed once instead of once per schedule.  Unlike
        :meth:`analyse_program` this covers **every** explored
        interleaving, not just the ``keep_matches`` retained ones —
        without retaining any traces.

        ``predicate`` only controls the exploration's match bookkeeping
        (default: nothing matches); detection does not depend on it.
        """
        start = perf_counter()
        explorer = make_explorer(
            program,
            max_schedules,
            max_steps,
            preemption_bound,
            workers,
            False,
            keep_matches=0,
            pipeline_factory=self._pipeline,
        )
        exploration = explorer.explore(
            predicate=predicate if predicate is not None else (lambda run: False)
        )
        reports = dict(exploration.detector_reports or {})
        for detector in self.detectors:
            reports.setdefault(detector.name, Report(detector=detector.name))
        result = _record_suite(
            SuiteResult(reports=reports, exploration=exploration)
        )
        if obs_runlog.active_runlog() is not None:
            args = {
                "max_schedules": max_schedules,
                "max_steps": max_steps,
                "preemption_bound": preemption_bound,
                "workers": workers,
                "memoize": False,
                "online": True,
            }
            stats = exploration.pipeline_stats or {}
            obs_runlog.emit(
                "suite.analyse_online",
                **obs_runlog.exploration_record(
                    exploration, args, perf_counter() - start
                ),
                pipeline=stats,
                findings={name: len(report) for name, report in reports.items()},
                first_finding_step=stats.get("first_finding_step"),
            )
        return result
