"""Vector clocks: the partial-order backbone of happens-before analysis.

A :class:`VectorClock` maps thread names to logical timestamps.  The
ordering is the usual pointwise one: ``a <= b`` iff every component of
``a`` is ``<=`` the corresponding component of ``b`` (missing components
are zero).  Two clocks are *concurrent* when neither is ``<=`` the other —
the defining condition of a data race between the events they stamp.

Clocks are immutable; all operators return new instances.  That costs a
little allocation but makes them safe to store in access histories, which
is exactly what the happens-before detector does.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

__all__ = ["VectorClock"]


class VectorClock:
    """An immutable thread-name -> counter map with pointwise ordering."""

    __slots__ = ("_clock",)

    def __init__(self, clock: Mapping[str, int] = ()):
        items = dict(clock)
        # Zero entries are dropped so equal clocks have equal dicts.
        self._clock: Dict[str, int] = {k: v for k, v in items.items() if v}

    # -- accessors -----------------------------------------------------------

    def get(self, thread: str) -> int:
        """The component for ``thread`` (zero if absent)."""
        return self._clock.get(thread, 0)

    def items(self) -> Iterable[Tuple[str, int]]:
        """The non-zero components."""
        return self._clock.items()

    # -- operations ------------------------------------------------------------

    def tick(self, thread: str) -> "VectorClock":
        """A copy with ``thread``'s component incremented."""
        updated = dict(self._clock)
        updated[thread] = updated.get(thread, 0) + 1
        return VectorClock(updated)

    def join(self, other: "VectorClock") -> "VectorClock":
        """The pointwise maximum (least upper bound)."""
        merged = dict(self._clock)
        for thread, value in other._clock.items():
            if value > merged.get(thread, 0):
                merged[thread] = value
        return VectorClock(merged)

    # -- ordering -----------------------------------------------------------------

    def __le__(self, other: "VectorClock") -> bool:
        return all(v <= other.get(t) for t, v in self._clock.items())

    def __lt__(self, other: "VectorClock") -> bool:
        return self <= other and self != other

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._clock == other._clock

    def __hash__(self) -> int:
        return hash(frozenset(self._clock.items()))

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither clock happens-before the other."""
        return not (self <= other) and not (other <= self)

    def happens_before(self, other: "VectorClock") -> bool:
        """Strictly before in the partial order."""
        return self < other

    def __repr__(self) -> str:
        inner = ", ".join(f"{t}:{v}" for t, v in sorted(self._clock.items()))
        return f"VC({inner})"
