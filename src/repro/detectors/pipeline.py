"""Streaming detector pipeline: one shared event pass for every detector.

Historically each detector made its own O(n) pass over a recorded
:class:`~repro.sim.trace.Trace`, rebuilding vector clocks, held-lock maps
and lock-order edges from scratch — five times per trace, once per
detector, for every interleaving an exploration yields.  This module
inverts that: a :class:`DetectorPipeline` owns a *single* pass over the
event stream and a shared :class:`AnalysisState` (vector clocks, locksets,
lock-order graph, critical-section extents) computed once; each detector
is reduced to an ``on_event``/``finish`` observer that reads the shared
state (see :class:`~repro.detectors.base.Detector`).

The pipeline feeds from either source:

* a recorded trace (:meth:`DetectorPipeline.run_trace`) — this is what
  the batch-compatibility shim :meth:`Detector.analyse` uses, so the
  streaming path produces reports identical to the legacy per-detector
  passes;
* the live engine, event by event, during exploration — the explorers
  pass :meth:`DetectorPipeline.feed` as the engine's ``event_hook`` and
  :meth:`snapshot`/:meth:`restore` detector state along the DFS prefix
  stack, so shared schedule prefixes are analysed once instead of once
  per leaf.

Snapshots are cheap by design: :class:`~repro.detectors.vectorclock.VectorClock`
objects are immutable (shared, never copied), events are frozen
dataclasses, and every tracker copies only its dict/list spines.  A
snapshot may seed many sibling subtrees, so :meth:`restore` copies
*again* rather than adopting the snapshot's objects.

Findings accumulate in per-detector :class:`~repro.detectors.base.Report`
objects that de-duplicate on insert and are never rolled back: a finding
witnessed by events of a shared prefix is a finding on every path through
that prefix, so re-adding it after a restore is a no-op.

Obs integration: :func:`record_pipeline_metrics` publishes the
``pipeline.*`` counters (events dispatched exactly once per event per
pipeline, events skipped thanks to snapshot reuse, snapshots, restores,
passes) and the ``pipeline.reuse_ratio`` gauge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.detectors.base import Detector, Report
from repro.detectors.vectorclock import VectorClock
from repro.obs import metrics as obs_metrics
from repro.sim import events as ev
from repro.sim.trace import Trace

__all__ = [
    "AnalysisState",
    "ClockTracker",
    "DetectorPipeline",
    "LockOrderTracker",
    "LockTracker",
    "PipelineSnapshot",
    "PipelineStats",
    "SectionTracker",
    "record_pipeline_metrics",
]

#: The shared-state components a detector may declare in ``requires``.
COMPONENTS = ("clocks", "locks", "lock_order", "sections")

_NO_LOCKS: frozenset = frozenset()


class ClockTracker:
    """Vector clocks for the happens-before relation, maintained online.

    One clock per thread plus clocks for every synchronisation edge the
    simulator expresses (mutex/rwlock/semaphore release→acquire,
    notify→wait-resume, spawn→start, finish→join, barrier all-pairs).
    The bookkeeping mirrors what
    :class:`~repro.detectors.happensbefore.HappensBeforeDetector`
    historically rebuilt per trace; here it is computed once and shared.
    """

    def __init__(self) -> None:
        self.thread_clocks: Dict[str, VectorClock] = {}
        self.sync_clocks: Dict[str, VectorClock] = {}
        self.spawn_clocks: Dict[str, VectorClock] = {}
        self.final_clocks: Dict[str, VectorClock] = {}
        self.notify_clocks: Dict[Tuple[str, str], VectorClock] = {}
        self.barrier_clocks: Dict[str, List[VectorClock]] = {}
        #: The acting thread's clock *before* the advance for the current
        #: memory access — what an access's happens-before position is.
        self.access_clock: Optional[VectorClock] = None

    # -- clock helpers -----------------------------------------------------

    def clock(self, thread: str) -> VectorClock:
        """The thread's current clock (lazily created on first use)."""
        if thread not in self.thread_clocks:
            self.thread_clocks[thread] = VectorClock().tick(thread)
        return self.thread_clocks[thread]

    def advance(self, thread: str) -> None:
        """Tick the thread's own component."""
        self.thread_clocks[thread] = self.clock(thread).tick(thread)

    def acquire_edge(self, thread: str, obj: str) -> None:
        """Join the sync object's clock into the acquiring thread's."""
        if obj in self.sync_clocks:
            self.thread_clocks[thread] = self.clock(thread).join(self.sync_clocks[obj])

    def release_edge(self, thread: str, obj: str) -> None:
        """Fold the releasing thread's clock into the sync object's."""
        current = self.sync_clocks.get(obj, VectorClock())
        self.sync_clocks[obj] = current.join(self.clock(thread))

    # -- event dispatch ----------------------------------------------------

    def apply(self, event: ev.Event) -> None:
        """Advance the happens-before state by one event."""
        thread = event.thread
        if isinstance(event, (ev.ReadEvent, ev.WriteEvent, ev.AtomicUpdateEvent)):
            self.access_clock = self.clock(thread)
            self.advance(thread)
            return
        if isinstance(event, ev.ThreadStartEvent):
            if thread in self.spawn_clocks:
                self.thread_clocks[thread] = self.clock(thread).join(
                    self.spawn_clocks.pop(thread)
                )
            else:
                self.clock(thread)
            return
        if isinstance(event, ev.SpawnEvent):
            self.spawn_clocks[event.target] = self.clock(thread)
            self.advance(thread)
            return
        if isinstance(event, (ev.ThreadFinishEvent, ev.ThreadCrashEvent)):
            self.final_clocks[thread] = self.clock(thread)
            return
        if isinstance(event, ev.JoinEvent):
            final = self.final_clocks.get(event.target)
            if final is not None:
                self.thread_clocks[thread] = self.clock(thread).join(final)
            self.advance(thread)
            return
        if isinstance(event, ev.AcquireEvent):
            self.acquire_edge(thread, f"lock:{event.lock}")
            self.advance(thread)
            return
        if isinstance(event, ev.TryAcquireEvent):
            if event.success:
                self.acquire_edge(thread, f"lock:{event.lock}")
            self.advance(thread)
            return
        if isinstance(event, ev.ReleaseEvent):
            self.release_edge(thread, f"lock:{event.lock}")
            self.advance(thread)
            return
        if isinstance(event, ev.RWAcquireEvent):
            self.acquire_edge(thread, f"rwlock:{event.rwlock}")
            self.advance(thread)
            return
        if isinstance(event, ev.RWReleaseEvent):
            self.release_edge(thread, f"rwlock:{event.rwlock}")
            self.advance(thread)
            return
        if isinstance(event, ev.WaitParkEvent):
            # Parking releases the lock.
            self.release_edge(thread, f"lock:{event.lock}")
            self.advance(thread)
            return
        if isinstance(event, ev.NotifyEvent):
            for woken in event.woken:
                self.notify_clocks[(event.cond, woken)] = self.clock(thread)
            self.advance(thread)
            return
        if isinstance(event, ev.WaitResumeEvent):
            self.acquire_edge(thread, f"lock:{event.lock}")
            notify = self.notify_clocks.pop((event.cond, thread), None)
            if notify is not None:
                self.thread_clocks[thread] = self.clock(thread).join(notify)
            self.advance(thread)
            return
        if isinstance(event, ev.SemReleaseEvent):
            self.release_edge(thread, f"sem:{event.sem}")
            self.advance(thread)
            return
        if isinstance(event, ev.SemAcquireEvent):
            self.acquire_edge(thread, f"sem:{event.sem}")
            self.advance(thread)
            return
        if isinstance(event, ev.BarrierEvent):
            key = event.barrier
            if event.released:
                # Trip: every member's clock joins every other's.
                clocks = self.barrier_clocks.pop(key, [])
                clocks.append(self.clock(thread))
                merged = VectorClock()
                for c in clocks:
                    merged = merged.join(c)
                for member in event.released:
                    self.thread_clocks[member] = self.clock(member).join(merged)
                    self.advance(member)
            else:
                self.barrier_clocks.setdefault(key, []).append(self.clock(thread))
                self.advance(thread)
            return
        if isinstance(event, ev.SendEvent):
            # Message-passing edge: the send happens-before the matching
            # receive.  The channel clock accumulates every sender (a
            # FIFO hands values over in order, so folding is sound and
            # conservative — it may order more than the one matching
            # pair, never less).
            self.release_edge(thread, f"chan:{event.chan}")
            self.advance(thread)
            return
        if isinstance(event, (ev.RecvEvent, ev.SelectEvent)):
            self.acquire_edge(thread, f"chan:{event.chan}")
            self.advance(thread)
            return
        if isinstance(event, (ev.FenceEvent, ev.FlushEvent)):
            # A fence or store-buffer flush is thread-local for
            # happens-before purposes (no cross-thread join); the flush
            # event's thread is the owning thread.
            self.advance(thread)
            return
        if isinstance(event, ev.YieldEvent):
            self.advance(thread)
        # Deadlock events carry no ordering information.

    def copy(self) -> "ClockTracker":
        """Snapshot copy; clocks are immutable so only the spines copy."""
        dup = ClockTracker.__new__(ClockTracker)
        dup.thread_clocks = dict(self.thread_clocks)
        dup.sync_clocks = dict(self.sync_clocks)
        dup.spawn_clocks = dict(self.spawn_clocks)
        dup.final_clocks = dict(self.final_clocks)
        dup.notify_clocks = dict(self.notify_clocks)
        dup.barrier_clocks = {k: list(v) for k, v in self.barrier_clocks.items()}
        dup.access_clock = self.access_clock
        return dup


class LockTracker:
    """Per-thread held-lock sets, maintained online.

    Two views, matching what the batch detectors historically tracked for
    themselves:

    * :meth:`held_by` — mutexes *and* rwlocks, the Eraser candidate-set
      universe (rwlock holds count as protection);
    * :meth:`mutexes_held` — mutexes only, the read-protection evidence
      the order-violation heuristics use.
    """

    def __init__(self) -> None:
        self.held: Dict[str, Set[str]] = {}
        self.mutexes: Dict[str, Set[str]] = {}

    def apply(self, event: ev.Event) -> None:
        """Advance the held-lock state by one event."""
        thread = event.thread
        if isinstance(event, ev.AcquireEvent) or (
            isinstance(event, ev.TryAcquireEvent) and event.success
        ) or isinstance(event, ev.WaitResumeEvent):
            self.held.setdefault(thread, set()).add(event.lock)
            self.mutexes.setdefault(thread, set()).add(event.lock)
        elif isinstance(event, (ev.ReleaseEvent, ev.WaitParkEvent)):
            self.held.setdefault(thread, set()).discard(event.lock)
            self.mutexes.setdefault(thread, set()).discard(event.lock)
        elif isinstance(event, ev.RWAcquireEvent):
            self.held.setdefault(thread, set()).add(event.rwlock)
        elif isinstance(event, ev.RWReleaseEvent):
            self.held.setdefault(thread, set()).discard(event.rwlock)

    def held_by(self, thread: str) -> frozenset:
        """Locks (mutexes + rwlocks) the thread currently holds."""
        locks = self.held.get(thread)
        return frozenset(locks) if locks else _NO_LOCKS

    def mutexes_held(self, thread: str) -> frozenset:
        """Mutexes only (no rwlocks) the thread currently holds."""
        locks = self.mutexes.get(thread)
        return frozenset(locks) if locks else _NO_LOCKS

    def copy(self) -> "LockTracker":
        """Snapshot copy of both views."""
        dup = LockTracker.__new__(LockTracker)
        dup.held = {t: set(s) for t, s in self.held.items()}
        dup.mutexes = {t: set(s) for t, s in self.mutexes.items()}
        return dup


class LockOrderTracker:
    """The lock-order graph (Goodlock), maintained online.

    An edge ``A -> B`` is recorded every time a thread acquires ``B``
    while holding ``A``; edge attribute ``witnesses`` collects
    ``(thread, held_seq, acq_seq)`` triples.  Blocked acquisitions in a
    terminal deadlock event contribute edges too, so even a deadlocked
    trace yields the full cycle.  Edges are stored as a plain
    insertion-ordered dict so snapshots stay cheap; :meth:`graph`
    materialises the :class:`networkx.DiGraph` on demand.
    """

    def __init__(self) -> None:
        self.held: Dict[str, Dict[str, int]] = {}
        self.edges: Dict[Tuple[str, str], List[Tuple[str, int, int]]] = {}

    def _edge(self, src: str, dst: str, witness: Tuple[str, int, int]) -> None:
        self.edges.setdefault((src, dst), []).append(witness)

    def apply(self, event: ev.Event) -> None:
        """Advance the lock-order graph by one event."""
        locks = self.held.setdefault(event.thread, {})
        if isinstance(event, ev.AcquireEvent) or (
            isinstance(event, ev.TryAcquireEvent) and event.success
        ) or isinstance(event, ev.WaitResumeEvent):
            for prior, prior_seq in locks.items():
                self._edge(prior, event.lock, (event.thread, prior_seq, event.seq))
            locks[event.lock] = event.seq
        elif isinstance(event, (ev.ReleaseEvent, ev.WaitParkEvent)):
            locks.pop(event.lock, None)
        elif isinstance(event, ev.DeadlockEvent):
            # Blocked acquires never executed, but the wait-for info names
            # the lock each stuck thread wanted; add those edges too.
            for thread, waiting in event.blocked:
                if not waiting.startswith("lock:"):
                    continue
                wanted = waiting.split(":", 1)[1].split("(", 1)[0]
                for prior, prior_seq in self.held.get(thread, {}).items():
                    self._edge(prior, wanted, (thread, prior_seq, event.seq))

    def graph(self) -> "nx.DiGraph":
        """The accumulated lock-order graph as a :class:`networkx.DiGraph`."""
        graph = nx.DiGraph()
        for (src, dst), witnesses in self.edges.items():
            graph.add_edge(src, dst, witnesses=list(witnesses))
        return graph

    def copy(self) -> "LockOrderTracker":
        """Snapshot copy (held maps and witness lists)."""
        dup = LockOrderTracker.__new__(LockOrderTracker)
        dup.held = {t: dict(locks) for t, locks in self.held.items()}
        dup.edges = {k: list(v) for k, v in self.edges.items()}
        return dup


class SectionTracker:
    """Critical-section extents, maintained online.

    Streaming equivalent of :meth:`repro.sim.trace.Trace.critical_sections`:
    ``completed`` holds ``(thread, lock, acquire_seq, release_seq)`` tuples
    for every closed section so far, in closing order; sections still open
    are in ``open_sections``.
    """

    def __init__(self) -> None:
        self.open_sections: Dict[Tuple[str, str], int] = {}
        self.completed: List[Tuple[str, str, int, int]] = []

    def apply(self, event: ev.Event) -> None:
        """Advance the section extents by one event."""
        if isinstance(event, ev.AcquireEvent) or (
            isinstance(event, ev.TryAcquireEvent) and event.success
        ) or isinstance(event, ev.WaitResumeEvent):
            self.open_sections[(event.thread, event.lock)] = event.seq
        elif isinstance(event, (ev.ReleaseEvent, ev.WaitParkEvent)):
            start = self.open_sections.pop((event.thread, event.lock), None)
            if start is not None:
                self.completed.append((event.thread, event.lock, start, event.seq))

    def copy(self) -> "SectionTracker":
        """Snapshot copy."""
        dup = SectionTracker.__new__(SectionTracker)
        dup.open_sections = dict(self.open_sections)
        dup.completed = list(self.completed)
        return dup


class AnalysisState:
    """The shared per-pass state every detector reads.

    Built from the union of the attached detectors'
    :attr:`~repro.detectors.base.Detector.requires` declarations, so a
    single-detector pipeline pays only for the components that detector
    needs.  Components a pipeline did not request are ``None``.

    Always tracked regardless of components: ``events_seen`` (the number
    of events applied on the current path — equal to the next event's
    ``seq``) and ``deadlock`` (the terminal
    :class:`~repro.sim.events.DeadlockEvent`, if one occurred).
    """

    def __init__(self, components: Sequence[str] = COMPONENTS):
        unknown = set(components) - set(COMPONENTS)
        if unknown:
            raise ValueError(
                f"unknown analysis component(s) {sorted(unknown)}; "
                f"known: {list(COMPONENTS)}"
            )
        self.components: Tuple[str, ...] = tuple(
            c for c in COMPONENTS if c in components
        )
        self.events_seen = 0
        self.deadlock: Optional[ev.DeadlockEvent] = None
        self.clocks = ClockTracker() if "clocks" in self.components else None
        self.locks = LockTracker() if "locks" in self.components else None
        self.lock_order = (
            LockOrderTracker() if "lock_order" in self.components else None
        )
        self.sections = SectionTracker() if "sections" in self.components else None
        self._trackers = tuple(
            t for t in (self.clocks, self.locks, self.lock_order, self.sections)
            if t is not None
        )

    def apply(self, event: ev.Event) -> None:
        """Advance every tracked component by one event."""
        self.events_seen += 1
        if isinstance(event, ev.DeadlockEvent):
            self.deadlock = event
        for tracker in self._trackers:
            tracker.apply(event)

    def copy(self) -> "AnalysisState":
        """Deep-enough copy for snapshot/restore (immutables shared)."""
        dup = AnalysisState.__new__(AnalysisState)
        dup.components = self.components
        dup.events_seen = self.events_seen
        dup.deadlock = self.deadlock
        dup.clocks = self.clocks.copy() if self.clocks is not None else None
        dup.locks = self.locks.copy() if self.locks is not None else None
        dup.lock_order = (
            self.lock_order.copy() if self.lock_order is not None else None
        )
        dup.sections = self.sections.copy() if self.sections is not None else None
        dup._trackers = tuple(
            t for t in (dup.clocks, dup.locks, dup.lock_order, dup.sections)
            if t is not None
        )
        return dup


@dataclass
class PipelineStats:
    """Counters for one pipeline's lifetime (across all passes)."""

    #: Events applied to the shared state and dispatched to observers —
    #: exactly once per (event, pipeline), never once per detector.
    events_dispatched: int = 0
    #: Replayed prefix events skipped because a snapshot already covered
    #: them (the shared-prefix reuse the incremental mode exists for).
    events_reused: int = 0
    #: Snapshots taken at decision points.
    snapshots: int = 0
    #: Restores (rollbacks) from a snapshot.
    restores: int = 0
    #: Passes started (fresh ``begin_pass`` or ``restore``).
    passes: int = 0
    #: ``seq`` of the event during/after which the first finding appeared
    #: (``None`` while all reports are clean).
    first_finding_step: Optional[int] = None

    def reuse_ratio(self) -> float:
        """Fraction of seen events that were skipped as shared-prefix."""
        seen = self.events_dispatched + self.events_reused
        return self.events_reused / seen if seen else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict rendering (JSON-ready, used in results and runlog)."""
        return {
            "events_dispatched": self.events_dispatched,
            "events_reused": self.events_reused,
            "snapshots": self.snapshots,
            "restores": self.restores,
            "passes": self.passes,
            "first_finding_step": self.first_finding_step,
            "reuse_ratio": self.reuse_ratio(),
        }


@dataclass(frozen=True)
class PipelineSnapshot:
    """Frozen pipeline position: shared state + per-detector locals.

    ``events_seen`` is the number of events the snapshot covers; on
    :meth:`DetectorPipeline.restore` the pipeline skips replayed events
    with ``seq`` below it.  One snapshot may seed many sibling subtrees,
    so restore copies the contents instead of adopting them.
    """

    events_seen: int
    state: AnalysisState
    locals: Dict[str, Any]


class DetectorPipeline:
    """One event pass shared by a set of detector observers.

    The pipeline owns the :class:`AnalysisState`, the per-detector local
    state, and the per-detector :class:`~repro.detectors.base.Report`
    objects (``reports``, keyed by detector name, accumulated across
    passes with de-duplication).  Feed it a whole trace with
    :meth:`run_trace`, or stream events with
    :meth:`begin_pass`/:meth:`feed`/:meth:`finish_pass` and move along an
    exploration tree with :meth:`snapshot`/:meth:`restore`.
    """

    def __init__(self, detectors: Iterable[Detector]):
        self.detectors: List[Detector] = list(detectors)
        names = [d.name for d in self.detectors]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate detector names in pipeline: {names}")
        self._by_name: Dict[str, Detector] = {d.name: d for d in self.detectors}
        #: Per-detector reports, accumulated across every pass.
        self.reports: Dict[str, Report] = {
            name: Report(detector=name) for name in names
        }
        required: Set[str] = set()
        for detector in self.detectors:
            required |= set(detector.requires)
        self._components = tuple(c for c in COMPONENTS if c in required)
        #: Lifetime counters (see :class:`PipelineStats`).
        self.stats = PipelineStats()
        self.state: Optional[AnalysisState] = None
        self._locals: Dict[str, Any] = {}
        self._skip = 0

    # -- pass lifecycle ----------------------------------------------------

    def begin_pass(self) -> None:
        """Start a fresh pass: new shared state, new detector locals."""
        self.state = AnalysisState(self._components)
        self._locals = {d.name: d.begin() for d in self.detectors}
        self._skip = 0
        self.stats.passes += 1

    def feed(self, event: ev.Event) -> None:
        """Apply one event to the shared state and dispatch it once.

        Events with ``seq`` below the restore point are replayed prefix
        steps the pipeline has already analysed; they are counted as
        reused and skipped entirely.
        """
        if event.seq < self._skip:
            self.stats.events_reused += 1
            return
        state = self.state
        state.apply(event)
        locals_ = self._locals
        reports = self.reports
        for detector in self.detectors:
            detector.on_event(event, state, locals_[detector.name], reports[detector.name])
        self.stats.events_dispatched += 1
        if self.stats.first_finding_step is None:
            self._note_findings(event.seq)

    def finish_pass(self) -> None:
        """Run end-of-trace analyses for the current pass."""
        for detector in self.detectors:
            detector.finish(
                self.state, self._locals[detector.name], self.reports[detector.name]
            )
        if self.stats.first_finding_step is None and self.state is not None:
            self._note_findings(max(self.state.events_seen - 1, 0))

    def run_trace(self, trace: Trace) -> Dict[str, Report]:
        """One full batch pass over a recorded trace; returns ``reports``."""
        self.begin_pass()
        for event in trace:
            self.feed(event)
        self.finish_pass()
        return self.reports

    # -- exploration-tree movement -----------------------------------------

    def snapshot(self) -> PipelineSnapshot:
        """Freeze the current position for later :meth:`restore`."""
        self.stats.snapshots += 1
        return PipelineSnapshot(
            events_seen=self.state.events_seen,
            state=self.state.copy(),
            locals={
                d.name: d.copy_state(self._locals[d.name]) for d in self.detectors
            },
        )

    def restore(self, snap: PipelineSnapshot) -> None:
        """Roll back to a snapshot and start a new pass from it.

        The snapshot's contents are copied (it may seed several sibling
        subtrees); replayed events with ``seq < snap.events_seen`` will be
        skipped by :meth:`feed`.
        """
        self.state = snap.state.copy()
        self._locals = {
            name: self._by_name[name].copy_state(local)
            for name, local in snap.locals.items()
        }
        self._skip = snap.events_seen
        self.stats.restores += 1
        self.stats.passes += 1

    # -- internals ---------------------------------------------------------

    def _note_findings(self, seq: int) -> None:
        for report in self.reports.values():
            if report.findings:
                self.stats.first_finding_step = seq
                return

    # -- observability -----------------------------------------------------

    def record_metrics(self, **labels: object) -> None:
        """Publish this pipeline's counters to the metrics registry."""
        record_pipeline_metrics(self.stats.as_dict(), **labels)


def record_pipeline_metrics(stats: Dict[str, Any], **labels: object) -> None:
    """Publish one pipeline-stats dict as ``pipeline.*`` metrics.

    Counters ``pipeline.events_dispatched`` / ``events_reused`` /
    ``snapshots`` / ``restores`` / ``passes`` plus the
    ``pipeline.reuse_ratio`` gauge.  No-op while metrics are disabled.
    """
    registry = obs_metrics.active()
    if registry is None:
        return
    for key in ("events_dispatched", "events_reused", "snapshots", "restores", "passes"):
        registry.inc(f"pipeline.{key}", stats.get(key, 0), **labels)
    registry.set_gauge("pipeline.reuse_ratio", stats.get("reuse_ratio", 0.0), **labels)
