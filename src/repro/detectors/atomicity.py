"""AVIO-style atomicity-violation detection.

The study's Finding 2 — roughly 70% of non-deadlock concurrency bugs are
atomicity violations — motivated detectors that look beyond data races to
*unserializable interleavings*.  Following AVIO (Lu et al.), the unit of
analysis is a **local access pair**: two consecutive accesses ``p`` then
``c`` by the same thread to the same variable, with a **remote access**
``r`` by another thread interleaved between them.  Of the eight
(p, c, r) read/write combinations, four are unserializable — no serial
execution produces the same observable behaviour:

====  ====  ======  ==============================================
p     c     r       why it is unserializable
====  ====  ======  ==============================================
R     R     W       the two local reads observe different values
R     W     W       local write computed from a stale read (lost update)
W     R     W       local read misses the thread's own write
W     W     R       remote read observes an intermediate value
====  ====  ======  ==============================================

The detector reports one finding per unserializable (pair, remote) triple
observed in the trace.  Accesses inside a common critical section cannot
interleave and therefore never show up — no special-casing needed, the
interleaving simply cannot occur in the trace.

Serializable interleavings are *not* reported, which is what
distinguishes an atomicity detector from a race detector: a racy-but-
serializable interleaving (e.g. R..R with remote R) is benign here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Tuple

from repro.detectors.base import Detector, Finding, FindingKind, Report
from repro.sim import events as ev

if TYPE_CHECKING:  # pragma: no cover
    from repro.detectors.pipeline import AnalysisState

__all__ = [
    "AtomicityDetector",
    "PairTracker",
    "UNSERIALIZABLE_CASES",
    "classify_interleaving",
]

#: The four unserializable (local-first, local-second, remote) combinations.
UNSERIALIZABLE_CASES = {
    ("R", "R", "W"),
    ("R", "W", "W"),
    ("W", "R", "W"),
    ("W", "W", "R"),
}

_EXPLANATIONS = {
    ("R", "R", "W"): "two local reads observe different values",
    ("R", "W", "W"): "local write computed from a stale read (lost update)",
    ("W", "R", "W"): "local read misses the thread's own prior write",
    ("W", "W", "R"): "remote read observes an intermediate value",
}


def classify_interleaving(p_write: bool, c_write: bool, r_write: bool) -> Tuple[str, str, str]:
    """The (p, c, r) access-type triple as 'R'/'W' letters."""
    return (
        "W" if p_write else "R",
        "W" if c_write else "R",
        "W" if r_write else "R",
    )


@dataclass(frozen=True)
class _Access:
    seq: int
    thread: str
    var: str
    is_write: bool


class PairTracker:
    """Local-pair completion over a streaming per-variable access feed.

    Feed accesses in trace order; each access ``c`` *completes* the local
    pair ``(p, c)`` — where ``p`` is the same thread's previous access to
    the same variable — and :meth:`observe` returns that pair with every
    remote access interleaved between them, in trace order.  This is the
    streaming equivalent of collecting per-variable streams and scanning
    ``p.seq < r.seq < c.seq`` after the fact: the pending-remote list of a
    thread is reset each time the thread accesses the variable, so it
    holds exactly the accesses since ``p``.

    Accesses may be any object with ``thread``/``var`` attributes (the
    AVIO learner reuses this with site-annotated accesses).
    """

    __slots__ = ("last", "remotes")

    def __init__(self) -> None:
        # var -> thread -> the thread's last access to var.
        self.last: Dict[str, Dict[str, Any]] = {}
        # var -> thread -> remote accesses since the thread's last access.
        self.remotes: Dict[str, Dict[str, List[Any]]] = {}

    def observe(self, access: Any) -> List[Tuple[Any, Any, Any]]:
        """Feed one access; returns completed ``(p, c, remote)`` triples."""
        var_last = self.last.setdefault(access.var, {})
        var_remotes = self.remotes.setdefault(access.var, {})
        thread = access.thread
        completed: List[Tuple[Any, Any, Any]] = []
        p = var_last.get(thread)
        if p is not None:
            completed = [(p, access, r) for r in var_remotes.get(thread, ())]
        var_last[thread] = access
        var_remotes[thread] = []
        for other, pending in var_remotes.items():
            if other != thread:
                pending.append(access)
        return completed

    def copy(self) -> "PairTracker":
        """Structural copy for pipeline snapshots (accesses are immutable)."""
        dup = PairTracker.__new__(PairTracker)
        dup.last = {var: dict(m) for var, m in self.last.items()}
        dup.remotes = {
            var: {t: list(pending) for t, pending in m.items()}
            for var, m in self.remotes.items()
        }
        return dup


class AtomicityDetector(Detector):
    """Unserializable-interleaving detector for single variables."""

    name = "atomicity"

    def begin(self) -> PairTracker:
        """Fresh local-pair tracker."""
        return PairTracker()

    def copy_state(self, local: PairTracker) -> PairTracker:
        """Structural copy of the pair tracker."""
        return local.copy()

    def on_event(
        self, event: ev.Event, state: "AnalysisState", local: Any, report: Report
    ) -> None:
        """Report each unserializable (local pair, remote) triple."""
        if not event.is_memory_access:
            return
        access = _Access(
            seq=event.seq,
            thread=event.thread,
            var=event.var,  # type: ignore[attr-defined]
            is_write=isinstance(event, (ev.WriteEvent, ev.AtomicUpdateEvent)),
        )
        for p, c, remote in local.observe(access):
            case = classify_interleaving(p.is_write, c.is_write, remote.is_write)
            if case not in UNSERIALIZABLE_CASES:
                continue
            pattern = "".join(case)
            report.add(
                Finding(
                    kind=FindingKind.ATOMICITY_VIOLATION,
                    detector=self.name,
                    description=(
                        f"unserializable interleaving {pattern} on "
                        f"{access.var!r}: {_EXPLANATIONS[case]} "
                        f"(remote {remote.thread} between "
                        f"{access.thread}'s accesses)"
                    ),
                    threads=tuple(sorted({access.thread, remote.thread})),
                    variables=(access.var,),
                    events=(p.seq, remote.seq, c.seq),
                )
            )
