"""AVIO-style atomicity-violation detection.

The study's Finding 2 — roughly 70% of non-deadlock concurrency bugs are
atomicity violations — motivated detectors that look beyond data races to
*unserializable interleavings*.  Following AVIO (Lu et al.), the unit of
analysis is a **local access pair**: two consecutive accesses ``p`` then
``c`` by the same thread to the same variable, with a **remote access**
``r`` by another thread interleaved between them.  Of the eight
(p, c, r) read/write combinations, four are unserializable — no serial
execution produces the same observable behaviour:

====  ====  ======  ==============================================
p     c     r       why it is unserializable
====  ====  ======  ==============================================
R     R     W       the two local reads observe different values
R     W     W       local write computed from a stale read (lost update)
W     R     W       local read misses the thread's own write
W     W     R       remote read observes an intermediate value
====  ====  ======  ==============================================

The detector reports one finding per unserializable (pair, remote) triple
observed in the trace.  Accesses inside a common critical section cannot
interleave and therefore never show up — no special-casing needed, the
interleaving simply cannot occur in the trace.

Serializable interleavings are *not* reported, which is what
distinguishes an atomicity detector from a race detector: a racy-but-
serializable interleaving (e.g. R..R with remote R) is benign here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.detectors.base import Detector, Finding, FindingKind, Report
from repro.sim import events as ev
from repro.sim.trace import Trace

__all__ = ["AtomicityDetector", "UNSERIALIZABLE_CASES", "classify_interleaving"]

#: The four unserializable (local-first, local-second, remote) combinations.
UNSERIALIZABLE_CASES = {
    ("R", "R", "W"),
    ("R", "W", "W"),
    ("W", "R", "W"),
    ("W", "W", "R"),
}

_EXPLANATIONS = {
    ("R", "R", "W"): "two local reads observe different values",
    ("R", "W", "W"): "local write computed from a stale read (lost update)",
    ("W", "R", "W"): "local read misses the thread's own prior write",
    ("W", "W", "R"): "remote read observes an intermediate value",
}


def classify_interleaving(p_write: bool, c_write: bool, r_write: bool) -> Tuple[str, str, str]:
    """The (p, c, r) access-type triple as 'R'/'W' letters."""
    return (
        "W" if p_write else "R",
        "W" if c_write else "R",
        "W" if r_write else "R",
    )


@dataclass(frozen=True)
class _Access:
    seq: int
    thread: str
    var: str
    is_write: bool


class AtomicityDetector(Detector):
    """Unserializable-interleaving detector for single variables."""

    name = "atomicity"

    def analyse(self, trace: Trace) -> Report:
        report = Report(detector=self.name)
        accesses = self._collect(trace)
        for var, stream in accesses.items():
            self._analyse_variable(var, stream, report)
        return report

    @staticmethod
    def _collect(trace: Trace) -> Dict[str, List[_Access]]:
        streams: Dict[str, List[_Access]] = {}
        for event in trace:
            if not event.is_memory_access:
                continue
            is_write = isinstance(event, (ev.WriteEvent, ev.AtomicUpdateEvent))
            streams.setdefault(event.var, []).append(  # type: ignore[attr-defined]
                _Access(
                    seq=event.seq,
                    thread=event.thread,
                    var=event.var,  # type: ignore[attr-defined]
                    is_write=is_write,
                )
            )
        return streams

    def _analyse_variable(self, var: str, stream: List[_Access], report: Report) -> None:
        # Local pairs: consecutive same-thread accesses in the *per-thread*
        # projection of the stream.
        by_thread: Dict[str, List[_Access]] = {}
        for access in stream:
            by_thread.setdefault(access.thread, []).append(access)
        for thread, local in by_thread.items():
            for p, c in zip(local, local[1:]):
                remotes = [
                    r
                    for r in stream
                    if r.thread != thread and p.seq < r.seq < c.seq
                ]
                for remote in remotes:
                    case = classify_interleaving(
                        p.is_write, c.is_write, remote.is_write
                    )
                    if case not in UNSERIALIZABLE_CASES:
                        continue
                    pattern = "".join(case)
                    report.add(
                        Finding(
                            kind=FindingKind.ATOMICITY_VIOLATION,
                            detector=self.name,
                            description=(
                                f"unserializable interleaving {pattern} on "
                                f"{var!r}: {_EXPLANATIONS[case]} "
                                f"(remote {remote.thread} between "
                                f"{thread}'s accesses)"
                            ),
                            threads=tuple(sorted({thread, remote.thread})),
                            variables=(var,),
                            events=(p.seq, remote.seq, c.seq),
                        )
                    )
