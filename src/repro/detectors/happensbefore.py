"""Happens-before data-race detection over execution traces.

The detector replays a trace, maintaining one vector clock per thread and
one per synchronisation object, and building the happens-before relation
from:

* program order within each thread;
* mutex release -> subsequent acquire of the same mutex (likewise
  try-acquire success and condition-wait re-acquire);
* reader-writer lock release -> acquire (conservatively through a single
  clock per rwlock, which may order concurrent readers — a sound
  over-approximation that can only *miss* races between readers, and
  read/read pairs are never races anyway);
* semaphore release -> acquire (conservative for counting semaphores);
* condition notify -> the woken thread's resume;
* spawn -> child start, child finish/crash -> join;
* barrier trip: every party member's clock joins every other's.

Two accesses to the same variable race when at least one is a write, they
come from different threads, their clocks are concurrent, and they are not
both atomic operations.  This is the classic sound-and-complete (for the
observed trace) dynamic race definition; unlike lockset it reports no
false positives, but it only sees races adjacent in the explored trace's
ordering — the study's implication sections discuss exactly this
trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.detectors.base import Detector, Finding, FindingKind, Report
from repro.detectors.vectorclock import VectorClock
from repro.sim import events as ev
from repro.sim.trace import Trace

__all__ = ["HappensBeforeDetector"]


@dataclass(frozen=True)
class _Access:
    thread: str
    seq: int
    clock: VectorClock
    is_write: bool
    atomic: bool


class HappensBeforeDetector(Detector):
    """Vector-clock data-race detector (sound on the observed trace)."""

    name = "happens-before"

    def analyse(self, trace: Trace) -> Report:
        report = Report(detector=self.name)
        state = _HBState()
        for event in trace:
            state.process(event, report)
        return report


class _HBState:
    """Mutable clocks and access histories during one trace replay."""

    def __init__(self) -> None:
        self.thread_clocks: Dict[str, VectorClock] = {}
        self.sync_clocks: Dict[str, VectorClock] = {}
        self.spawn_clocks: Dict[str, VectorClock] = {}
        self.final_clocks: Dict[str, VectorClock] = {}
        self.notify_clocks: Dict[Tuple[str, str], VectorClock] = {}
        # Per-variable: last writes and reads since the last write.
        self.last_write: Dict[str, Optional[_Access]] = {}
        self.reads_since_write: Dict[str, List[_Access]] = {}
        # Barrier arrival bookkeeping: clocks of parked arrivals.
        self.barrier_clocks: Dict[str, List[VectorClock]] = {}

    # -- clock helpers ------------------------------------------------------

    def clock(self, thread: str) -> VectorClock:
        if thread not in self.thread_clocks:
            self.thread_clocks[thread] = VectorClock().tick(thread)
        return self.thread_clocks[thread]

    def advance(self, thread: str) -> None:
        self.thread_clocks[thread] = self.clock(thread).tick(thread)

    def acquire_edge(self, thread: str, obj: str) -> None:
        if obj in self.sync_clocks:
            self.thread_clocks[thread] = self.clock(thread).join(self.sync_clocks[obj])

    def release_edge(self, thread: str, obj: str) -> None:
        current = self.sync_clocks.get(obj, VectorClock())
        self.sync_clocks[obj] = current.join(self.clock(thread))

    # -- event dispatch ----------------------------------------------------------

    def process(self, event: ev.Event, report: Report) -> None:
        thread = event.thread
        if isinstance(event, ev.ThreadStartEvent):
            if thread in self.spawn_clocks:
                self.thread_clocks[thread] = self.clock(thread).join(
                    self.spawn_clocks.pop(thread)
                )
            else:
                self.clock(thread)
            return
        if isinstance(event, ev.SpawnEvent):
            self.spawn_clocks[event.target] = self.clock(thread)
            self.advance(thread)
            return
        if isinstance(event, (ev.ThreadFinishEvent, ev.ThreadCrashEvent)):
            self.final_clocks[thread] = self.clock(thread)
            return
        if isinstance(event, ev.JoinEvent):
            final = self.final_clocks.get(event.target)
            if final is not None:
                self.thread_clocks[thread] = self.clock(thread).join(final)
            self.advance(thread)
            return
        if isinstance(event, ev.AcquireEvent):
            self.acquire_edge(thread, f"lock:{event.lock}")
            self.advance(thread)
            return
        if isinstance(event, ev.TryAcquireEvent):
            if event.success:
                self.acquire_edge(thread, f"lock:{event.lock}")
            self.advance(thread)
            return
        if isinstance(event, ev.ReleaseEvent):
            self.release_edge(thread, f"lock:{event.lock}")
            self.advance(thread)
            return
        if isinstance(event, ev.RWAcquireEvent):
            self.acquire_edge(thread, f"rwlock:{event.rwlock}")
            self.advance(thread)
            return
        if isinstance(event, ev.RWReleaseEvent):
            self.release_edge(thread, f"rwlock:{event.rwlock}")
            self.advance(thread)
            return
        if isinstance(event, ev.WaitParkEvent):
            # Parking releases the lock.
            self.release_edge(thread, f"lock:{event.lock}")
            self.advance(thread)
            return
        if isinstance(event, ev.NotifyEvent):
            for woken in event.woken:
                self.notify_clocks[(event.cond, woken)] = self.clock(thread)
            self.advance(thread)
            return
        if isinstance(event, ev.WaitResumeEvent):
            self.acquire_edge(thread, f"lock:{event.lock}")
            notify = self.notify_clocks.pop((event.cond, thread), None)
            if notify is not None:
                self.thread_clocks[thread] = self.clock(thread).join(notify)
            self.advance(thread)
            return
        if isinstance(event, ev.SemReleaseEvent):
            self.release_edge(thread, f"sem:{event.sem}")
            self.advance(thread)
            return
        if isinstance(event, ev.SemAcquireEvent):
            self.acquire_edge(thread, f"sem:{event.sem}")
            self.advance(thread)
            return
        if isinstance(event, ev.BarrierEvent):
            key = event.barrier
            if event.released:
                # Trip: every member's clock joins every other's.
                clocks = self.barrier_clocks.pop(key, [])
                clocks.append(self.clock(thread))
                merged = VectorClock()
                for c in clocks:
                    merged = merged.join(c)
                for member in event.released:
                    self.thread_clocks[member] = self.clock(member).join(merged)
                    self.advance(member)
            else:
                self.barrier_clocks.setdefault(key, []).append(self.clock(thread))
                self.advance(thread)
            return
        if isinstance(event, (ev.ReadEvent, ev.WriteEvent, ev.AtomicUpdateEvent)):
            self._memory_access(event, report)
            self.advance(thread)
            return
        # Yield / deadlock events carry no ordering information.
        if isinstance(event, ev.YieldEvent):
            self.advance(thread)

    # -- race checking ----------------------------------------------------------

    def _memory_access(self, event: ev.Event, report: Report) -> None:
        thread = event.thread
        var = event.var  # type: ignore[attr-defined]
        is_write = isinstance(event, (ev.WriteEvent, ev.AtomicUpdateEvent))
        is_read = isinstance(event, (ev.ReadEvent, ev.AtomicUpdateEvent))
        atomic = isinstance(event, ev.AtomicUpdateEvent)
        access = _Access(
            thread=thread,
            seq=event.seq,
            clock=self.clock(thread),
            is_write=is_write,
            atomic=atomic,
        )
        previous_write = self.last_write.get(var)
        if previous_write is not None:
            self._check_pair(previous_write, access, var, report)
        if is_write:
            for read in self.reads_since_write.get(var, ()):
                self._check_pair(read, access, var, report)
            self.last_write[var] = access
            self.reads_since_write[var] = []
        if is_read and not is_write:
            self.reads_since_write.setdefault(var, []).append(access)
        elif atomic:
            # Atomic read-modify-write acts as the new write; nothing to keep.
            pass

    @staticmethod
    def _conflicting(a: _Access, b: _Access) -> bool:
        if a.thread == b.thread:
            return False
        if not (a.is_write or b.is_write):
            return False
        if a.atomic and b.atomic:
            return False
        return True

    def _check_pair(self, earlier: _Access, later: _Access, var: str, report: Report) -> None:
        if not self._conflicting(earlier, later):
            return
        if earlier.clock.concurrent_with(later.clock):
            kinds = (
                ("write" if earlier.is_write else "read"),
                ("write" if later.is_write else "read"),
            )
            report.add(
                Finding(
                    kind=FindingKind.DATA_RACE,
                    detector=HappensBeforeDetector.name,
                    description=(
                        f"{kinds[0]} by {earlier.thread} and {kinds[1]} by "
                        f"{later.thread} on {var!r} are unordered"
                    ),
                    threads=tuple(sorted({earlier.thread, later.thread})),
                    variables=(var,),
                    events=(earlier.seq, later.seq),
                )
            )
