"""Happens-before data-race detection over execution traces.

The detector observes the event stream (one shared pass — see
:mod:`repro.detectors.pipeline`), reading the pipeline's vector clocks —
one per thread and one per synchronisation object — which build the
happens-before relation from:

* program order within each thread;
* mutex release -> subsequent acquire of the same mutex (likewise
  try-acquire success and condition-wait re-acquire);
* reader-writer lock release -> acquire (conservatively through a single
  clock per rwlock, which may order concurrent readers — a sound
  over-approximation that can only *miss* races between readers, and
  read/read pairs are never races anyway);
* semaphore release -> acquire (conservative for counting semaphores);
* condition notify -> the woken thread's resume;
* spawn -> child start, child finish/crash -> join;
* barrier trip: every party member's clock joins every other's.

Two accesses to the same variable race when at least one is a write, they
come from different threads, their clocks are concurrent, and they are not
both atomic operations.  This is the classic sound-and-complete (for the
observed trace) dynamic race definition; unlike lockset it reports no
false positives, but it only sees races adjacent in the explored trace's
ordering — the study's implication sections discuss exactly this
trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.detectors.base import Detector, Finding, FindingKind, Report
from repro.detectors.vectorclock import VectorClock
from repro.sim import events as ev

if TYPE_CHECKING:  # pragma: no cover
    from repro.detectors.pipeline import AnalysisState

__all__ = ["HappensBeforeDetector"]


@dataclass(frozen=True)
class _Access:
    thread: str
    seq: int
    clock: VectorClock
    is_write: bool
    atomic: bool


class _HBLocal:
    """Per-pass access histories (the clocks live in the shared state)."""

    __slots__ = ("last_write", "reads_since_write")

    def __init__(self) -> None:
        # Per-variable: last write and reads since the last write.
        self.last_write: Dict[str, Optional[_Access]] = {}
        self.reads_since_write: Dict[str, List[_Access]] = {}

    def copy(self) -> "_HBLocal":
        dup = _HBLocal.__new__(_HBLocal)
        dup.last_write = dict(self.last_write)
        dup.reads_since_write = {
            var: list(reads) for var, reads in self.reads_since_write.items()
        }
        return dup


class HappensBeforeDetector(Detector):
    """Vector-clock data-race detector (sound on the observed trace)."""

    name = "happens-before"
    requires = frozenset({"clocks"})

    def begin(self) -> _HBLocal:
        """Fresh per-variable access histories."""
        return _HBLocal()

    def copy_state(self, local: _HBLocal) -> _HBLocal:
        """Structural copy (accesses and clocks are immutable)."""
        return local.copy()

    def on_event(
        self, event: ev.Event, state: "AnalysisState", local: Any, report: Report
    ) -> None:
        """Check each memory access against prior conflicting accesses."""
        if not isinstance(event, (ev.ReadEvent, ev.WriteEvent, ev.AtomicUpdateEvent)):
            return
        thread = event.thread
        var = event.var
        is_write = isinstance(event, (ev.WriteEvent, ev.AtomicUpdateEvent))
        is_read = isinstance(event, (ev.ReadEvent, ev.AtomicUpdateEvent))
        atomic = isinstance(event, ev.AtomicUpdateEvent)
        access = _Access(
            thread=thread,
            seq=event.seq,
            clock=state.clocks.access_clock,
            is_write=is_write,
            atomic=atomic,
        )
        previous_write = local.last_write.get(var)
        if previous_write is not None:
            _check_pair(previous_write, access, var, report)
        if is_write:
            for read in local.reads_since_write.get(var, ()):
                _check_pair(read, access, var, report)
            local.last_write[var] = access
            local.reads_since_write[var] = []
        if is_read and not is_write:
            local.reads_since_write.setdefault(var, []).append(access)
        elif atomic:
            # Atomic read-modify-write acts as the new write; nothing to keep.
            pass


def _conflicting(a: _Access, b: _Access) -> bool:
    if a.thread == b.thread:
        return False
    if not (a.is_write or b.is_write):
        return False
    if a.atomic and b.atomic:
        return False
    return True


def _check_pair(earlier: _Access, later: _Access, var: str, report: Report) -> None:
    if not _conflicting(earlier, later):
        return
    if earlier.clock.concurrent_with(later.clock):
        kinds = (
            ("write" if earlier.is_write else "read"),
            ("write" if later.is_write else "read"),
        )
        report.add(
            Finding(
                kind=FindingKind.DATA_RACE,
                detector=HappensBeforeDetector.name,
                description=(
                    f"{kinds[0]} by {earlier.thread} and {kinds[1]} by "
                    f"{later.thread} on {var!r} are unordered"
                ),
                threads=tuple(sorted({earlier.thread, later.thread})),
                variables=(var,),
                events=(earlier.seq, later.seq),
            )
        )
