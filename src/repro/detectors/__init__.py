"""Dynamic concurrency-bug detectors.

Implements the detector classes whose strengths and blind spots the
ASPLOS'08 study discusses: happens-before and lockset data-race detection,
AVIO-style atomicity-violation detection, order-violation heuristics, and
deadlock detection (observed + lock-order-graph prediction).
"""

from repro.detectors.atomicity import (
    UNSERIALIZABLE_CASES,
    AtomicityDetector,
    classify_interleaving,
)
from repro.detectors.avio import LearningAVIODetector
from repro.detectors.base import Detector, Finding, FindingKind, Report
from repro.detectors.deadlock import DeadlockDetector, build_lock_order_graph
from repro.detectors.happensbefore import HappensBeforeDetector
from repro.detectors.lockset import LocksetDetector, VariableState
from repro.detectors.orderviolation import OrderViolationDetector
from repro.detectors.pipeline import AnalysisState, DetectorPipeline
from repro.detectors.suite import (
    DetectorSuite,
    StaticComparison,
    SuiteResult,
    default_detectors,
)
from repro.detectors.vectorclock import VectorClock

__all__ = [
    "Detector",
    "Finding",
    "FindingKind",
    "Report",
    "VectorClock",
    "HappensBeforeDetector",
    "LocksetDetector",
    "VariableState",
    "AtomicityDetector",
    "LearningAVIODetector",
    "UNSERIALIZABLE_CASES",
    "classify_interleaving",
    "OrderViolationDetector",
    "DeadlockDetector",
    "build_lock_order_graph",
    "AnalysisState",
    "DetectorPipeline",
    "DetectorSuite",
    "StaticComparison",
    "SuiteResult",
    "default_detectors",
]
