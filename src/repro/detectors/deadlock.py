"""Deadlock detection: observed deadlocks and lock-order-graph prediction.

Two complementary analyses, matching the study's split of deadlock bugs
into one-resource and multi-resource cases (Finding 6: 97% of deadlock
bugs involve at most two resources):

* **Observed deadlocks** — the trace ended in a
  :class:`~repro.sim.events.DeadlockEvent` whose wait-for relation contains
  lock-blocked threads.  Reported with the exact threads and locks.

* **Predicted deadlocks** — a *lock-order graph* is built from the trace:
  an edge ``A -> B`` is recorded every time a thread acquires ``B`` while
  holding ``A``.  A cycle in this graph means some other schedule can
  deadlock, even when the observed trace completed fine — the classic
  Goodlock-style prediction, and the reason lock-order analysis catches
  the two-resource deadlocks of Table 5 from a *successful* test run.
  Self-edges (re-acquiring a held mutex) are the one-resource case.

The graph is built with :mod:`networkx`, which also supplies cycle
enumeration.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import networkx as nx

from repro.detectors.base import Detector, Finding, FindingKind, Report
from repro.sim import events as ev
from repro.sim.trace import Trace

__all__ = ["DeadlockDetector", "build_lock_order_graph"]


def build_lock_order_graph(trace: Trace) -> "nx.DiGraph":
    """Directed graph over lock names; edge A->B = B acquired holding A.

    Edge attribute ``witnesses`` collects ``(thread, held_seq, acq_seq)``
    triples.  Self-loops record re-acquisition attempts of a held mutex —
    these come from the *pending* operation of a thread blocked on itself,
    which the trace exposes through the terminal deadlock event.
    """
    graph = nx.DiGraph()
    held: Dict[str, Dict[str, int]] = {}
    for event in trace:
        locks = held.setdefault(event.thread, {})
        if isinstance(event, ev.AcquireEvent) or (
            isinstance(event, ev.TryAcquireEvent) and event.success
        ):
            for prior, prior_seq in locks.items():
                _add_edge(graph, prior, event.lock, (event.thread, prior_seq, event.seq))
            locks[event.lock] = event.seq
        elif isinstance(event, ev.WaitResumeEvent):
            for prior, prior_seq in locks.items():
                _add_edge(graph, prior, event.lock, (event.thread, prior_seq, event.seq))
            locks[event.lock] = event.seq
        elif isinstance(event, (ev.ReleaseEvent, ev.WaitParkEvent)):
            locks.pop(event.lock, None)
        elif isinstance(event, ev.DeadlockEvent):
            # Blocked acquires never executed, but the wait-for info names
            # the lock each stuck thread wanted; add those edges too.
            for thread, waiting in event.blocked:
                if not waiting.startswith("lock:"):
                    continue
                wanted = waiting.split(":", 1)[1].split("(", 1)[0]
                for prior, prior_seq in held.get(thread, {}).items():
                    _add_edge(graph, prior, wanted, (thread, prior_seq, event.seq))
    return graph


def _add_edge(graph: "nx.DiGraph", src: str, dst: str, witness: Tuple[str, int, int]) -> None:
    if graph.has_edge(src, dst):
        graph.edges[src, dst]["witnesses"].append(witness)
    else:
        graph.add_edge(src, dst, witnesses=[witness])


class DeadlockDetector(Detector):
    """Observed-deadlock reporting plus lock-order cycle prediction."""

    name = "deadlock"

    def analyse(self, trace: Trace) -> Report:
        report = Report(detector=self.name)
        self._observed(trace, report)
        self._predicted(trace, report)
        return report

    # -- observed ------------------------------------------------------------

    def _observed(self, trace: Trace, report: Report) -> None:
        deadlock = trace.deadlock()
        if deadlock is None:
            return
        lock_blocked = [
            (thread, waiting)
            for thread, waiting in deadlock.blocked
            if waiting.startswith("lock:") or waiting.startswith("rwlock:")
        ]
        if not lock_blocked:
            return
        resources = sorted(
            {w.split(":", 1)[1].split("(", 1)[0] for _, w in lock_blocked}
        )
        report.add(
            Finding(
                kind=FindingKind.DEADLOCK,
                detector=self.name,
                description=(
                    "circular wait observed: "
                    + ", ".join(f"{t} blocked on {w}" for t, w in lock_blocked)
                ),
                threads=tuple(sorted(t for t, _ in lock_blocked)),
                resources=tuple(resources),
                events=(deadlock.seq,),
            )
        )

    # -- predicted --------------------------------------------------------------

    def _predicted(self, trace: Trace, report: Report) -> None:
        graph = build_lock_order_graph(trace)
        seen: Set[frozenset] = set()
        for cycle in nx.simple_cycles(graph):
            key = frozenset(cycle)
            if key in seen:
                continue
            seen.add(key)
            threads: Set[str] = set()
            events: List[int] = []
            cycle_edges = list(zip(cycle, cycle[1:] + cycle[:1]))
            for src, dst in cycle_edges:
                for thread, _, acq_seq in graph.edges[src, dst]["witnesses"]:
                    threads.add(thread)
                    events.append(acq_seq)
            order = " -> ".join(cycle + [cycle[0]])
            kind = (
                FindingKind.DEADLOCK
                if len(cycle) == 1
                else FindingKind.POTENTIAL_DEADLOCK
            )
            description = (
                f"self-wait on {cycle[0]!r} (re-acquiring a held mutex)"
                if len(cycle) == 1
                else f"lock-order cycle {order}: some schedule can deadlock"
            )
            report.add(
                Finding(
                    kind=kind,
                    detector=self.name,
                    description=description,
                    threads=tuple(sorted(threads)),
                    resources=tuple(sorted(set(cycle))),
                    events=tuple(sorted(events)),
                )
            )
