"""Deadlock detection: observed deadlocks and lock-order-graph prediction.

Two complementary analyses, matching the study's split of deadlock bugs
into one-resource and multi-resource cases (Finding 6: 97% of deadlock
bugs involve at most two resources):

* **Observed deadlocks** — the trace ended in a
  :class:`~repro.sim.events.DeadlockEvent` whose wait-for relation contains
  lock-blocked threads.  Reported with the exact threads and locks.

* **Predicted deadlocks** — a *lock-order graph* is built from the trace:
  an edge ``A -> B`` is recorded every time a thread acquires ``B`` while
  holding ``A``.  A cycle in this graph means some other schedule can
  deadlock, even when the observed trace completed fine — the classic
  Goodlock-style prediction, and the reason lock-order analysis catches
  the two-resource deadlocks of Table 5 from a *successful* test run.
  Self-edges (re-acquiring a held mutex) are the one-resource case.

The lock-order edges are maintained incrementally by the shared
:class:`~repro.detectors.pipeline.LockOrderTracker`; this detector only
reads the finished graph, so it is a pure :meth:`Detector.finish`
analysis with no per-event work of its own.  The graph is built with
:mod:`networkx`, which also supplies cycle enumeration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Set

import networkx as nx

from repro.detectors.base import Detector, Finding, FindingKind, Report
from repro.detectors.pipeline import LockOrderTracker
from repro.sim import events as ev
from repro.sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.detectors.pipeline import AnalysisState

__all__ = ["DeadlockDetector", "build_lock_order_graph"]


def build_lock_order_graph(trace: Trace) -> "nx.DiGraph":
    """Directed graph over lock names; edge A->B = B acquired holding A.

    Edge attribute ``witnesses`` collects ``(thread, held_seq, acq_seq)``
    triples.  Self-loops record re-acquisition attempts of a held mutex —
    these come from the *pending* operation of a thread blocked on itself,
    which the trace exposes through the terminal deadlock event.
    """
    tracker = LockOrderTracker()
    for event in trace:
        tracker.apply(event)
    return tracker.graph()


class DeadlockDetector(Detector):
    """Observed-deadlock reporting plus lock-order cycle prediction."""

    name = "deadlock"
    requires = frozenset({"lock_order"})

    def finish(self, state: "AnalysisState", local: Any, report: Report) -> None:
        """Report the observed deadlock (if any) and predicted cycles."""
        self._observed(state.deadlock, report)
        self._predicted(state.lock_order.graph(), report)

    # -- observed ------------------------------------------------------------

    def _observed(
        self, deadlock: Optional[ev.DeadlockEvent], report: Report
    ) -> None:
        if deadlock is None:
            return
        lock_blocked = [
            (thread, waiting)
            for thread, waiting in deadlock.blocked
            if waiting.startswith("lock:") or waiting.startswith("rwlock:")
        ]
        if not lock_blocked:
            return
        resources = sorted(
            {w.split(":", 1)[1].split("(", 1)[0] for _, w in lock_blocked}
        )
        report.add(
            Finding(
                kind=FindingKind.DEADLOCK,
                detector=self.name,
                description=(
                    "circular wait observed: "
                    + ", ".join(f"{t} blocked on {w}" for t, w in lock_blocked)
                ),
                threads=tuple(sorted(t for t, _ in lock_blocked)),
                resources=tuple(resources),
                events=(deadlock.seq,),
            )
        )

    # -- predicted --------------------------------------------------------------

    def _predicted(self, graph: "nx.DiGraph", report: Report) -> None:
        seen: Set[frozenset] = set()
        for cycle in nx.simple_cycles(graph):
            key = frozenset(cycle)
            if key in seen:
                continue
            seen.add(key)
            threads: Set[str] = set()
            events: List[int] = []
            cycle_edges = list(zip(cycle, cycle[1:] + cycle[:1]))
            for src, dst in cycle_edges:
                for thread, _, acq_seq in graph.edges[src, dst]["witnesses"]:
                    threads.add(thread)
                    events.append(acq_seq)
            order = " -> ".join(cycle + [cycle[0]])
            kind = (
                FindingKind.DEADLOCK
                if len(cycle) == 1
                else FindingKind.POTENTIAL_DEADLOCK
            )
            description = (
                f"self-wait on {cycle[0]!r} (re-acquiring a held mutex)"
                if len(cycle) == 1
                else f"lock-order cycle {order}: some schedule can deadlock"
            )
            report.add(
                Finding(
                    kind=kind,
                    detector=self.name,
                    description=description,
                    threads=tuple(sorted(threads)),
                    resources=tuple(sorted(set(cycle))),
                    events=tuple(sorted(events)),
                )
            )
