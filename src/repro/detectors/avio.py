"""AVIO with invariant learning (the full algorithm, not just the table).

:class:`AtomicityDetector` flags *every* unserializable interleaving; the
actual AVIO system (Lu et al., the same group as the study) goes further:
it **learns access-interleaving invariants from passing runs** and only
reports unserializable interleavings that never occurred in training.
Learning is what turned atomicity detection practical — code that is
legitimately non-atomic (e.g. statistics counters where staleness is
fine) interleaves unserializably in *correct* runs too, and training
whitelists it.

Workflow::

    detector = LearningAVIODetector()
    detector.train(passing_traces)          # correct runs
    report = detector.analyse(failing_trace)

Invariants are keyed by the *static site pair* (operation labels when
present, synthesised ids otherwise) plus the unserializable case letter
triple, so learning generalises across runs of the same program rather
than memorising dynamic indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Optional, Set, Tuple

from repro.detectors.atomicity import (
    UNSERIALIZABLE_CASES,
    PairTracker,
    classify_interleaving,
)
from repro.detectors.base import Detector, Finding, FindingKind, Report
from repro.sim import events as ev
from repro.sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.detectors.pipeline import AnalysisState

__all__ = ["LearningAVIODetector"]

#: (variable, local-pair site ids, remote site id, case letters)
InvariantKey = Tuple[str, Tuple[str, str], str, Tuple[str, str, str]]


@dataclass(frozen=True)
class _SitedAccess:
    seq: int
    thread: str
    var: str
    is_write: bool
    site: str


def _sited_access(event: ev.Event) -> Optional[_SitedAccess]:
    """The event as a site-annotated access (``None`` for non-accesses)."""
    if not event.is_memory_access:
        return None
    var = event.var  # type: ignore[attr-defined]
    is_write = isinstance(event, (ev.WriteEvent, ev.AtomicUpdateEvent))
    if event.label is not None:
        site = event.label
    else:
        # Static-site approximation for unlabelled programs: AVIO keys
        # invariants by instruction, so repeated executions of the same
        # access (loop iterations) must share one site id — no
        # occurrence counter here, unlike the coverage metric.
        site = f"{event.thread}:{var}:{'w' if is_write else 'r'}"
    return _SitedAccess(
        seq=event.seq, thread=event.thread, var=var,
        is_write=is_write, site=site,
    )


def _triples(tracker: PairTracker, event: ev.Event):
    """Unserializable ``(key, access, p, c, remote)`` triples ``event`` completes."""
    access = _sited_access(event)
    if access is None:
        return
    for p, c, remote in tracker.observe(access):
        case = classify_interleaving(p.is_write, c.is_write, remote.is_write)
        if case not in UNSERIALIZABLE_CASES:
            continue
        key: InvariantKey = (access.var, (p.site, c.site), remote.site, case)
        yield key, p, c, remote


class LearningAVIODetector(Detector):
    """Atomicity detection with invariants learned from passing runs."""

    name = "avio-learning"

    def __init__(self) -> None:
        self._whitelist: Set[InvariantKey] = set()
        self.trained_traces = 0

    def train(self, traces: Iterable[Trace]) -> int:
        """Learn from passing runs; returns invariants whitelisted so far.

        Any unserializable interleaving observed in a *correct* run is a
        benign non-atomicity and will not be reported by ``analyse``.
        """
        for trace in traces:
            tracker = PairTracker()
            for event in trace:
                for key, _p, _c, _remote in _triples(tracker, event):
                    self._whitelist.add(key)
            self.trained_traces += 1
        return len(self._whitelist)

    def begin(self) -> PairTracker:
        """Fresh local-pair tracker (the whitelist lives on the detector)."""
        return PairTracker()

    def copy_state(self, local: PairTracker) -> PairTracker:
        """Structural copy of the pair tracker."""
        return local.copy()

    def on_event(
        self, event: ev.Event, state: "AnalysisState", local: Any, report: Report
    ) -> None:
        """Report unserializable interleavings absent from the whitelist."""
        for key, p, c, remote in _triples(local, event):
            if key in self._whitelist:
                continue
            var, (p_site, c_site), remote_site, case = key
            pattern = "".join(case)
            report.add(
                Finding(
                    kind=FindingKind.ATOMICITY_VIOLATION,
                    detector=self.name,
                    description=(
                        f"novel unserializable interleaving {pattern} on "
                        f"{var!r}: remote {remote_site} between {p_site} "
                        f"and {c_site} (never seen in "
                        f"{self.trained_traces} passing runs)"
                    ),
                    threads=(remote.thread,),
                    variables=(var,),
                    events=(p.seq, remote.seq, c.seq),
                )
            )
