"""Failure-report bundles: everything a maintainer needs from one repro.

The study's subjects are bug-tracker entries; this module closes the
loop by *producing* one.  Given a program and its failure oracle,
:func:`build_bug_report` assembles:

* the minimal-preemption witness schedule (deterministic repro recipe,
  also serialised as JSON for attachment);
* the full event trace of the witness;
* every detector finding on the failing trace;
* the statistical context: manifestation rate under random testing with
  a Wilson interval, and how many stress runs a tester would have needed
  to see the bug once.

``BugReport.to_markdown()`` renders the classic well-formed concurrency
bug report the paper wishes developers had filed.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, List, Optional

from repro.detectors.base import Finding
from repro.obs import runlog as obs_runlog
from repro.detectors.suite import DetectorSuite
from repro.manifest.stats import runs_needed, wilson_interval
from repro.sim.engine import RunResult
from repro.sim.minimize import MinimalWitness, minimize_preemptions
from repro.sim.program import Program
from repro.sim.replay import schedule_to_json
from repro.sim.scheduler import RandomScheduler

__all__ = ["BugReport", "build_bug_report"]


@dataclass
class BugReport:
    """A complete, self-contained failure report."""

    program: str
    witness: MinimalWitness
    findings: List[Finding]
    random_rate: float
    random_runs: int
    rate_interval: tuple
    stress_runs_for_95: Optional[int]

    @property
    def schedule_json(self) -> str:
        """The witness schedule, serialised for attachment."""
        return schedule_to_json(self.witness.run.schedule)

    def to_markdown(self) -> str:
        """Render the report as a markdown document."""
        run = self.witness.run
        lines = [
            f"# Concurrency failure report: {self.program}",
            "",
            "## Summary",
            "",
            f"* outcome: **{run.status.value}**"
            + (f" ({'; '.join(run.crash_reasons)})" if run.crash_reasons else ""),
            f"* minimal witness: {self.witness.preemptions} pre-emptive "
            f"context switch(es) over {len(run.schedule)} steps",
            f"* manifestation under random testing: "
            f"{self.random_rate:.1%} of {self.random_runs} runs "
            f"(95% CI {self.rate_interval[0]:.1%}..{self.rate_interval[1]:.1%})",
        ]
        if self.stress_runs_for_95 is not None:
            lines.append(
                f"* expected stress-testing effort: ~{self.stress_runs_for_95} "
                f"runs for 95% confidence of seeing it once"
            )
        lines += [
            "",
            "## Deterministic reproduction",
            "",
            "Replay this schedule with `repro.sim.replay`:",
            "",
            "```json",
            self.schedule_json,
            "```",
            "",
            "## Witness trace",
            "",
            "```",
            (
                run.trace.format_columns(width=26)
                if len(run.trace.threads()) <= 4
                else run.trace.format()
            ),
            "```",
            "",
            "## Detector findings",
            "",
        ]
        if self.findings:
            lines.extend(f"* {finding.summary()}" for finding in self.findings)
        else:
            lines.append("* (no detector flagged this failure)")
        return "\n".join(lines)


def build_bug_report(
    program: Program,
    failure: Callable[[RunResult], bool],
    random_runs: int = 200,
    max_bound: int = 4,
    max_schedules_per_bound: int = 60000,
) -> Optional[BugReport]:
    """Assemble a :class:`BugReport`, or ``None`` if no failure is reachable."""
    start = perf_counter()
    witness = minimize_preemptions(
        program,
        failure,
        max_bound=max_bound,
        max_schedules_per_bound=max_schedules_per_bound,
    )
    if witness is None:
        return None
    suite = DetectorSuite.for_program(program)
    suite_result = suite.analyse(witness.run.trace)
    findings = [f for report in suite_result.reports.values() for f in report]

    from repro.sim.engine import run_program

    manifested = 0
    for seed in range(random_runs):
        run = run_program(program, RandomScheduler(seed=seed))
        if failure(run):
            manifested += 1
    rate = manifested / random_runs if random_runs else 0.0
    interval = wilson_interval(manifested, random_runs)
    stress = None
    if 0 < rate < 1:
        stress = runs_needed(rate, confidence=0.95)
    elif rate == 0 and random_runs:
        # Use the interval's upper bound as the optimistic probability.
        upper = interval[1]
        stress = runs_needed(upper, confidence=0.95) if upper > 0 else None
    elif rate == 1.0:
        stress = 1
    if obs_runlog.active_runlog() is not None:
        obs_runlog.emit(
            "bug_report",
            program=program.name,
            args={
                "random_runs": random_runs,
                "max_bound": max_bound,
                "max_schedules_per_bound": max_schedules_per_bound,
            },
            result={
                "witness_preemptions": witness.preemptions,
                "witness_steps": len(witness.run.schedule),
                "findings": len(findings),
                "random_rate": rate,
                "stress_runs_for_95": stress,
            },
            wall_seconds=perf_counter() - start,
        )
    return BugReport(
        program=program.name,
        witness=witness,
        findings=findings,
        random_rate=rate,
        random_runs=random_runs,
        rate_interval=interval,
        stress_runs_for_95=stress,
    )
