"""Command-line interface: ``python -m repro <command>``.

Commands:

``report [--quick]``
    The full study report (tables, findings, kernel evidence).
``tables [ID ...]``
    Render all tables, or just the named ones (e.g. ``T3 T7``).
``findings``
    Re-derive findings F1-F10 and print pass/fail.
``kernels``
    List the executable bug kernels.
``kernel NAME [--workers N] [--reduction R]``
    Drive one kernel end to end: manifest, minimal witness, fix check.
``detect NAME [--workers N] [--reduction R] [--online]``
    Run the detector battery on a manifesting trace of kernel NAME;
    ``--online`` streams the detectors along the whole exploration
    instead (every interleaving analysed, shared prefixes once).
``estimate NAME [--runs N] [--workers N] [--reduction R]``
    Manifestation rates under cooperative/random/PCT/enforced testing.
``static [NAME] [--json] [--direct] [--workers N] [--reduction R]``
    Static analysis of kernel NAME (default: every kernel), zero
    schedules, cross-checked against dynamic exploration for a
    precision/recall report; ``--direct`` additionally compares
    race-directed vs undirected schedules-to-first-manifestation,
    ``--json`` emits the machine-readable report.  Everywhere it
    appears, ``--reduction {none,sleepset,dpor}`` selects the
    partial-order reduction the underlying exploration runs under
    (``docs/simulator.md``).
``bug BUG_ID``
    Show one bug record (try ``mysql-nd-binlog-rotate``).
``validate``
    Database invariants + findings, exit non-zero on any failure.
``fuzz [--programs N] [--deadlocks]``
    Cross-check plain DFS against sleep-set reduction on random programs.
``bug-report NAME [--runs N]``
    Emit a complete markdown failure report for one kernel.

Every subcommand additionally accepts the observability flags
(``docs/observability.md``):

``--metrics-out PATH``
    Append structured JSONL run records (one per exploration /
    estimator sweep, plus a final per-command summary carrying the full
    metrics snapshot) to PATH.
``--profile``
    Print a hot-path span table (engine execution, fingerprinting,
    shard dispatch/merge) to stderr when the command finishes.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.bugdb import BugDatabase, validate_database
from repro.study import all_tables, check_all, generate_report

__all__ = ["main", "build_parser"]


def _worker_count(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the ``repro`` command."""
    from repro.sim.explorer import REDUCTIONS

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Learning from Mistakes' (ASPLOS 2008): "
            "concurrency bug characteristics, executable."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    # Observability flags, shared by every subcommand (docs/observability.md).
    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="append JSONL run records + a metrics snapshot to PATH",
    )
    obs_flags.add_argument(
        "--profile", action="store_true",
        help="print a hot-path span table to stderr on exit",
    )

    report = commands.add_parser(
        "report", help="full study report", parents=[obs_flags]
    )
    report.add_argument(
        "--quick", action="store_true", help="skip exploration-heavy kernel evidence"
    )

    tables = commands.add_parser(
        "tables", help="render study tables", parents=[obs_flags]
    )
    tables.add_argument("ids", nargs="*", help="table ids (default: all)")
    tables.add_argument("--csv", action="store_true", help="emit CSV instead of ASCII")

    commands.add_parser(
        "findings", help="re-derive findings F1-F10", parents=[obs_flags]
    )
    commands.add_parser(
        "kernels", help="list executable bug kernels", parents=[obs_flags]
    )

    workers_help = ("run exploration across N worker processes (composes "
                    "with --reduction dpor via speculative parallel DPOR)")
    reduction_help = ("partial-order reduction for the exploration: "
                      "none (default), sleepset, or dpor; dpor composes "
                      "with --workers and a preemption bound")
    kernel = commands.add_parser(
        "kernel", help="drive one kernel end to end", parents=[obs_flags]
    )
    kernel.add_argument("name")
    kernel.add_argument("--workers", type=_worker_count, default=None,
                        help=workers_help)
    kernel.add_argument("--reduction", choices=REDUCTIONS, default=None,
                        help=reduction_help)

    detect = commands.add_parser(
        "detect", help="detectors on a manifesting trace", parents=[obs_flags]
    )
    detect.add_argument("name")
    detect.add_argument("--workers", type=_worker_count, default=None,
                        help=workers_help)
    detect.add_argument(
        "--online", action="store_true",
        help="stream detectors along the exploration (analyse every "
             "interleaving, sharing work across schedule prefixes)",
    )
    detect.add_argument("--reduction", choices=REDUCTIONS, default=None,
                        help=reduction_help)

    estimate = commands.add_parser(
        "estimate", help="manifestation-rate estimates", parents=[obs_flags]
    )
    estimate.add_argument("name")
    estimate.add_argument("--runs", type=int, default=100)
    estimate.add_argument("--workers", type=_worker_count, default=None,
                          help="split the seeded runs across N worker processes")
    estimate.add_argument("--reduction", choices=REDUCTIONS, default=None,
                          help=reduction_help + " (exhaustive row)")

    static = commands.add_parser(
        "static",
        help="static analysis + precision/recall vs dynamic findings",
        parents=[obs_flags],
    )
    static.add_argument(
        "name", nargs="?", default=None,
        help="kernel name (default: every registered kernel)",
    )
    static.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    static.add_argument(
        "--direct", action="store_true",
        help="also compare race-directed vs undirected exploration "
             "(schedules to first manifestation)",
    )
    static.add_argument("--workers", type=_worker_count, default=None,
                        help=workers_help)
    static.add_argument("--reduction", choices=REDUCTIONS, default=None,
                        help=reduction_help + " (dynamic cross-check)")

    bug = commands.add_parser(
        "bug", help="show one bug record", parents=[obs_flags]
    )
    bug.add_argument("bug_id")

    commands.add_parser(
        "validate", help="check database invariants + findings",
        parents=[obs_flags],
    )

    fuzz = commands.add_parser(
        "fuzz",
        help="cross-check plain DFS vs sleep-set reduction on random programs",
        parents=[obs_flags],
    )
    fuzz.add_argument("--programs", type=int, default=50)
    fuzz.add_argument("--seed-base", type=int, default=0)
    fuzz.add_argument("--budget", type=int, default=8000,
                      help="max schedules per exploration")
    fuzz.add_argument("--deadlocks", action="store_true",
                      help="allow inverted lock pairs (ABBA deadlocks)")

    report_cmd = commands.add_parser(
        "bug-report", help="markdown failure report for one kernel",
        parents=[obs_flags],
    )
    report_cmd.add_argument("name")
    report_cmd.add_argument("--runs", type=int, default=100)
    return parser


def _cmd_report(args) -> int:
    report = generate_report(quick=args.quick)
    print(report.format())
    return 0 if report.all_findings_pass else 1


def _cmd_tables(args) -> int:
    tables = all_tables()
    wanted = [i.upper() for i in args.ids] or sorted(tables)
    unknown = [i for i in wanted if i not in tables]
    if unknown:
        print(f"unknown table id(s): {', '.join(unknown)}; "
              f"available: {', '.join(sorted(tables))}", file=sys.stderr)
        return 2
    for table_id in wanted:
        if args.csv:
            print(tables[table_id].to_csv(), end="")
        else:
            print(tables[table_id].format())
            print()
    return 0


def _cmd_findings(_args) -> int:
    results = check_all()
    for result in results:
        print(result.summary())
    return 0 if all(r.passed for r in results) else 1


def _cmd_kernels(_args) -> int:
    from repro.kernels import all_kernels

    for kernel in all_kernels():
        print(kernel.summary())
    return 0


def _get_kernel_or_fail(name: str):
    from repro.kernels import get_kernel, kernel_names

    try:
        return get_kernel(name)
    except KeyError:
        print(f"unknown kernel {name!r}; available:", file=sys.stderr)
        for known in kernel_names():
            print(f"  {known}", file=sys.stderr)
        return None


def _cmd_kernel(args) -> int:
    from repro.sim import minimize_preemptions

    kernel = _get_kernel_or_fail(args.name)
    if kernel is None:
        return 2
    print(kernel.summary())
    print(f"  {kernel.description}")
    witness = minimize_preemptions(kernel.buggy, kernel.failure)
    if witness is None:
        print("  no manifesting schedule found")
        return 1
    print(f"  minimal witness: {witness.preemptions} preemption(s), "
          f"schedule {witness.run.schedule}")
    print(f"  outcome: {witness.run.summary()}")
    clean = kernel.verify_fixed(workers=args.workers, reduction=args.reduction)
    print(f"  fix '{kernel.fix_strategy.value}': "
          f"{'verified clean over every schedule' if clean else 'STILL BUGGY'}")
    return 0 if clean else 1


def _cmd_detect(args) -> int:
    from repro.detectors import DetectorSuite

    kernel = _get_kernel_or_fail(args.name)
    if kernel is None:
        return 2
    if args.online:
        suite = DetectorSuite.for_program(kernel.buggy)
        result = suite.analyse_online(
            kernel.buggy, workers=args.workers, reduction=args.reduction
        )
        exploration = result.exploration
        assert exploration is not None
        print(exploration.summary())
        stats = exploration.pipeline_stats or {}
        print(
            "pipeline: {dispatched} events dispatched, {reused} reused "
            "({ratio:.0%} of analysed events came from shared prefixes), "
            "{passes} passes".format(
                dispatched=stats.get("events_dispatched", 0),
                reused=stats.get("events_reused", 0),
                ratio=stats.get("reuse_ratio", 0.0),
                passes=stats.get("passes", 0),
            )
        )
        first = stats.get("first_finding_step")
        if first is not None:
            print(f"first finding at trace step {first}")
        print()
        print(result.format())
        return 0
    failing = kernel.find_manifestation(
        workers=args.workers, reduction=args.reduction
    )
    if failing is None:
        print("kernel did not manifest", file=sys.stderr)
        return 1
    print(failing.trace.format())
    print()
    result = DetectorSuite.for_program(kernel.buggy).analyse(failing.trace)
    print(result.format())
    return 0


def _cmd_estimate(args) -> int:
    from repro.manifest import compare_strategies

    kernel = _get_kernel_or_fail(args.name)
    if kernel is None:
        return 2
    estimates = compare_strategies(
        kernel, runs=args.runs, workers=args.workers, reduction=args.reduction
    )
    for estimate in estimates.values():
        print(estimate.summary())
    return 0


def _measure_directed(kernel, workers, reduction=None) -> dict:
    """Schedules to first manifestation, undirected DFS vs race-directed."""
    from repro.sim.explorer import make_explorer

    counts = {}
    for mode, targets in (
        ("undirected", None),
        ("directed", kernel.static_targets()),
    ):
        explorer = make_explorer(
            kernel.buggy, 20000, 5000, None, workers, False,
            keep_matches=1, targets=targets, reduction=reduction,
        )
        result = explorer.explore(predicate=kernel.failure, stop_on_first=True)
        counts[mode] = result.schedules_run if result.found else None
    return counts


def _cmd_static(args) -> int:
    import json

    from repro.detectors import DetectorSuite
    from repro.kernels import all_kernels

    if args.name is not None:
        kernel = _get_kernel_or_fail(args.name)
        if kernel is None:
            return 2
        kernels = [kernel]
    else:
        kernels = list(all_kernels())

    payload = []
    all_sound = True
    for kernel in kernels:
        suite = DetectorSuite.for_program(kernel.buggy, streaming=True)
        comparison = suite.analyse_static(
            kernel.buggy, predicate=kernel.failure, workers=args.workers,
            reduction=args.reduction,
        )
        all_sound = all_sound and comparison.sound
        directed = (
            _measure_directed(kernel, args.workers, args.reduction)
            if args.direct else None
        )
        if args.json:
            record = comparison.to_json()
            if directed is not None:
                record["schedules_to_first"] = directed
            payload.append(record)
            continue
        print(comparison.static.format())
        print(comparison.format())
        if directed is not None:
            print(
                "  schedules to first manifestation: "
                f"undirected {directed['undirected']}, "
                f"directed {directed['directed']}"
            )
        print()
    if args.json:
        print(json.dumps(payload, indent=2))
    elif len(kernels) > 1:
        print(
            "soundness over kernel corpus: "
            + ("every confirmed dynamic finding statically predicted"
               if all_sound else "FAILED — see MISSED lines above")
        )
    return 0 if all_sound else 1


def _cmd_bug(args) -> int:
    db = BugDatabase.load()
    if args.bug_id not in db:
        print(f"unknown bug id {args.bug_id!r} (of {len(db)} records)",
              file=sys.stderr)
        return 2
    record = db.get(args.bug_id)
    print(f"{record.bug_id} ({record.report_ref})")
    print(f"  application: {record.application.value} — {record.component}")
    print(f"  category:    {record.category.value}")
    if record.patterns:
        print(f"  patterns:    {', '.join(p.value for p in record.patterns)}")
    print(f"  impact:      {record.impact.value}")
    print(f"  threads:     {record.threads_involved}")
    if record.variables_involved is not None:
        print(f"  variables:   {record.variables_involved}")
    if record.resources_involved is not None:
        print(f"  resources:   {record.resources_involved}")
    print(f"  accesses:    {record.accesses_to_manifest}")
    print(f"  fix:         {record.fix_strategy.value}"
          + (" (first patch was buggy)" if record.first_fix_buggy else ""))
    if record.kernel:
        print(f"  kernel:      {record.kernel}")
    print(f"  {record.description}")
    return 0


def _cmd_validate(_args) -> int:
    db = BugDatabase.load()
    problems = validate_database(db)
    for problem in problems:
        print(f"invariant violation: {problem}", file=sys.stderr)
    results = check_all(db)
    for result in results:
        print(result.summary())
    ok = not problems and all(r.passed for r in results)
    print("database valid, all findings reproduced" if ok else "FAILED")
    return 0 if ok else 1


def _cmd_fuzz(args) -> int:
    from repro.sim.generate import GeneratorConfig, fuzz_explorers

    config = GeneratorConfig(allow_deadlock=args.deadlocks)
    result = fuzz_explorers(
        programs=args.programs,
        seed_base=args.seed_base,
        config=config,
        max_schedules=args.budget,
    )
    print(result.summary())
    if not result.clean:
        print(f"diverging seeds: {result.mismatch_seeds}", file=sys.stderr)
    return 0 if result.clean else 1


def _cmd_bug_report(args) -> int:
    from repro.reporting import build_bug_report

    kernel = _get_kernel_or_fail(args.name)
    if kernel is None:
        return 2
    report = build_bug_report(kernel.buggy, kernel.failure, random_runs=args.runs)
    if report is None:
        print("no failure reachable", file=sys.stderr)
        return 1
    print(report.to_markdown())
    return 0


_HANDLERS = {
    "report": _cmd_report,
    "tables": _cmd_tables,
    "findings": _cmd_findings,
    "kernels": _cmd_kernels,
    "kernel": _cmd_kernel,
    "detect": _cmd_detect,
    "estimate": _cmd_estimate,
    "static": _cmd_static,
    "bug": _cmd_bug,
    "validate": _cmd_validate,
    "fuzz": _cmd_fuzz,
    "bug-report": _cmd_bug_report,
}


def _run_with_observability(args) -> int:
    """Run one command with metrics/runlog/profiling switched on.

    The registry, run log, and profiler are process-global; they are
    installed for the duration of the command and always torn down, so
    library use of :func:`main` never leaks observability state.
    """
    from repro.obs import metrics, profile, runlog

    registry = metrics.enable()
    profiler = profile.enable() if args.profile else None
    if args.metrics_out:
        runlog.set_runlog(args.metrics_out)
    start = time.perf_counter()
    code = 2
    try:
        code = _HANDLERS[args.command](args)
        return code
    finally:
        if args.metrics_out:
            runlog.emit(
                "cli",
                command=args.command,
                args={
                    k: v for k, v in sorted(vars(args).items())
                    if k not in ("command",) and not callable(v)
                },
                exit_code=code,
                wall_seconds=time.perf_counter() - start,
                metrics=registry.snapshot(),
                profile=profiler.as_dict() if profiler else None,
            )
        if profiler is not None:
            print(profiler.report(), file=sys.stderr)
        metrics.disable()
        profile.disable()
        runlog.clear_runlog()


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if getattr(args, "metrics_out", None) or getattr(args, "profile", False):
        return _run_with_observability(args)
    return _HANDLERS[args.command](args)
