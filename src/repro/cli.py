"""Command-line interface: ``python -m repro <command>``.

Commands:

``report [--quick]``
    The full study report (tables, findings, kernel evidence).
``tables [ID ...]``
    Render all tables, or just the named ones (e.g. ``T3 T7``).
``findings``
    Re-derive findings F1-F10 and print pass/fail.
``kernels [--family F]``
    List the executable bug kernels, optionally one workload family
    (``sc`` / ``weakmem`` / ``actor``).
``kernel [NAME] [--family F] [--workers N] [--reduction R] [--memory M]``
    Drive one kernel end to end: manifest, minimal witness, fix check.
    ``--family`` sweeps every kernel of a family instead; ``--memory``
    re-runs under a different memory model (``sc`` / ``tso``).
``detect NAME [--workers N] [--reduction R] [--memory M] [--online]``
    Run the detector battery on a manifesting trace of kernel NAME;
    ``--online`` streams the detectors along the whole exploration
    instead (every interleaving analysed, shared prefixes once).
``estimate NAME [--runs N] [--workers N] [--reduction R]``
    Manifestation rates under cooperative/random/PCT/enforced testing.
``static [NAME] [--json] [--direct] [--workers N] [--reduction R] [--memory M]``
    Static analysis of kernel NAME (default: every kernel), zero
    schedules, cross-checked against dynamic exploration for a
    precision/recall report; ``--direct`` additionally compares
    race-directed vs undirected schedules-to-first-manifestation,
    ``--json`` emits the machine-readable report.  Everywhere it
    appears, ``--reduction {none,sleepset,dpor}`` selects the
    partial-order reduction the underlying exploration runs under
    (``docs/simulator.md``).
``static --source PATH [--budget N] [--json]``
    Analyze real Python ``threading`` source (one module, or a corpus
    directory such as ``examples/realworld``): the AST frontend extracts
    static candidates, the lifter compiles each module to a simulator
    program, and exploration confirms candidates against the module's
    ``REPRO_EXPECT`` ground-truth annotations (``docs/static.md``).
``lift PATH [--show] [--budget N] [--json]``
    Check one real Python module end to end — frontend, lift, explore —
    and report whether any candidate manifests; ``--show`` prints the
    generated simulator thread bodies.
``bug BUG_ID``
    Show one bug record (try ``mysql-nd-binlog-rotate``).
``validate``
    Database invariants + findings, exit non-zero on any failure.
``fuzz [--programs N] [--deadlocks]``
    Cross-check plain DFS against sleep-set reduction on random programs.
``bug-report NAME [--runs N]``
    Emit a complete markdown failure report for one kernel.
``serve [--socket PATH | --port N] [--fleet N] [--cache-dir DIR]``
    Run the long-running checking service: accept check/detect/explore/
    static jobs over a local socket, schedule them onto a process-pool
    worker fleet, and dedupe identical submissions via the persistent
    result cache (``docs/service.md``).
``submit KERNEL [--kind K] [--wait/--no-wait] [--socket PATH | --port N]``
    Submit one job to a running service and (by default) wait for its
    verdict; takes the same ``--reduction``/``--workers``/``--bound``/
    ``--memoize``/``--memory`` knobs as the one-shot subcommands.
``status [--json] [--shutdown] [--socket PATH | --port N]``
    The service dashboard: queue depth, fleet, totals (cache hits,
    dedup ratio, engine runs), and recent jobs; ``--shutdown``
    additionally asks the service to stop after reporting.

Every subcommand additionally accepts the observability flags
(``docs/observability.md``):

``--metrics-out PATH``
    Append structured JSONL run records (one per exploration /
    estimator sweep, plus a final per-command summary carrying the full
    metrics snapshot) to PATH.
``--profile``
    Print a hot-path span table (engine execution, fingerprinting,
    shard dispatch/merge) to stderr when the command finishes.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.bugdb import BugDatabase, validate_database
from repro.study import all_tables, check_all, generate_report

__all__ = ["main", "build_parser"]


def _worker_count(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the ``repro`` command."""
    from repro.sim.explorer import REDUCTIONS
    from repro.sim.memory import MEMORY_MODELS

    memory_choices = sorted(MEMORY_MODELS)

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Learning from Mistakes' (ASPLOS 2008): "
            "concurrency bug characteristics, executable."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    # Observability flags, shared by every subcommand (docs/observability.md).
    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="append JSONL run records + a metrics snapshot to PATH",
    )
    obs_flags.add_argument(
        "--profile", action="store_true",
        help="print a hot-path span table to stderr on exit",
    )

    report = commands.add_parser(
        "report", help="full study report", parents=[obs_flags]
    )
    report.add_argument(
        "--quick", action="store_true", help="skip exploration-heavy kernel evidence"
    )

    tables = commands.add_parser(
        "tables", help="render study tables", parents=[obs_flags]
    )
    tables.add_argument("ids", nargs="*", help="table ids (default: all)")
    tables.add_argument("--csv", action="store_true", help="emit CSV instead of ASCII")

    commands.add_parser(
        "findings", help="re-derive findings F1-F10", parents=[obs_flags]
    )
    family_help = ("restrict to one kernel family "
                   "(sc / weakmem / actor; see repro.kernels)")
    kernels_cmd = commands.add_parser(
        "kernels", help="list executable bug kernels", parents=[obs_flags]
    )
    kernels_cmd.add_argument("--family", default=None, help=family_help)

    workers_help = ("run exploration across N worker processes (composes "
                    "with --reduction dpor via speculative parallel DPOR)")
    reduction_help = ("partial-order reduction for the exploration: "
                      "none (default), sleepset, or dpor; dpor composes "
                      "with --workers and a preemption bound")
    memory_help = ("memory model to run under: sc (sequential consistency) "
                   "or tso (per-thread store buffers); default: the "
                   "kernel's declared model (docs/simulator.md)")
    kernel = commands.add_parser(
        "kernel", help="drive one kernel end to end", parents=[obs_flags]
    )
    kernel.add_argument(
        "name", nargs="?", default=None,
        help="kernel name (or pass --family to sweep a whole family)",
    )
    kernel.add_argument("--family", default=None,
                        help=family_help + "; drives every kernel in it")
    kernel.add_argument("--workers", type=_worker_count, default=None,
                        help=workers_help)
    kernel.add_argument("--reduction", choices=REDUCTIONS, default=None,
                        help=reduction_help)
    kernel.add_argument("--memory", choices=memory_choices, default=None,
                        help=memory_help)

    detect = commands.add_parser(
        "detect", help="detectors on a manifesting trace", parents=[obs_flags]
    )
    detect.add_argument("name")
    detect.add_argument("--workers", type=_worker_count, default=None,
                        help=workers_help)
    detect.add_argument(
        "--online", action="store_true",
        help="stream detectors along the exploration (analyse every "
             "interleaving, sharing work across schedule prefixes)",
    )
    detect.add_argument("--reduction", choices=REDUCTIONS, default=None,
                        help=reduction_help)
    detect.add_argument("--memory", choices=memory_choices, default=None,
                        help=memory_help)

    estimate = commands.add_parser(
        "estimate", help="manifestation-rate estimates", parents=[obs_flags]
    )
    estimate.add_argument("name")
    estimate.add_argument("--runs", type=int, default=100)
    estimate.add_argument("--workers", type=_worker_count, default=None,
                          help="split the seeded runs across N worker processes")
    estimate.add_argument("--reduction", choices=REDUCTIONS, default=None,
                          help=reduction_help + " (exhaustive row)")

    static = commands.add_parser(
        "static",
        help="static analysis + precision/recall vs dynamic findings",
        parents=[obs_flags],
    )
    static.add_argument(
        "name", nargs="?", default=None,
        help="kernel name (default: every registered kernel)",
    )
    static.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    static.add_argument(
        "--direct", action="store_true",
        help="also compare race-directed vs undirected exploration "
             "(schedules to first manifestation)",
    )
    static.add_argument("--workers", type=_worker_count, default=None,
                        help=workers_help)
    static.add_argument("--reduction", choices=REDUCTIONS, default=None,
                        help=reduction_help + " (dynamic cross-check)")
    static.add_argument("--memory", choices=memory_choices, default=None,
                        help=memory_help)
    static.add_argument(
        "--source", metavar="PATH", default=None,
        help="analyze a real Python threading module (or a directory of "
             "them) instead of a DSL kernel: frontend -> candidates -> "
             "lifted-program confirmation against REPRO_EXPECT annotations",
    )
    static.add_argument(
        "--budget", type=_worker_count, default=800,
        help="max schedules when confirming lifted source modules "
             "(default 800)",
    )

    lift_cmd = commands.add_parser(
        "lift",
        help="compile a real Python threading module into a runnable "
             "simulator program and explore it",
        parents=[obs_flags],
    )
    lift_cmd.add_argument("source", metavar="PATH",
                          help="path to a Python module using threading")
    lift_cmd.add_argument(
        "--show", action="store_true",
        help="print the generated thread bodies (the lifted DSL source)",
    )
    lift_cmd.add_argument(
        "--budget", type=_worker_count, default=800,
        help="max schedules for the exploration (default 800)",
    )
    lift_cmd.add_argument("--json", action="store_true",
                          help="emit the lift verdict as JSON")

    bug = commands.add_parser(
        "bug", help="show one bug record", parents=[obs_flags]
    )
    bug.add_argument("bug_id")

    commands.add_parser(
        "validate", help="check database invariants + findings",
        parents=[obs_flags],
    )

    fuzz = commands.add_parser(
        "fuzz",
        help="cross-check plain DFS vs sleep-set reduction on random programs",
        parents=[obs_flags],
    )
    fuzz.add_argument("--programs", type=int, default=50)
    fuzz.add_argument("--seed-base", type=int, default=0)
    fuzz.add_argument("--budget", type=int, default=8000,
                      help="max schedules per exploration")
    fuzz.add_argument("--deadlocks", action="store_true",
                      help="allow inverted lock pairs (ABBA deadlocks)")

    report_cmd = commands.add_parser(
        "bug-report", help="markdown failure report for one kernel",
        parents=[obs_flags],
    )
    report_cmd.add_argument("name")
    report_cmd.add_argument("--runs", type=int, default=100)

    # Service endpoint flags, shared by submit/status (and serve's bind).
    endpoint_flags = argparse.ArgumentParser(add_help=False)
    endpoint_flags.add_argument(
        "--socket", metavar="PATH", default=None,
        help="Unix socket of the service (default .repro-service.sock)",
    )
    endpoint_flags.add_argument(
        "--port", type=int, default=None,
        help="loopback TCP port instead of a Unix socket",
    )

    serve = commands.add_parser(
        "serve",
        help="run the checking service (job queue + worker fleet + cache)",
        parents=[obs_flags, endpoint_flags],
    )
    serve.add_argument(
        "--fleet", type=_worker_count, default=None,
        help="worker processes in the fleet (default: one per core, <= 4)",
    )
    serve.add_argument(
        "--cache-dir", metavar="DIR", default=".repro-cache",
        help="persistent result-cache directory (default .repro-cache)",
    )
    serve.add_argument(
        "--pool", choices=("auto", "fork", "none"), default="auto",
        help="worker pool: forked processes (auto/fork) or inline threads "
             "(none); see docs/service.md",
    )
    serve.add_argument(
        "--max-pending", type=_worker_count, default=256,
        help="admission control: refuse submissions past this backlog",
    )
    serve.add_argument(
        "--alloc", choices=("fifo", "ucb"), default="fifo",
        help="scheduling policy: run-to-completion FIFO (default) or "
             "UCB bandit slice allocation; see docs/allocator.md",
    )
    serve.add_argument(
        "--slice-budget", type=_worker_count, default=400,
        help="schedule attempts per dispatched slice under --alloc ucb",
    )

    submit = commands.add_parser(
        "submit", help="submit one job to a running service",
        parents=[obs_flags, endpoint_flags],
    )
    submit.add_argument(
        "name",
        help="kernel name (or, with --kind source, a Python module path)",
    )
    submit.add_argument(
        "--kind", choices=[k.value for k in _job_kinds()], default="detect",
        help="what to run (default: detect)",
    )
    submit.add_argument("--workers", type=_worker_count, default=None,
                        help=workers_help)
    submit.add_argument("--reduction", choices=REDUCTIONS, default=None,
                        help=reduction_help)
    submit.add_argument("--bound", type=int, default=None,
                        help="preemption bound for the exploration")
    submit.add_argument("--memoize", action="store_true",
                        help="prune revisited states during the exploration")
    submit.add_argument("--budget", type=_worker_count, default=None,
                        help="max schedules for the exploration")
    submit.add_argument("--memory", choices=memory_choices, default=None,
                        help=memory_help)
    submit.add_argument(
        "--no-wait", action="store_true",
        help="return the job id immediately instead of waiting for "
             "the verdict",
    )
    submit.add_argument("--timeout", type=float, default=None,
                        help="seconds to wait for the verdict")
    submit.add_argument("--json", action="store_true",
                        help="emit the job record as JSON")

    status = commands.add_parser(
        "status", help="dashboard of a running service",
        parents=[obs_flags, endpoint_flags],
    )
    status.add_argument("--json", action="store_true",
                        help="emit the dashboard as JSON")
    status.add_argument(
        "--shutdown", action="store_true",
        help="ask the service to stop after reporting",
    )
    return parser


def _job_kinds():
    from repro.service.jobs import JobKind

    return list(JobKind)


def _cmd_report(args) -> int:
    report = generate_report(quick=args.quick)
    print(report.format())
    return 0 if report.all_findings_pass else 1


def _cmd_tables(args) -> int:
    tables = all_tables()
    wanted = [i.upper() for i in args.ids] or sorted(tables)
    unknown = [i for i in wanted if i not in tables]
    if unknown:
        print(f"unknown table id(s): {', '.join(unknown)}; "
              f"available: {', '.join(sorted(tables))}", file=sys.stderr)
        return 2
    for table_id in wanted:
        if args.csv:
            print(tables[table_id].to_csv(), end="")
        else:
            print(tables[table_id].format())
            print()
    return 0


def _cmd_findings(_args) -> int:
    results = check_all()
    for result in results:
        print(result.summary())
    return 0 if all(r.passed for r in results) else 1


def _family_kernels_or_fail(family: str):
    from repro.kernels import all_kernels, families

    try:
        return all_kernels(family=family)
    except KeyError:
        print(f"unknown kernel family {family!r}; available: "
              f"{', '.join(families())}", file=sys.stderr)
        return None


def _cmd_kernels(args) -> int:
    from repro.kernels import all_kernels

    if args.family is not None:
        kernels = _family_kernels_or_fail(args.family)
        if kernels is None:
            return 2
    else:
        kernels = all_kernels()
    for kernel in kernels:
        print(kernel.summary())
    return 0


def _get_kernel_or_fail(name: str):
    from repro.kernels import get_kernel, kernel_names

    try:
        return get_kernel(name)
    except KeyError:
        print(f"unknown kernel {name!r}; available:", file=sys.stderr)
        for known in kernel_names():
            print(f"  {known}", file=sys.stderr)
        return None


def _with_memory(kernel, memory: Optional[str]):
    """The kernel re-targeted onto ``memory`` (both programs), or as is."""
    import dataclasses

    if memory is None:
        return kernel
    return dataclasses.replace(
        kernel,
        buggy=kernel.buggy.with_memory(memory),
        fixed=kernel.fixed.with_memory(memory),
    )


def _drive_kernel(kernel, args) -> int:
    from repro.sim import minimize_preemptions

    kernel = _with_memory(kernel, getattr(args, "memory", None))
    print(kernel.summary())
    print(f"  {kernel.description}")
    print(f"  memory model: {kernel.buggy.memory}")
    witness = minimize_preemptions(kernel.buggy, kernel.failure)
    if witness is None:
        print("  no manifesting schedule found")
        return 1
    print(f"  minimal witness: {witness.preemptions} preemption(s), "
          f"schedule {witness.run.schedule}")
    print(f"  outcome: {witness.run.summary()}")
    clean = kernel.verify_fixed(workers=args.workers, reduction=args.reduction)
    print(f"  fix '{kernel.fix_strategy.value}': "
          f"{'verified clean over every schedule' if clean else 'STILL BUGGY'}")
    return 0 if clean else 1


def _cmd_kernel(args) -> int:
    if args.name is None and args.family is None:
        print("pass a kernel name or --family FAMILY", file=sys.stderr)
        return 2
    if args.family is not None:
        kernels = _family_kernels_or_fail(args.family)
        if kernels is None:
            return 2
        if args.name is not None:
            kernels = [k for k in kernels if k.name == args.name]
            if not kernels:
                print(f"kernel {args.name!r} is not in family "
                      f"{args.family!r}", file=sys.stderr)
                return 2
    else:
        kernel = _get_kernel_or_fail(args.name)
        if kernel is None:
            return 2
        kernels = [kernel]
    worst = 0
    for i, kernel in enumerate(kernels):
        if i:
            print()
        worst = max(worst, _drive_kernel(kernel, args))
    return worst


def _cmd_detect(args) -> int:
    from repro.detectors import DetectorSuite

    kernel = _get_kernel_or_fail(args.name)
    if kernel is None:
        return 2
    kernel = _with_memory(kernel, args.memory)
    if args.online:
        suite = DetectorSuite.for_program(kernel.buggy)
        result = suite.analyse_online(
            kernel.buggy, workers=args.workers, reduction=args.reduction
        )
        exploration = result.exploration
        assert exploration is not None
        print(exploration.summary())
        stats = exploration.pipeline_stats or {}
        print(
            "pipeline: {dispatched} events dispatched, {reused} reused "
            "({ratio:.0%} of analysed events came from shared prefixes), "
            "{passes} passes".format(
                dispatched=stats.get("events_dispatched", 0),
                reused=stats.get("events_reused", 0),
                ratio=stats.get("reuse_ratio", 0.0),
                passes=stats.get("passes", 0),
            )
        )
        first = stats.get("first_finding_step")
        if first is not None:
            print(f"first finding at trace step {first}")
        print()
        print(result.format())
        return 0
    failing = kernel.find_manifestation(
        workers=args.workers, reduction=args.reduction
    )
    if failing is None:
        print("kernel did not manifest", file=sys.stderr)
        return 1
    print(failing.trace.format())
    print()
    result = DetectorSuite.for_program(kernel.buggy).analyse(failing.trace)
    print(result.format())
    return 0


def _cmd_estimate(args) -> int:
    from repro.manifest import compare_strategies

    kernel = _get_kernel_or_fail(args.name)
    if kernel is None:
        return 2
    estimates = compare_strategies(
        kernel, runs=args.runs, workers=args.workers, reduction=args.reduction
    )
    for estimate in estimates.values():
        print(estimate.summary())
    return 0


def _measure_directed(kernel, workers, reduction=None) -> dict:
    """Schedules to first manifestation, undirected DFS vs race-directed."""
    from repro.sim.explorer import make_explorer

    counts = {}
    for mode, targets in (
        ("undirected", None),
        ("directed", kernel.static_targets()),
    ):
        explorer = make_explorer(
            kernel.buggy, 20000, 5000, None, workers, False,
            keep_matches=1, targets=targets, reduction=reduction,
        )
        result = explorer.explore(predicate=kernel.failure, stop_on_first=True)
        counts[mode] = result.schedules_run if result.found else None
    return counts


def _check_source_module(module, budget: int) -> dict:
    """Frontend -> candidates -> lifted confirmation for one module.

    Returns the machine-readable record; ``record["ok"]`` is the gate:
    buggy modules must have every annotated bug covered by an active
    candidate (recall) and every confirmable bug covered by a *confirmed*
    candidate; fixed modules must explore with no failing terminal
    status.
    """
    from repro.static.lift import confirm
    from repro.static.pysource import annotation_matches
    from repro.static.report import analyse_summary

    report = analyse_summary(module.summary)
    active = report.active()
    outcome = confirm(module.summary, max_schedules=budget)
    confirmed_keys = {
        (o.kind, o.variables, o.resources)
        for o in outcome.outcomes
        if o.confirmed
    }
    bugs = []
    ok = True
    for bug in module.bugs:
        matched = [c for c in active if annotation_matches(bug, c)]
        recalled = bool(matched)
        manifested = any(
            (c.kind, c.variables, c.resources) in confirmed_keys
            for c in matched
        )
        if not recalled or (bug.confirmable and not manifested):
            ok = False
        bugs.append(
            {
                "bug": bug.describe(),
                "recalled": recalled,
                "confirmed": manifested,
                "confirmable": bug.confirmable,
            }
        )
    if module.is_fixed and not outcome.clean:
        ok = False
    return {
        "module": module.name,
        "fixed_of": module.fixed_of,
        "ok": ok,
        "approximate": any(
            t.approximate for t in module.summary.threads.values()
        ),
        "candidates": len(active),
        "confirmed": len(outcome.confirmed),
        "statuses": outcome.statuses,
        "clean": outcome.clean,
        "bugs": bugs,
        "wall_seconds": outcome.wall_seconds,
    }


def _cmd_static_source(args) -> int:
    from repro.static.pysource import SourceError, load_corpus

    import json

    try:
        modules = load_corpus(args.source)
    except SourceError as exc:
        print(f"source analysis failed: {exc}", file=sys.stderr)
        return 2
    names = {m.name for m in modules}
    records = []
    all_ok = True
    for module in modules:
        record = _check_source_module(module, args.budget)
        if module.fixed_of is not None and module.fixed_of not in names:
            record["ok"] = False
            record["bugs"].append(
                {"bug": f"fixed_of {module.fixed_of!r} missing", "recalled": False}
            )
        all_ok = all_ok and record["ok"]
        records.append(record)
    annotated = sum(len(r["bugs"]) for r in records)
    recalled = sum(1 for r in records for b in r["bugs"] if b.get("recalled"))
    if args.json:
        print(
            json.dumps(
                {
                    "modules": records,
                    "recall": (recalled / annotated) if annotated else 1.0,
                    "ok": all_ok,
                },
                indent=2,
            )
        )
        return 0 if all_ok else 1
    for record in records:
        verdict = "ok" if record["ok"] else "FAILED"
        role = (
            f"fixes {record['fixed_of']}" if record["fixed_of"] else "buggy"
        )
        print(
            f"{record['module']:32s} [{role}] {verdict}: "
            f"{record['candidates']} candidate(s), "
            f"{record['confirmed']} confirmed, statuses {record['statuses']}"
        )
        for bug in record["bugs"]:
            mark = "+" if bug.get("confirmed") else ("~" if bug.get("recalled") else "-")
            print(f"    {mark} {bug['bug']}")
    print(
        f"ground-truth recall: {recalled}/{annotated}"
        + ("" if all_ok else "  — GATE FAILED")
    )
    return 0 if all_ok else 1


def _cmd_static(args) -> int:
    import json

    from repro.detectors import DetectorSuite
    from repro.kernels import all_kernels

    if args.source is not None:
        if args.name is not None:
            print("pass a kernel name or --source, not both", file=sys.stderr)
            return 2
        return _cmd_static_source(args)
    if args.name is not None:
        kernel = _get_kernel_or_fail(args.name)
        if kernel is None:
            return 2
        kernels = [kernel]
    else:
        kernels = list(all_kernels())
    kernels = [_with_memory(k, args.memory) for k in kernels]

    payload = []
    all_sound = True
    for kernel in kernels:
        suite = DetectorSuite.for_program(kernel.buggy, streaming=True)
        comparison = suite.analyse_static(
            kernel.buggy, predicate=kernel.failure, workers=args.workers,
            reduction=args.reduction,
        )
        all_sound = all_sound and comparison.sound
        directed = (
            _measure_directed(kernel, args.workers, args.reduction)
            if args.direct else None
        )
        if args.json:
            record = comparison.to_json()
            if directed is not None:
                record["schedules_to_first"] = directed
            payload.append(record)
            continue
        print(comparison.static.format())
        print(comparison.format())
        if directed is not None:
            print(
                "  schedules to first manifestation: "
                f"undirected {directed['undirected']}, "
                f"directed {directed['directed']}"
            )
        print()
    if args.json:
        print(json.dumps(payload, indent=2))
    elif len(kernels) > 1:
        print(
            "soundness over kernel corpus: "
            + ("every confirmed dynamic finding statically predicted"
               if all_sound else "FAILED — see MISSED lines above")
        )
    return 0 if all_sound else 1


def _cmd_lift(args) -> int:
    import json

    from repro.static.lift import confirm, lifted_source
    from repro.static.pysource import SourceError, load_source

    try:
        module = load_source(args.source)
    except (OSError, SourceError) as exc:
        print(f"lift failed: {exc}", file=sys.stderr)
        return 2
    if args.show:
        print(lifted_source(module.summary))
        print()
    outcome = confirm(module.summary, max_schedules=args.budget)
    buggy = bool(outcome.confirmed) or not outcome.clean
    if args.json:
        record = outcome.to_json()
        record["buggy"] = buggy
        print(json.dumps(record, indent=2))
        return 1 if buggy else 0
    print(f"{module.name}: lifted to simulator program "
          f"({len(module.summary.threads)} thread(s))")
    print(f"  explored statuses: {dict(outcome.statuses)}")
    for cand in outcome.outcomes:
        mark = f"CONFIRMED via {cand.how}" if cand.confirmed else "unconfirmed"
        print(f"  [{cand.kind}] {cand.description} — {mark}")
    if not outcome.outcomes:
        print("  no static candidates")
    print(
        "verdict: "
        + ("bug manifested in the lifted program" if buggy
           else "clean — no candidate confirmed, no failing status")
    )
    return 1 if buggy else 0


def _cmd_bug(args) -> int:
    db = BugDatabase.load()
    if args.bug_id not in db:
        print(f"unknown bug id {args.bug_id!r} (of {len(db)} records)",
              file=sys.stderr)
        return 2
    record = db.get(args.bug_id)
    print(f"{record.bug_id} ({record.report_ref})")
    print(f"  application: {record.application.value} — {record.component}")
    print(f"  category:    {record.category.value}")
    if record.patterns:
        print(f"  patterns:    {', '.join(p.value for p in record.patterns)}")
    print(f"  impact:      {record.impact.value}")
    print(f"  threads:     {record.threads_involved}")
    if record.variables_involved is not None:
        print(f"  variables:   {record.variables_involved}")
    if record.resources_involved is not None:
        print(f"  resources:   {record.resources_involved}")
    print(f"  accesses:    {record.accesses_to_manifest}")
    print(f"  fix:         {record.fix_strategy.value}"
          + (" (first patch was buggy)" if record.first_fix_buggy else ""))
    if record.kernel:
        print(f"  kernel:      {record.kernel}")
    print(f"  {record.description}")
    return 0


def _cmd_validate(_args) -> int:
    db = BugDatabase.load()
    problems = validate_database(db)
    for problem in problems:
        print(f"invariant violation: {problem}", file=sys.stderr)
    results = check_all(db)
    for result in results:
        print(result.summary())
    ok = not problems and all(r.passed for r in results)
    print("database valid, all findings reproduced" if ok else "FAILED")
    return 0 if ok else 1


def _cmd_fuzz(args) -> int:
    from repro.sim.generate import GeneratorConfig, fuzz_explorers

    config = GeneratorConfig(allow_deadlock=args.deadlocks)
    result = fuzz_explorers(
        programs=args.programs,
        seed_base=args.seed_base,
        config=config,
        max_schedules=args.budget,
    )
    print(result.summary())
    if not result.clean:
        print(f"diverging seeds: {result.mismatch_seeds}", file=sys.stderr)
    return 0 if result.clean else 1


def _cmd_bug_report(args) -> int:
    from repro.reporting import build_bug_report

    kernel = _get_kernel_or_fail(args.name)
    if kernel is None:
        return 2
    report = build_bug_report(kernel.buggy, kernel.failure, random_runs=args.runs)
    if report is None:
        print("no failure reachable", file=sys.stderr)
        return 1
    print(report.to_markdown())
    return 0


#: Default Unix-socket path shared by ``serve`` and its clients.
DEFAULT_SOCKET = ".repro-service.sock"


def _endpoint(args) -> dict:
    """socket/port keyword arguments from the shared endpoint flags."""
    if args.port is not None:
        if args.socket is not None:
            raise SystemExit("pass --socket or --port, not both")
        return {"port": args.port}
    return {"socket_path": args.socket or DEFAULT_SOCKET}


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service import ReproService, WorkerFleet
    from repro.service.protocol import serve

    fleet = WorkerFleet(size=args.fleet, pool=args.pool)
    service = ReproService(
        cache=args.cache_dir, fleet=fleet, max_pending=args.max_pending,
        alloc=args.alloc, slice_budget=args.slice_budget,
    )
    endpoint = _endpoint(args)
    where = endpoint.get("socket_path") or f"127.0.0.1:{endpoint['port']}"
    print(
        f"repro service listening on {where} — fleet {fleet.size} "
        f"({fleet.mode}), alloc {service.alloc}, cache {service.cache.root}",
        file=sys.stderr,
    )
    try:
        asyncio.run(serve(service, **endpoint))
    except KeyboardInterrupt:
        pass
    print("repro service stopped", file=sys.stderr)
    return 0


def _client(args):
    from repro.service.protocol import ServiceClient

    return ServiceClient(**_endpoint(args), timeout=600.0)


def _format_submit_verdict(job: dict) -> str:
    verdict = job.get("verdict") or {}
    kind = job.get("kind")
    source = "cache" if job.get("cached") else "fleet"
    head = (f"{job['id']} {kind} {job['kernel']}: {job['state']} "
            f"[{source}, {job.get('engine_runs', 0)} engine run(s)]")
    if job.get("error"):
        return f"{head}\n  error: {job['error']}"
    if kind == "check" and verdict:
        body = ("verified clean over every schedule" if verdict.get("clean")
                else "STILL BUGGY")
    elif kind == "detect" and verdict:
        body = ("manifested; flagged by " + ", ".join(verdict.get("flagged_by", []))
                if verdict.get("manifested") else "did not manifest")
    elif kind == "explore" and verdict:
        body = (f"{verdict.get('distinct_outcomes')} distinct outcomes, "
                f"digest {verdict.get('outcome_digest', '')[:12]}")
    elif kind == "static" and verdict:
        body = f"{verdict.get('candidates')} active candidates"
    elif kind == "source" and verdict:
        body = (
            f"module {verdict.get('module')}: "
            f"{verdict.get('confirmed', 0)} confirmed candidate(s), "
            f"statuses {verdict.get('statuses')}"
            + ("" if verdict.get("clean") else " — NOT CLEAN")
        )
    else:
        return head
    return f"{head}\n  {body}"


def _cmd_submit(args) -> int:
    import json

    options = {
        "reduction": args.reduction,
        "workers": args.workers,
        "preemption_bound": args.bound,
        "memoize": args.memoize,
        "max_schedules": args.budget,
        "memory": args.memory,
    }
    response = _client(args).submit(
        args.name, kind=args.kind,
        options={k: v for k, v in options.items() if v not in (None, False)},
        wait=not args.no_wait, timeout=args.timeout,
    )
    if args.json:
        print(json.dumps(response, indent=2))
    elif not response.get("ok"):
        print(f"submit failed: {response.get('error')}", file=sys.stderr)
    else:
        print(_format_submit_verdict(response["job"]))
    if not response.get("ok"):
        return 1
    job = response["job"]
    if job["state"] == "failed":
        return 1
    return 0


def _cmd_status(args) -> int:
    import json

    client = _client(args)
    response = client.status()
    if not response.get("ok"):
        print(f"status failed: {response.get('error')}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(response, indent=2))
    else:
        totals = response["totals"]
        fleet = response["fleet"]
        queue = response["queue"]
        print(
            f"repro service — up {response['uptime_seconds']:.0f}s, "
            f"fleet {fleet['size']} ({fleet['mode']}), "
            f"queue {queue['depth']} pending / {queue['running']} running"
        )
        print(
            f"  submissions {totals['submissions']}  "
            f"completed {totals['completed']}  failed {totals['failed']}  "
            f"cache hits {totals['cache_hits']}  "
            f"coalesced {totals['coalesced']}  "
            f"dedup {totals['dedup_ratio']:.0%}  "
            f"engine runs {totals['engine_runs']}"
        )
        wait = response.get("queue_wait") or {}
        if wait:
            print(
                f"  queue wait: mean {wait.get('mean', 0.0):.3f}s  "
                f"max {wait.get('max', 0.0):.3f}s  "
                f"over {wait.get('count', 0)} dispatched job(s)"
            )
        cache = response["cache"]
        print(f"  cache: {cache['entries']} entries at {cache['path']}")
        alloc = response.get("alloc") or {}
        if alloc.get("policy") == "ucb":
            print(
                f"  alloc: ucb — {alloc.get('arms_live', 0)}/"
                f"{alloc.get('arms_total', 0)} arms live, "
                f"{alloc.get('pulls', 0)} pulls over "
                f"{alloc.get('schedules', 0)} schedules "
                f"(slice budget {alloc.get('slice_budget')})"
            )
            for arm in alloc.get("arms", []):
                print(
                    f"    {arm['job']} {arm['strategy']}: "
                    f"{arm['pulls']} pulls, {arm['schedules']} schedules, "
                    f"payout {arm['payout']:.2f} "
                    f"({'retired' if arm['retired'] else 'live'})"
                )
        for job in response["jobs"]:
            wall = job.get("wall_seconds")
            print(
                f"  {job['id']} {job['kind']:8s} {job['kernel']:26s} "
                f"{job['state']:8s} "
                f"{'cache' if job['cached'] else 'fleet':6s} "
                f"{(f'{wall:.3f}s' if wall is not None else '-'):>9s}"
            )
    if args.shutdown:
        client.shutdown()
        print("shutdown requested", file=sys.stderr)
    return 0


_HANDLERS = {
    "report": _cmd_report,
    "tables": _cmd_tables,
    "findings": _cmd_findings,
    "kernels": _cmd_kernels,
    "kernel": _cmd_kernel,
    "detect": _cmd_detect,
    "estimate": _cmd_estimate,
    "static": _cmd_static,
    "lift": _cmd_lift,
    "bug": _cmd_bug,
    "validate": _cmd_validate,
    "fuzz": _cmd_fuzz,
    "bug-report": _cmd_bug_report,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "status": _cmd_status,
}


def _run_with_observability(args) -> int:
    """Run one command with metrics/runlog/profiling switched on.

    The registry, run log, and profiler are process-global; they are
    installed for the duration of the command and always torn down, so
    library use of :func:`main` never leaks observability state.
    """
    from repro.obs import metrics, profile, runlog

    registry = metrics.enable()
    profiler = profile.enable() if args.profile else None
    if args.metrics_out:
        runlog.set_runlog(args.metrics_out)
    start = time.perf_counter()
    code = 2
    try:
        code = _HANDLERS[args.command](args)
        return code
    finally:
        if args.metrics_out:
            runlog.emit(
                "cli",
                command=args.command,
                args={
                    k: v for k, v in sorted(vars(args).items())
                    if k not in ("command",) and not callable(v)
                },
                exit_code=code,
                wall_seconds=time.perf_counter() - start,
                metrics=registry.snapshot(),
                profile=profiler.as_dict() if profiler else None,
            )
        if profiler is not None:
            print(profiler.report(), file=sys.stderr)
        metrics.disable()
        profile.disable()
        runlog.clear_runlog()


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if getattr(args, "metrics_out", None) or getattr(args, "profile", False):
        return _run_with_observability(args)
    return _HANDLERS[args.command](args)
