"""Multi-variable atomicity-violation kernel (Findings 4-5).

A third of the study's non-deadlock bugs involve *more than one* variable
— typically a datum plus its descriptor (buffer + length, table + empty
flag, pointer + validity bit) whose updates must be perceived together.
Single-variable detectors (race detectors, per-variable AVIO invariants)
structurally miss this class; that blind spot is one of the study's most
quoted implications.

:func:`multivar_buffer_flag` models the Mozilla property-cache figure
example: the clearer resets the table and only then sets the ``empty``
flag; a reader trusting the stale flag dereferences the already-cleared
table.
"""

from __future__ import annotations

from repro.bugdb.schema import BugCategory, FixStrategy
from repro.errors import SimCrash
from repro.kernels.base import BugKernel
from repro.sim import Acquire, Program, Read, Release, RunStatus, Write

__all__ = ["multivar_buffer_flag"]


def multivar_buffer_flag() -> BugKernel:
    """Table and its empty-flag updated non-atomically; reader sees a stale pair."""

    def clearer_buggy():
        yield Write("table", None, label="clearer.clear")
        yield Write("empty", True, label="clearer.flag")

    def reader_buggy():
        empty = yield Read("empty", label="reader.checkflag")
        if not empty:
            entry = yield Read("table", label="reader.load")
            if entry is None:
                raise SimCrash("dereferenced cleared cache entry")
            yield Write("hits", entry)

    def clearer_fixed():
        yield Acquire("L")
        yield Write("table", None, label="clearer.clear")
        yield Write("empty", True, label="clearer.flag")
        yield Release("L")

    def reader_fixed():
        yield Acquire("L")
        empty = yield Read("empty", label="reader.checkflag")
        if not empty:
            entry = yield Read("table", label="reader.load")
            if entry is None:
                raise SimCrash("dereferenced cleared cache entry")
            yield Write("hits", entry)
        yield Release("L")

    declarations = dict(initial={"table": "entries", "empty": False, "hits": None})
    buggy = Program(
        "multivar-buffer-flag(buggy)",
        threads={"Clearer": clearer_buggy, "Reader": reader_buggy},
        **declarations,
    )
    fixed = Program(
        "multivar-buffer-flag(fixed:add-lock)",
        threads={"Clearer": clearer_fixed, "Reader": reader_fixed},
        locks=["L"],
        **declarations,
    )
    return BugKernel(
        name="multivar_buffer_flag",
        title="multi-variable atomicity violation (datum + descriptor)",
        description=(
            "the cache table and its empty flag must change together; "
            "clearing them in two steps lets a reader trust a stale flag "
            "and read the cleared table (the Mozilla property-cache "
            "figure example) — invisible to single-variable detectors"
        ),
        category=BugCategory.NON_DEADLOCK,
        buggy=buggy,
        fixed=fixed,
        fix_strategy=FixStrategy.ADD_LOCK,
        failure=lambda run: run.status is RunStatus.CRASH,
        threads_involved=2,
        variables_involved=2,
        accesses_to_manifest=4,
        manifest_order=(
            ("reader.checkflag", "clearer.flag"),
            ("clearer.clear", "reader.load"),
        ),
    )
