"""Actor kernels: message-passing bugs built on channels.

The study observes (Finding 2 and its discussion of alternative
paradigms) that many order-violation bugs are really *protocol* bugs:
the programmer assumed a delivery or processing order no mechanism
enforces.  Message-passing systems express the same mistakes through
mailboxes instead of shared variables, so this family rebuilds two
canonical ones on the simulator's channel operations
(:class:`~repro.sim.ops.Send` / :class:`~repro.sim.ops.Recv` /
:class:`~repro.sim.ops.Select`):

* :func:`actor_mailbox_order` — a server selects over its control and
  request mailboxes and processes whichever message arrives first; the
  protocol *intends* configuration-before-request, but nothing orders
  the two senders, and a request that overtakes the configuration is
  handled against unset state.  Canonical fix: a **code switch** — the
  server receives the configuration first, then serves requests.
* :func:`actor_lost_message` — a producer checks a shutdown flag before
  sending its result; if the shutdown races in between the consumer's
  expectation and the check, the send is skipped and the consumer
  blocks forever on an empty mailbox: the message is lost.  Canonical
  fix: a **code switch** — send the in-flight result first, then honour
  the shutdown flag.
"""

from __future__ import annotations

from repro.bugdb.schema import BugCategory, FixStrategy
from repro.errors import SimCrash
from repro.kernels.base import BugKernel
from repro.sim import Program, Read, Recv, RunStatus, Select, Send, Write

__all__ = ["actor_mailbox_order", "actor_lost_message"]


def actor_mailbox_order() -> BugKernel:
    """Request overtakes configuration in a select-driven server."""

    def configurator():
        yield Send("cfg", 42, label="cfg.send")

    def client():
        yield Send("req", "job", label="req.send")

    def server_buggy():
        # Serves whichever mailbox fills first — the unstated assumption
        # is that the configuration message always wins that race.
        chan, value = yield Select(("req", "cfg"), label="server.sel1")
        if chan == "cfg":
            yield Write("config", value)
        else:
            cfg = yield Read("config", label="server.use1")
            if cfg is None:
                raise SimCrash("request handled before configuration")
            yield Write("handled", (value, cfg))
        chan, value = yield Select(("req", "cfg"), label="server.sel2")
        if chan == "cfg":
            yield Write("config", value)
        else:
            cfg = yield Read("config", label="server.use2")
            if cfg is None:
                raise SimCrash("request handled before configuration")
            yield Write("handled", (value, cfg))

    def server_fixed():
        # The code switch: take the configuration mailbox first; only
        # then start serving requests.
        value = yield Recv("cfg", label="server.getcfg")
        yield Write("config", value)
        value = yield Recv("req", label="server.getreq")
        cfg = yield Read("config", label="server.use")
        yield Write("handled", (value, cfg))

    declarations = dict(
        initial={"config": None, "handled": None},
        channels={"cfg": None, "req": None},
    )
    buggy = Program(
        "actor-mailbox-order(buggy)",
        threads={
            "Server": server_buggy,
            "Configurator": configurator,
            "Client": client,
        },
        **declarations,
    )
    fixed = Program(
        "actor-mailbox-order(fixed:code-switch)",
        threads={
            "Server": server_fixed,
            "Configurator": configurator,
            "Client": client,
        },
        **declarations,
    )
    return BugKernel(
        name="actor_mailbox_order",
        title="request message overtakes the configuration message",
        description=(
            "the server selects over its control and request mailboxes and "
            "trusts arrival order to match the intended protocol order; a "
            "request delivered before the configuration is processed "
            "against unset state"
        ),
        category=BugCategory.NON_DEADLOCK,
        buggy=buggy,
        fixed=fixed,
        fix_strategy=FixStrategy.CODE_SWITCH,
        failure=lambda run: run.status is RunStatus.CRASH,
        threads_involved=3,
        variables_involved=1,
        accesses_to_manifest=2,
        manifest_order=(
            # The request must be in the mailbox when the server first
            # selects, and the configuration must not be: the select
            # then commits to the request branch.
            ("req.send", "server.sel1"),
            ("server.sel1", "cfg.send"),
        ),
        family="actor",
    )


def actor_lost_message() -> BugKernel:
    """Shutdown races the producer's guard; the result is never sent."""

    def producer_buggy():
        stopping = yield Read("stopping", label="producer.check")
        if not stopping:
            yield Send("results", "payload", label="producer.send")

    def producer_fixed():
        # The code switch: the in-flight result is sent before the
        # shutdown flag is honoured, so the consumer's expectation is
        # always met.
        yield Send("results", "payload", label="producer.send")
        stopping = yield Read("stopping", label="producer.check")
        if stopping:
            yield Write("drained", True)

    def shutdown():
        yield Write("stopping", True, label="shutdown.set")

    def consumer():
        value = yield Recv("results", label="consumer.recv")
        yield Write("collected", value)

    declarations = dict(
        initial={"stopping": False, "collected": None, "drained": False},
        channels={"results": None},
    )
    buggy = Program(
        "actor-lost-message(buggy)",
        threads={
            "Producer": producer_buggy,
            "Shutdown": shutdown,
            "Consumer": consumer,
        },
        **declarations,
    )
    fixed = Program(
        "actor-lost-message(fixed:code-switch)",
        threads={
            "Producer": producer_fixed,
            "Shutdown": shutdown,
            "Consumer": consumer,
        },
        **declarations,
    )
    return BugKernel(
        name="actor_lost_message",
        title="lost message: shutdown races the producer's guard",
        description=(
            "the producer checks the shutdown flag before sending its "
            "result while the consumer unconditionally waits for one; a "
            "shutdown that lands before the check suppresses the send and "
            "the consumer blocks forever on the empty mailbox"
        ),
        category=BugCategory.NON_DEADLOCK,
        buggy=buggy,
        fixed=fixed,
        fix_strategy=FixStrategy.CODE_SWITCH,
        failure=lambda run: run.status is RunStatus.HANG,
        threads_involved=3,
        variables_involved=1,
        accesses_to_manifest=2,
        manifest_order=(("shutdown.set", "producer.check"),),
        family="actor",
    )
