"""Single-variable atomicity-violation kernels (the paper's largest class).

Three kernels model the three anchored figure examples:

* :func:`atomicity_single_var` — the *check-then-use* shape (Mozilla
  js engine): a pointer is tested for validity, a remote thread resets it,
  the dependent use crashes.  Unserializable case R-W-R→crash; canonical
  fix is the paper's most common non-deadlock strategy family, a
  **condition check** handling the invalidated value.
* :func:`atomicity_wwr_log` — the MySQL binlog-rotation shape: a two-step
  remote state transition (close log, reopen log) exposes an intermediate
  state to a reader; events written against the intermediate state are
  silently lost.  Unserializable case W-R-W from the rotator's viewpoint;
  canonical fix **adds a lock** spanning the rotation.
* :func:`atomicity_lock_free` — the Apache reference-count shape: every
  access is individually lock-protected (so there is *no data race*), but
  decrement and zero-check live in different critical sections; two
  threads both observe zero and free twice.  Canonical fix is a **design
  change**: a single atomic read-modify-write.
"""

from __future__ import annotations

from repro.bugdb.schema import BugCategory, FixStrategy
from repro.errors import SimCrash
from repro.kernels.base import BugKernel
from repro.sim import (
    Acquire,
    AtomicUpdate,
    Program,
    Read,
    Release,
    RunStatus,
    Write,
)

__all__ = ["atomicity_single_var", "atomicity_wwr_log", "atomicity_lock_free"]


def atomicity_single_var() -> BugKernel:
    """Check-then-use on one shared pointer; remote reset slips between."""

    def user_buggy():
        pointer = yield Read("proc_info", label="user.check")
        if pointer is not None:
            value = yield Read("proc_info", label="user.use")
            if value is None:
                raise SimCrash("null dereference: checked value vanished")
            yield Write("sink", len(value))

    def resetter():
        yield Write("proc_info", None, label="resetter.reset")

    def user_fixed():
        pointer = yield Read("proc_info", label="user.check")
        if pointer is not None:
            value = yield Read("proc_info", label="user.use")
            if value is None:
                return  # the added condition check handles the race benignly
            yield Write("sink", len(value))

    declarations = dict(
        initial={"proc_info": "query-text", "sink": 0},
    )
    buggy = Program(
        "atomicity-single-var(buggy)",
        threads={"User": user_buggy, "Resetter": resetter},
        **declarations,
    )
    fixed = Program(
        "atomicity-single-var(fixed:cond-check)",
        threads={"User": user_fixed, "Resetter": resetter},
        **declarations,
    )

    def also_locked() -> Program:
        def user_locked():
            yield Acquire("L")
            pointer = yield Read("proc_info", label="user.check")
            if pointer is not None:
                value = yield Read("proc_info", label="user.use")
                if value is None:
                    raise SimCrash("null dereference: checked value vanished")
                yield Write("sink", len(value))
            yield Release("L")

        def resetter_locked():
            yield Acquire("L")
            yield Write("proc_info", None, label="resetter.reset")
            yield Release("L")

        return Program(
            "atomicity-single-var(fixed:add-lock)",
            threads={"User": user_locked, "Resetter": resetter_locked},
            locks=["L"],
            **declarations,
        )

    return BugKernel(
        name="atomicity_single_var",
        title="check-then-use atomicity violation on one variable",
        description=(
            "a validity check and the dependent use are not in one atomic "
            "region; a remote reset between them crashes the user (the "
            "Mozilla js-engine figure example)"
        ),
        category=BugCategory.NON_DEADLOCK,
        buggy=buggy,
        fixed=fixed,
        fix_strategy=FixStrategy.COND_CHECK,
        failure=lambda run: run.status is RunStatus.CRASH,
        threads_involved=2,
        variables_involved=1,
        accesses_to_manifest=3,
        manifest_order=(
            ("user.check", "resetter.reset"),
            ("resetter.reset", "user.use"),
        ),
        alternative_fixes=((FixStrategy.ADD_LOCK, also_locked()),),
    )


def atomicity_wwr_log() -> BugKernel:
    """Two-step log rotation exposes a closed log to a concurrent writer."""

    def rotator_buggy():
        yield Write("log_open", False, label="rotator.close")
        yield Write("log_open", True, label="rotator.reopen")

    def appender_buggy():
        is_open = yield Read("log_open", label="appender.check")
        if is_open:
            events = yield Read("events_logged")
            yield Write("events_logged", events + 1)
        else:
            lost = yield Read("events_lost")
            yield Write("events_lost", lost + 1)

    def rotator_fixed():
        yield Acquire("LOCK_log")
        yield Write("log_open", False, label="rotator.close")
        yield Write("log_open", True, label="rotator.reopen")
        yield Release("LOCK_log")

    def appender_fixed():
        yield Acquire("LOCK_log")
        is_open = yield Read("log_open", label="appender.check")
        if is_open:
            events = yield Read("events_logged")
            yield Write("events_logged", events + 1)
        else:
            lost = yield Read("events_lost")
            yield Write("events_lost", lost + 1)
        yield Release("LOCK_log")

    declarations = dict(
        initial={"log_open": True, "events_logged": 0, "events_lost": 0},
    )
    buggy = Program(
        "atomicity-wwr-log(buggy)",
        threads={"Rotator": rotator_buggy, "Appender": appender_buggy},
        **declarations,
    )
    fixed = Program(
        "atomicity-wwr-log(fixed:add-lock)",
        threads={"Rotator": rotator_fixed, "Appender": appender_fixed},
        locks=["LOCK_log"],
        **declarations,
    )
    return BugKernel(
        name="atomicity_wwr_log",
        title="intermediate state of a two-step transition observed",
        description=(
            "log rotation closes then reopens the log in two writes; a "
            "writer reading between them sees 'closed' and silently drops "
            "its event (the MySQL binlog figure example)"
        ),
        category=BugCategory.NON_DEADLOCK,
        buggy=buggy,
        fixed=fixed,
        fix_strategy=FixStrategy.ADD_LOCK,
        failure=lambda run: run.ok and run.memory["events_lost"] > 0,
        threads_involved=2,
        variables_involved=1,
        accesses_to_manifest=3,
        manifest_order=(
            ("rotator.close", "appender.check"),
            ("appender.check", "rotator.reopen"),
        ),
    )


def atomicity_lock_free() -> BugKernel:
    """Race-free double free: decrement and zero-check in separate sections."""

    def release_buggy(tid):
        def body():
            yield Acquire("L", label=f"{tid}.enter_dec")
            count = yield Read("refcnt")
            yield Write("refcnt", count - 1, label=f"{tid}.dec")
            yield Release("L")
            yield Acquire("L", label=f"{tid}.enter_check")
            now = yield Read("refcnt", label=f"{tid}.check")
            yield Release("L")
            if now == 0:
                # Each thread records its own free: two set flags = double free.
                yield Write(f"freed_by_{tid}", True)

        return body

    def release_fixed(tid):
        def body():
            remaining = yield AtomicUpdate("refcnt", lambda v: v - 1)
            if remaining == 0:
                yield Write(f"freed_by_{tid}", True)

        return body

    declarations = dict(
        initial={"refcnt": 2, "freed_by_t1": False, "freed_by_t2": False},
        locks=["L"],
    )
    buggy = Program(
        "atomicity-lock-free(buggy)",
        threads={"T1": release_buggy("t1"), "T2": release_buggy("t2")},
        **declarations,
    )
    fixed = Program(
        "atomicity-lock-free(fixed:design-change)",
        threads={"T1": release_fixed("t1"), "T2": release_fixed("t2")},
        **declarations,
    )
    return BugKernel(
        name="atomicity_lock_free",
        title="atomicity violation with no data race (double free)",
        description=(
            "every access is lock-protected, yet decrement and zero-check "
            "are separate critical sections: both threads observe zero and "
            "free twice (the Apache refcount figure example) — the class "
            "that race detectors structurally cannot catch"
        ),
        category=BugCategory.NON_DEADLOCK,
        buggy=buggy,
        fixed=fixed,
        fix_strategy=FixStrategy.DESIGN_CHANGE,
        failure=lambda run: bool(
            run.memory["freed_by_t1"] and run.memory["freed_by_t2"]
        ),
        threads_involved=2,
        variables_involved=1,
        accesses_to_manifest=4,
        # The four ordering-relevant sites: both decrements must precede
        # both zero-checks.  Because the accesses live inside critical
        # sections, the order anchors each thread's *check-section entry*
        # (constraining the accesses directly would fight the mutex).
        # Two pairs suffice: t1's check-entry waits for t2's decrement
        # (t1's own decrement precedes it by program order), and t2's
        # check-entry waits for t1's check.
        manifest_order=(
            ("t2.dec", "t1.enter_check"),
            ("t1.check", "t2.enter_check"),
        ),
    )
