"""Weak-memory kernels: bugs that need a relaxed memory model to manifest.

The study's bug set is drawn from C/C++ server codebases that ran on
hardware with store buffers (x86/TSO); a handful of its synchronisation
bugs — flag-based mutual exclusion without fences — are *invisible*
under the sequentially consistent interleaving semantics every kernel so
far assumed.  This module opens that family: its programs declare
``memory="tso"`` (see :mod:`repro.sim.memory`), so each thread's writes
sit in a FIFO store buffer until an explicit flush pseudo-step lands
them, and the classic store-buffering (Dekker) litmus outcome becomes a
reachable schedule.

* :func:`weakmem_store_buffer` — both threads announce themselves with a
  flag write, then check the other's flag; with both writes still
  buffered, both checks read the stale 0 and both threads enter the
  critical region.  Unreachable under SC (one write is always globally
  visible before the second read), reachable under TSO.  The canonical
  fix is a **design change**: a ``Fence`` between the announce and the
  check, which blocks the checking read until the thread's own buffer
  drained.
"""

from __future__ import annotations

from repro.bugdb.schema import BugCategory, FixStrategy
from repro.kernels.base import BugKernel
from repro.sim import Fence, Program, Read, RunStatus, Write

__all__ = ["weakmem_store_buffer"]


def weakmem_store_buffer() -> BugKernel:
    """Dekker-style flag protocol broken by store buffering."""

    def t0_buggy():
        yield Write("flag0", 1, label="t0.announce")
        other = yield Read("flag1", label="t0.check")
        if other == 0:
            yield Write("entered0", True, label="t0.enter")

    def t1_buggy():
        yield Write("flag1", 1, label="t1.announce")
        other = yield Read("flag0", label="t1.check")
        if other == 0:
            yield Write("entered1", True, label="t1.enter")

    def t0_fixed():
        # The fence blocks the check until flag0 is globally visible, so
        # the announce/check pair can no longer reorder: this is exactly
        # the mfence x86 Dekker implementations need.
        yield Write("flag0", 1, label="t0.announce")
        yield Fence(label="t0.fence")
        other = yield Read("flag1", label="t0.check")
        if other == 0:
            yield Write("entered0", True, label="t0.enter")

    def t1_fixed():
        yield Write("flag1", 1, label="t1.announce")
        yield Fence(label="t1.fence")
        other = yield Read("flag0", label="t1.check")
        if other == 0:
            yield Write("entered1", True, label="t1.enter")

    declarations = dict(
        initial={"flag0": 0, "flag1": 0, "entered0": False, "entered1": False},
        memory="tso",
    )
    buggy = Program(
        "weakmem-store-buffer(buggy)",
        threads={"T0": t0_buggy, "T1": t1_buggy},
        **declarations,
    )
    fixed = Program(
        "weakmem-store-buffer(fixed:design-change)",
        threads={"T0": t0_fixed, "T1": t1_fixed},
        **declarations,
    )

    def failure(run):
        return (
            run.status is RunStatus.OK
            and bool(run.memory.get("entered0"))
            and bool(run.memory.get("entered1"))
        )

    return BugKernel(
        name="weakmem_store_buffer",
        title="store-buffered flag writes let both threads enter",
        description=(
            "each thread announces itself by writing a flag and then checks "
            "the other's; with both writes parked in store buffers, both "
            "checks read the stale 0 and mutual exclusion silently fails — "
            "the store-buffering litmus, unreachable under SC"
        ),
        category=BugCategory.NON_DEADLOCK,
        buggy=buggy,
        fixed=fixed,
        fix_strategy=FixStrategy.DESIGN_CHANGE,
        failure=failure,
        threads_involved=2,
        variables_involved=2,
        accesses_to_manifest=4,
        manifest_order=(
            # Both checks must read before *either* buffered announce
            # becomes globally visible: each check precedes the other
            # thread's flush step (the "~"-prefixed derived label names
            # the store-visibility point of a labelled write).
            ("t0.check", "~t1.announce"),
            ("t1.check", "~t0.announce"),
        ),
        family="weakmem",
    )
