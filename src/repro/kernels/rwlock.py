"""Reader-writer lock upgrade deadlock.

A studied deadlock flavour that involves a *single* reader-writer lock
yet two threads: both take the lock shared, then both request the
exclusive mode without dropping their read hold.  Each writer-request
waits for the *other* reader to drain — a circular wait across the two
modes of one resource.  (In Table 5 terms this is still a two-party
circular wait; the resource is one rwlock, making it a cousin of the
one-resource self-deadlock.)

The canonical fix is the **give-up** strategy: release the read hold
before requesting the write hold, then re-validate the protected state
after reacquiring — exactly the re-check discipline the paper's
condition-check fixes use.
"""

from __future__ import annotations

from repro.bugdb.schema import BugCategory, FixStrategy
from repro.kernels.base import BugKernel
from repro.sim import (
    AcquireRead,
    AcquireWrite,
    Program,
    Read,
    ReleaseRead,
    ReleaseWrite,
    RunStatus,
    Write,
)

__all__ = ["deadlock_rwlock_upgrade"]


def deadlock_rwlock_upgrade() -> BugKernel:
    """Two readers both upgrade in place; each waits on the other's hold."""

    def upgrader_buggy(tid):
        def body():
            yield AcquireRead("RW", label=f"{tid}.read_hold")
            value = yield Read("shared")
            # BUG: requesting exclusive mode while still holding shared mode.
            yield AcquireWrite("RW", label=f"{tid}.upgrade")
            yield Write("shared", value + 1)
            yield ReleaseWrite("RW")
            yield ReleaseRead("RW")

        return body

    def upgrader_fixed(tid):
        def body():
            yield AcquireRead("RW", label=f"{tid}.read_hold")
            value = yield Read("shared")
            # Give up the read hold, reacquire exclusively, re-validate.
            yield ReleaseRead("RW")
            yield AcquireWrite("RW", label=f"{tid}.upgrade")
            current = yield Read("shared")
            if current == value:
                yield Write("shared", value + 1)
            else:
                yield Write("shared", current + 1)
            yield ReleaseWrite("RW")

        return body

    declarations = dict(initial={"shared": 0}, rwlocks=["RW"])
    buggy = Program(
        "deadlock-rwlock-upgrade(buggy)",
        threads={"T1": upgrader_buggy("t1"), "T2": upgrader_buggy("t2")},
        **declarations,
    )
    fixed = Program(
        "deadlock-rwlock-upgrade(fixed:give-up)",
        threads={"T1": upgrader_fixed("t1"), "T2": upgrader_fixed("t2")},
        **declarations,
    )
    return BugKernel(
        name="deadlock_rwlock_upgrade",
        title="reader-writer lock upgrade deadlock",
        description=(
            "both threads hold the rwlock shared and request exclusive "
            "mode in place; each write request waits for the other's read "
            "hold to drain, forever — fixed by releasing the read hold "
            "and re-validating after the exclusive acquire"
        ),
        category=BugCategory.DEADLOCK,
        buggy=buggy,
        fixed=fixed,
        fix_strategy=FixStrategy.GIVE_UP_RESOURCE,
        failure=lambda run: run.status is RunStatus.DEADLOCK,
        threads_involved=2,
        resources_involved=1,
        accesses_to_manifest=4,
        # Both read holds must land before either upgrade request: with a
        # sole reader the in-place upgrade would simply succeed.
        manifest_order=(
            ("t1.read_hold", "t2.upgrade"),
            ("t2.read_hold", "t1.upgrade"),
        ),
    )
