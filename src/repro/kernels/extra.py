"""Additional kernels rounding out the studied class space.

* :func:`atomicity_lost_update` — the canonical R-W-W lost update
  (unsynchronised read-increment-write), the single most common shape in
  the atomicity class; shipped with both an add-lock fix and an
  atomic-RMW design-change fix.
* :func:`order_teardown_use` — the shutdown-order violation flavour of
  order bugs: the main thread tears down a resource while a worker still
  expects it; fixed by joining the worker before teardown.
* :func:`multivar_torn_invariant` — a three-thread, two-variable kernel
  matching the study's rarer shapes: two updaters maintain the invariant
  ``data == version`` one field at a time; a checker interleaved between
  both updaters' half-updates observes a tear of 2.  Needs three threads
  *and* more than four ordered accesses — the tail beyond Findings 4
  and 7.
"""

from __future__ import annotations

from repro.bugdb.schema import BugCategory, FixStrategy
from repro.errors import SimCrash
from repro.kernels.base import BugKernel
from repro.sim import (
    Acquire,
    AtomicUpdate,
    Join,
    Program,
    Read,
    Release,
    RunStatus,
    Spawn,
    Write,
)

__all__ = [
    "atomicity_lost_update",
    "order_teardown_use",
    "multivar_torn_invariant",
]


def atomicity_lost_update() -> BugKernel:
    """Two unsynchronised read-increment-write threads lose an update."""

    def bump_buggy(tid):
        def body():
            value = yield Read("hits", label=f"{tid}.read")
            yield Write("hits", value + 1, label=f"{tid}.write")

        return body

    def bump_locked(tid):
        def body():
            yield Acquire("L")
            value = yield Read("hits", label=f"{tid}.read")
            yield Write("hits", value + 1, label=f"{tid}.write")
            yield Release("L")

        return body

    def bump_atomic(tid):
        def body():
            yield AtomicUpdate("hits", lambda v: v + 1, label=f"{tid}.rmw")

        return body

    buggy = Program(
        "atomicity-lost-update(buggy)",
        threads={"T1": bump_buggy("t1"), "T2": bump_buggy("t2")},
        initial={"hits": 0},
    )
    fixed = Program(
        "atomicity-lost-update(fixed:add-lock)",
        threads={"T1": bump_locked("t1"), "T2": bump_locked("t2")},
        initial={"hits": 0},
        locks=["L"],
    )
    atomic = Program(
        "atomicity-lost-update(fixed:design-change)",
        threads={"T1": bump_atomic("t1"), "T2": bump_atomic("t2")},
        initial={"hits": 0},
    )
    return BugKernel(
        name="atomicity_lost_update",
        title="lost update (R-W-W unserializable interleaving)",
        description=(
            "two threads read-increment-write the same counter with no "
            "synchronisation; when one thread's whole pair lands inside "
            "the other's, an increment vanishes — the canonical atomicity "
            "violation"
        ),
        category=BugCategory.NON_DEADLOCK,
        buggy=buggy,
        fixed=fixed,
        fix_strategy=FixStrategy.ADD_LOCK,
        failure=lambda run: run.ok and run.memory["hits"] < 2,
        threads_involved=2,
        variables_involved=1,
        accesses_to_manifest=3,
        manifest_order=(
            ("t1.read", "t2.write"),
            ("t2.write", "t1.write"),
        ),
        alternative_fixes=((FixStrategy.DESIGN_CHANGE, atomic),),
    )


def order_teardown_use() -> BugKernel:
    """Main tears the connection down while the worker still uses it."""

    def main_buggy():
        yield Spawn("Worker")
        # ... main believes the worker is done and tears down:
        yield Write("conn", None, label="main.teardown")

    def worker():
        conn = yield Read("conn", label="worker.use")
        if conn is None:
            raise SimCrash("worker used a torn-down connection")
        yield Write("sent", True)

    def main_fixed():
        yield Spawn("Worker")
        yield Join("Worker", label="main.join")
        yield Write("conn", None, label="main.teardown")

    declarations = dict(initial={"conn": "socket", "sent": False})
    buggy = Program(
        "order-teardown-use(buggy)",
        threads={"Main": main_buggy, "Worker": worker},
        start=["Main"],
        **declarations,
    )
    fixed = Program(
        "order-teardown-use(fixed:design-change)",
        threads={"Main": main_fixed, "Worker": worker},
        start=["Main"],
        **declarations,
    )
    return BugKernel(
        name="order_teardown_use",
        title="teardown races ahead of a late use (order violation)",
        description=(
            "the shutdown path assumes every worker has finished; nothing "
            "enforces 'last use happens-before teardown', so a late "
            "worker dereferences the destroyed resource — fixed by "
            "joining the worker first"
        ),
        category=BugCategory.NON_DEADLOCK,
        buggy=buggy,
        fixed=fixed,
        fix_strategy=FixStrategy.DESIGN_CHANGE,
        failure=lambda run: run.status is RunStatus.CRASH,
        threads_involved=2,
        variables_involved=1,
        accesses_to_manifest=2,
        manifest_order=(("main.teardown", "worker.use"),),
    )


def multivar_torn_invariant() -> BugKernel:
    """Three threads, two variables: the checker sees a 2-wide tear."""

    def updater_buggy(tid):
        def body():
            data = yield Read("data", label=f"{tid}.read_data")
            yield Write("data", data + 1, label=f"{tid}.write_data")
            version = yield Read("version")
            yield Write("version", version + 1, label=f"{tid}.write_version")

        return body

    def checker_buggy():
        data = yield Read("data", label="checker.read_data")
        version = yield Read("version", label="checker.read_version")
        if abs(data - version) >= 2:
            raise SimCrash(
                f"invariant data==version torn wide open ({data} vs {version})"
            )

    def updater_fixed(tid):
        def body():
            yield Acquire("L")
            data = yield Read("data")
            yield Write("data", data + 1, label=f"{tid}.write_data")
            version = yield Read("version")
            yield Write("version", version + 1, label=f"{tid}.write_version")
            yield Release("L")

        return body

    def checker_fixed():
        yield Acquire("L")
        data = yield Read("data", label="checker.read_data")
        version = yield Read("version", label="checker.read_version")
        yield Release("L")
        if abs(data - version) >= 2:
            raise SimCrash(
                f"invariant data==version torn wide open ({data} vs {version})"
            )

    declarations = dict(initial={"data": 0, "version": 0})
    buggy = Program(
        "multivar-torn-invariant(buggy)",
        threads={
            "U1": updater_buggy("u1"),
            "U2": updater_buggy("u2"),
            "Checker": checker_buggy,
        },
        **declarations,
    )
    fixed = Program(
        "multivar-torn-invariant(fixed:add-lock)",
        threads={
            "U1": updater_fixed("u1"),
            "U2": updater_fixed("u2"),
            "Checker": checker_fixed,
        },
        locks=["L"],
        **declarations,
    )
    return BugKernel(
        name="multivar_torn_invariant",
        title="three-thread, two-variable invariant tear",
        description=(
            "two updaters bump data then version; a checker reading "
            "between both half-updates observes data two ahead of "
            "version — a bug needing three threads and seven ordered "
            "accesses, the tail of the manifestation findings"
        ),
        category=BugCategory.NON_DEADLOCK,
        buggy=buggy,
        fixed=fixed,
        fix_strategy=FixStrategy.ADD_LOCK,
        failure=lambda run: run.status is RunStatus.CRASH,
        threads_involved=3,
        variables_involved=2,
        accesses_to_manifest=7,
        manifest_order=(
            # Serialise the two data updates (else they lose each other's
            # increment and the tear narrows to 1), put the checker's data
            # read after both, and its version read before either version
            # write: data==2, version==0, tear of 2 guaranteed.
            ("u1.write_data", "u2.read_data"),
            ("u2.write_data", "checker.read_data"),
            ("checker.read_version", "u1.write_version"),
            ("checker.read_version", "u2.write_version"),
        ),
    )
