"""Executable bug kernels: the paper's figure examples, runnable.

Each kernel is a (buggy, fixed) program pair on the simulator with an
oracle and the recorded manifestation characteristics; see
:mod:`repro.kernels.base`.  The registry keys are what
:class:`~repro.bugdb.BugRecord.kernel` links point at.
"""

from repro.kernels.actor import actor_lost_message, actor_mailbox_order
from repro.kernels.atomicity import (
    atomicity_lock_free,
    atomicity_single_var,
    atomicity_wwr_log,
)
from repro.kernels.base import BugKernel, Oracle
from repro.kernels.deadlock import deadlock_abba, deadlock_self, deadlock_three_way
from repro.kernels.extra import (
    atomicity_lost_update,
    multivar_torn_invariant,
    order_teardown_use,
)
from repro.kernels.multivar import multivar_buffer_flag
from repro.kernels.order import order_lost_wakeup, order_use_before_init
from repro.kernels.rwlock import deadlock_rwlock_upgrade
from repro.kernels.weakmem import weakmem_store_buffer
from repro.kernels.registry import (
    KERNEL_FACTORIES,
    all_kernels,
    families,
    get_kernel,
    kernel_names,
)

__all__ = [
    "BugKernel",
    "Oracle",
    "KERNEL_FACTORIES",
    "kernel_names",
    "get_kernel",
    "all_kernels",
    "families",
    "atomicity_single_var",
    "atomicity_wwr_log",
    "atomicity_lock_free",
    "atomicity_lost_update",
    "multivar_buffer_flag",
    "multivar_torn_invariant",
    "order_use_before_init",
    "order_lost_wakeup",
    "order_teardown_use",
    "deadlock_self",
    "deadlock_abba",
    "deadlock_three_way",
    "deadlock_rwlock_upgrade",
    "actor_mailbox_order",
    "actor_lost_message",
    "weakmem_store_buffer",
]
