"""Bug kernels: executable reproductions of the studied bug classes.

A :class:`BugKernel` packages everything needed to *demonstrate* one bug
class from the study rather than merely tabulate it:

* ``buggy`` — a small simulator program with the bug;
* ``fixed`` — the same program patched with the class's canonical fix
  strategy from the paper's taxonomy;
* ``failure`` — the oracle: does a given run manifest the bug?
* the recorded manifestation characteristics (threads / variables or
  resources / ordering-relevant accesses), which integration tests check
  against exhaustive exploration;
* ``manifest_order`` — the partial order over labelled operations whose
  enforcement *guarantees* manifestation.  This is Finding 8 made
  executable: each pair ``(earlier_label, later_label)`` constrains two
  operation sites, and :mod:`repro.manifest.enforce` turns the pairs into
  a scheduling filter.

Labels are plain strings attached via ``label=`` to operations; every
kernel keeps its labels unique program-wide (e.g. ``"t1.check"``), so a
label names exactly one operation site of one thread.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Optional, Tuple

from repro.bugdb.schema import BugCategory, FixStrategy
from repro.sim.engine import RunResult
from repro.sim.explorer import _emit_exploration_runlog, make_explorer
from repro.sim.program import Program

__all__ = ["BugKernel", "Oracle"]

Oracle = Callable[[RunResult], bool]


@dataclass(frozen=True)
class BugKernel:
    """One executable bug class with its paired fix."""

    name: str
    title: str
    description: str
    category: BugCategory
    buggy: Program
    fixed: Program
    fix_strategy: FixStrategy
    failure: Oracle
    threads_involved: int
    accesses_to_manifest: int
    manifest_order: Tuple[Tuple[str, str], ...]
    variables_involved: Optional[int] = None
    resources_involved: Optional[int] = None
    alternative_fixes: Tuple[Tuple[FixStrategy, Program], ...] = ()
    #: Workload family: ``"sc"`` (classic shared-memory kernels, the
    #: default), ``"weakmem"`` (bugs that manifest only under a relaxed
    #: memory model — their buggy/fixed programs declare ``memory="tso"``),
    #: or ``"actor"`` (message-passing kernels built on channels).  The
    #: registry filters on this tag for family sweeps.
    family: str = "sc"

    # -- exploration helpers -------------------------------------------------

    def find_manifestation(
        self,
        max_schedules: int = 20000,
        workers: Optional[int] = None,
        memoize: bool = False,
        directed: bool = False,
        reduction: Optional[str] = None,
    ) -> Optional[RunResult]:
        """A failing run of the buggy program, or ``None`` if unreachable.

        ``workers > 1`` shards the search across a process pool.
        ``memoize=True`` is sound here only if the kernel's failure oracle
        inspects terminal state, not the schedule/trace — the bundled
        kernels' oracles do, but it stays opt-in.
        ``directed=True`` runs the static analyzer first and biases the
        visit order toward its predicted access pairs (race-directed
        exploration); the searched tree is unchanged, so a manifestation
        reachable undirected is reachable directed — usually sooner.
        ``reduction`` skips schedules equivalent to one already run —
        sound for the same oracles ``memoize`` is sound for (every
        terminal state keeps a representative), and composable with
        ``directed``, ``memoize``, and ``workers`` (``reduction="dpor"``
        with ``workers > 1`` runs the speculative parallel DPOR search,
        bit-identical to the serial reduced one).
        """
        targets = self.static_targets() if directed else None
        explorer = make_explorer(
            self.buggy, max_schedules, 5000, None, workers, memoize,
            targets=targets, reduction=reduction,
        )
        start = perf_counter()
        result = explorer.explore(predicate=self.failure, stop_on_first=True)
        _emit_exploration_runlog(
            "kernel.find_manifestation", result, max_schedules, 5000, None,
            workers, memoize, perf_counter() - start, directed=directed,
            reduction=reduction,
        )
        return result.matching[0] if result.matching else None

    def static_targets(self):
        """Ranked target pairs predicted by the static analyzer.

        Imported lazily: the static package layers *above* the kernels'
        sim dependencies, and most kernel uses never need it.
        """
        from repro.static import analyse

        return analyse(self.buggy).pairs

    def manifestation_rate(
        self, max_schedules: int = 20000, workers: Optional[int] = None
    ) -> float:
        """Fraction of all schedules of the buggy program that manifest.

        No ``memoize`` or ``reduction`` option: the rate is a ratio
        over *all* interleavings, and anything that prunes or collapses
        schedules skews it.
        """
        explorer = make_explorer(
            self.buggy, max_schedules, 5000, None, workers, False,
        )
        start = perf_counter()
        outcome = explorer.explore(predicate=self.failure)
        _emit_exploration_runlog(
            "kernel.manifestation_rate", outcome, max_schedules, 5000, None,
            workers, False, perf_counter() - start,
        )
        return outcome.match_rate()

    def verify_fixed(
        self,
        max_schedules: int = 50000,
        workers: Optional[int] = None,
        memoize: bool = False,
        reduction: Optional[str] = None,
    ) -> bool:
        """Exhaustively check that no schedule of the fixed program fails.

        ``reduction`` keeps the verdict exact — a failure outcome, were
        one reachable, would keep a representative schedule — while
        checking far fewer interleavings.
        """
        explorer = make_explorer(
            self.fixed, max_schedules, 5000, None, workers, memoize,
            keep_matches=1, reduction=reduction,
        )
        start = perf_counter()
        outcome = explorer.explore(predicate=self.failure, stop_on_first=True)
        _emit_exploration_runlog(
            "kernel.verify_fixed", outcome, max_schedules, 5000, None,
            workers, memoize, perf_counter() - start, reduction=reduction,
        )
        return outcome.complete and not outcome.found

    def summary(self) -> str:
        """One-line rendering for reports."""
        dims = []
        dims.append(f"threads={self.threads_involved}")
        if self.variables_involved is not None:
            dims.append(f"vars={self.variables_involved}")
        if self.resources_involved is not None:
            dims.append(f"resources={self.resources_involved}")
        dims.append(f"accesses={self.accesses_to_manifest}")
        return f"{self.name} [{self.category.value}] ({', '.join(dims)}): {self.title}"
