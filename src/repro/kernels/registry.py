"""Registry of all bug kernels, keyed by the names bug records link to.

Kernels carry a workload-family tag (``"sc"`` / ``"weakmem"`` /
``"actor"``, see :class:`~repro.kernels.base.BugKernel.family`); the
listing helpers accept an optional family filter so sweeps can target
one family at a time (the CLI ``--family`` flag).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.kernels.actor import actor_lost_message, actor_mailbox_order
from repro.kernels.atomicity import (
    atomicity_lock_free,
    atomicity_single_var,
    atomicity_wwr_log,
)
from repro.kernels.base import BugKernel
from repro.kernels.deadlock import deadlock_abba, deadlock_self, deadlock_three_way
from repro.kernels.extra import (
    atomicity_lost_update,
    multivar_torn_invariant,
    order_teardown_use,
)
from repro.kernels.multivar import multivar_buffer_flag
from repro.kernels.order import order_lost_wakeup, order_use_before_init
from repro.kernels.rwlock import deadlock_rwlock_upgrade
from repro.kernels.weakmem import weakmem_store_buffer

__all__ = [
    "KERNEL_FACTORIES",
    "kernel_names",
    "get_kernel",
    "all_kernels",
    "families",
]

#: Factory per kernel name.  Factories (not instances) are registered so
#: every caller gets fresh Program objects — programs are stateless, but
#: fresh instances keep callers from accidentally sharing identity.
KERNEL_FACTORIES: Dict[str, Callable[[], BugKernel]] = {
    "atomicity_single_var": atomicity_single_var,
    "atomicity_wwr_log": atomicity_wwr_log,
    "atomicity_lock_free": atomicity_lock_free,
    "atomicity_lost_update": atomicity_lost_update,
    "multivar_buffer_flag": multivar_buffer_flag,
    "multivar_torn_invariant": multivar_torn_invariant,
    "order_use_before_init": order_use_before_init,
    "order_lost_wakeup": order_lost_wakeup,
    "order_teardown_use": order_teardown_use,
    "deadlock_self": deadlock_self,
    "deadlock_abba": deadlock_abba,
    "deadlock_three_way": deadlock_three_way,
    "deadlock_rwlock_upgrade": deadlock_rwlock_upgrade,
    "actor_mailbox_order": actor_mailbox_order,
    "actor_lost_message": actor_lost_message,
    "weakmem_store_buffer": weakmem_store_buffer,
}

#: Family per kernel name, materialised once at import (instantiating a
#: kernel just to read its tag would rebuild its programs every call).
_KERNEL_FAMILIES: Dict[str, str] = {
    name: factory().family for name, factory in KERNEL_FACTORIES.items()
}


def _check_family(family: Optional[str]) -> None:
    if family is not None and family not in _KERNEL_FAMILIES.values():
        raise KeyError(
            f"unknown kernel family {family!r}; registered: {families()}"
        )


def kernel_names(family: Optional[str] = None) -> List[str]:
    """Registered kernel names, stable order, optionally one family."""
    _check_family(family)
    return [
        name
        for name in KERNEL_FACTORIES
        if family is None or _KERNEL_FAMILIES[name] == family
    ]


def get_kernel(name: str) -> BugKernel:
    """Instantiate the kernel registered under ``name``."""
    if name not in KERNEL_FACTORIES:
        raise KeyError(
            f"unknown kernel {name!r}; registered: {sorted(KERNEL_FACTORIES)}"
        )
    return KERNEL_FACTORIES[name]()


def all_kernels(family: Optional[str] = None) -> List[BugKernel]:
    """Fresh instances of every registered kernel, optionally one family."""
    return [get_kernel(name) for name in kernel_names(family)]


def families() -> List[str]:
    """The registered family tags, sorted."""
    return sorted(set(_KERNEL_FAMILIES.values()))
