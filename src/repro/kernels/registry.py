"""Registry of all bug kernels, keyed by the names bug records link to."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.kernels.atomicity import (
    atomicity_lock_free,
    atomicity_single_var,
    atomicity_wwr_log,
)
from repro.kernels.base import BugKernel
from repro.kernels.deadlock import deadlock_abba, deadlock_self, deadlock_three_way
from repro.kernels.extra import (
    atomicity_lost_update,
    multivar_torn_invariant,
    order_teardown_use,
)
from repro.kernels.multivar import multivar_buffer_flag
from repro.kernels.order import order_lost_wakeup, order_use_before_init
from repro.kernels.rwlock import deadlock_rwlock_upgrade

__all__ = ["KERNEL_FACTORIES", "kernel_names", "get_kernel", "all_kernels"]

#: Factory per kernel name.  Factories (not instances) are registered so
#: every caller gets fresh Program objects — programs are stateless, but
#: fresh instances keep callers from accidentally sharing identity.
KERNEL_FACTORIES: Dict[str, Callable[[], BugKernel]] = {
    "atomicity_single_var": atomicity_single_var,
    "atomicity_wwr_log": atomicity_wwr_log,
    "atomicity_lock_free": atomicity_lock_free,
    "atomicity_lost_update": atomicity_lost_update,
    "multivar_buffer_flag": multivar_buffer_flag,
    "multivar_torn_invariant": multivar_torn_invariant,
    "order_use_before_init": order_use_before_init,
    "order_lost_wakeup": order_lost_wakeup,
    "order_teardown_use": order_teardown_use,
    "deadlock_self": deadlock_self,
    "deadlock_abba": deadlock_abba,
    "deadlock_three_way": deadlock_three_way,
    "deadlock_rwlock_upgrade": deadlock_rwlock_upgrade,
}


def kernel_names() -> List[str]:
    """All registered kernel names, stable order."""
    return list(KERNEL_FACTORIES)


def get_kernel(name: str) -> BugKernel:
    """Instantiate the kernel registered under ``name``."""
    if name not in KERNEL_FACTORIES:
        raise KeyError(
            f"unknown kernel {name!r}; registered: {sorted(KERNEL_FACTORIES)}"
        )
    return KERNEL_FACTORIES[name]()


def all_kernels() -> List[BugKernel]:
    """Fresh instances of every registered kernel."""
    return [factory() for factory in KERNEL_FACTORIES.values()]
