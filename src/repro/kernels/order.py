"""Order-violation kernels (the second non-deadlock class).

* :func:`order_use_before_init` — the Mozilla ``mThread`` figure example:
  a parent spawns a worker and only *afterwards* publishes the handle the
  worker dereferences.  Nothing enforces "publish happens-before first
  use"; the canonical fix is a **code switch** (publish before spawn).
* :func:`order_lost_wakeup` — the timer-thread figure example: the
  ready-flag is checked *outside* the lock, so the producer's flag write
  and notification can both land between the check and the wait; the
  notification wakes nobody and the consumer blocks forever.  The
  canonical fix is a **design change** to the correct condvar protocol
  (check the predicate while holding the lock).
"""

from __future__ import annotations

from repro.bugdb.schema import BugCategory, FixStrategy
from repro.errors import SimCrash
from repro.kernels.base import BugKernel
from repro.sim import (
    Acquire,
    Notify,
    Program,
    Read,
    Release,
    RunStatus,
    Spawn,
    Wait,
    Write,
)

__all__ = ["order_use_before_init", "order_lost_wakeup"]


def order_use_before_init() -> BugKernel:
    """Worker dereferences the handle before the parent publishes it."""

    def parent_buggy():
        yield Spawn("Worker")
        yield Write("mThread", "thread-handle", label="parent.publish")

    def worker():
        handle = yield Read("mThread", label="worker.use")
        if handle is None:
            raise SimCrash("null mThread dereferenced on the new thread")
        yield Write("used", handle)

    def parent_fixed():
        # The code switch: publish the handle before the worker can run.
        yield Write("mThread", "thread-handle", label="parent.publish")
        yield Spawn("Worker")

    declarations = dict(initial={"mThread": None, "used": None})
    buggy = Program(
        "order-use-before-init(buggy)",
        threads={"Parent": parent_buggy, "Worker": worker},
        start=["Parent"],
        **declarations,
    )
    fixed = Program(
        "order-use-before-init(fixed:code-switch)",
        threads={"Parent": parent_fixed, "Worker": worker},
        start=["Parent"],
        **declarations,
    )
    return BugKernel(
        name="order_use_before_init",
        title="use of a shared handle before its initialising write",
        description=(
            "the spawned thread reads mThread before the creator stores it; "
            "the intended creation order is assumed, never enforced (the "
            "Mozilla thread-init figure example)"
        ),
        category=BugCategory.NON_DEADLOCK,
        buggy=buggy,
        fixed=fixed,
        fix_strategy=FixStrategy.CODE_SWITCH,
        failure=lambda run: run.status is RunStatus.CRASH,
        threads_involved=2,
        variables_involved=1,
        accesses_to_manifest=2,
        manifest_order=(("worker.use", "parent.publish"),),
    )


def order_lost_wakeup() -> BugKernel:
    """Unprotected flag check lets the notification land before the wait."""

    def consumer_buggy():
        done = yield Read("done", label="consumer.check")
        if not done:
            yield Acquire("L", label="consumer.lock")
            yield Wait("cv", label="consumer.wait")
            yield Release("L")
        yield Write("proceeded", True)

    def producer_buggy():
        yield Write("done", True, label="producer.set")
        yield Acquire("L")
        yield Notify("cv", label="producer.notify")
        yield Release("L")

    def consumer_fixed():
        # Correct protocol: the predicate is checked under the lock, so the
        # producer's set+notify cannot slide between check and wait.
        yield Acquire("L")
        done = yield Read("done", label="consumer.check")
        if not done:
            yield Wait("cv", label="consumer.wait")
        yield Release("L")
        yield Write("proceeded", True)

    def producer_fixed():
        yield Acquire("L")
        yield Write("done", True, label="producer.set")
        yield Notify("cv", label="producer.notify")
        yield Release("L")

    declarations = dict(
        initial={"done": False, "proceeded": False},
        locks=["L"],
        conditions={"cv": "L"},
    )
    buggy = Program(
        "order-lost-wakeup(buggy)",
        threads={"Consumer": consumer_buggy, "Producer": producer_buggy},
        **declarations,
    )
    fixed = Program(
        "order-lost-wakeup(fixed:design-change)",
        threads={"Consumer": consumer_fixed, "Producer": producer_fixed},
        **declarations,
    )
    return BugKernel(
        name="order_lost_wakeup",
        title="lost wakeup: notify lands before the wait",
        description=(
            "the ready flag is checked outside the lock; the producer can "
            "set it and notify before the consumer blocks, so the wakeup is "
            "lost and the consumer hangs (the timer-thread figure example)"
        ),
        category=BugCategory.NON_DEADLOCK,
        buggy=buggy,
        fixed=fixed,
        fix_strategy=FixStrategy.DESIGN_CHANGE,
        failure=lambda run: run.status is RunStatus.HANG,
        threads_involved=2,
        variables_involved=1,
        accesses_to_manifest=4,
        manifest_order=(
            # Consumer sees 'not done', and the whole produce/notify pair
            # completes before the consumer even takes the lock: the
            # notification is provably lost.
            ("consumer.check", "producer.set"),
            ("producer.notify", "consumer.lock"),
        ),
    )
