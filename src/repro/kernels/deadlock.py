"""Deadlock kernels: one, two, and three resources (Table 5's split).

* :func:`deadlock_self` — the one-resource case (roughly a quarter of the
  studied deadlocks): a callback re-acquires a held non-recursive mutex.
  Canonical fix: **give up the resource** (release before the re-entrant
  call).
* :func:`deadlock_abba` — the dominant two-resource case: opposite
  acquisition orders.  Canonical fix: **enforce one acquisition order**;
  an alternative fix demonstrates the *give-up* strategy with a try-lock
  and back-off, the strategy the study found most common for deadlocks.
* :func:`deadlock_three_way` — the single studied bug with three
  resources: a circular chain across three subsystems.
"""

from __future__ import annotations

from repro.bugdb.schema import BugCategory, FixStrategy
from repro.kernels.base import BugKernel
from repro.sim import (
    Acquire,
    Program,
    Read,
    Release,
    RunStatus,
    TryAcquire,
    Write,
)

__all__ = ["deadlock_self", "deadlock_abba", "deadlock_three_way"]


def deadlock_self() -> BugKernel:
    """Re-acquiring a held non-recursive mutex from a nested call."""

    def outer_buggy():
        yield Acquire("monitor", label="outer.enter")
        # ... the nested callback path re-enters the same monitor:
        yield Acquire("monitor", label="nested.reenter")
        yield Write("work", "done")
        yield Release("monitor")
        yield Release("monitor")

    def outer_fixed():
        yield Acquire("monitor", label="outer.enter")
        work = yield Read("work")
        # Give up the monitor before the re-entrant call needs it.
        yield Release("monitor")
        yield Acquire("monitor", label="nested.reenter")
        yield Write("work", "done")
        yield Release("monitor")

    declarations = dict(initial={"work": None}, locks=["monitor"])
    buggy = Program(
        "deadlock-self(buggy)", threads={"T": outer_buggy}, **declarations
    )
    fixed = Program(
        "deadlock-self(fixed:give-up)", threads={"T": outer_fixed}, **declarations
    )
    return BugKernel(
        name="deadlock_self",
        title="one-resource deadlock (self re-acquisition)",
        description=(
            "a nested callback re-acquires the non-recursive monitor the "
            "caller already holds; the thread waits on itself forever"
        ),
        category=BugCategory.DEADLOCK,
        buggy=buggy,
        fixed=fixed,
        fix_strategy=FixStrategy.GIVE_UP_RESOURCE,
        failure=lambda run: run.status is RunStatus.DEADLOCK,
        threads_involved=1,
        resources_involved=1,
        accesses_to_manifest=2,
        manifest_order=(),  # manifests in every schedule
    )


def deadlock_abba() -> BugKernel:
    """Opposite lock orders on two mutexes."""

    def forward_buggy():
        yield Acquire("A", label="t1.first")
        yield Acquire("B", label="t1.second")
        yield Write("x", 1)
        yield Release("B")
        yield Release("A")

    def backward_buggy():
        yield Acquire("B", label="t2.first")
        yield Acquire("A", label="t2.second")
        yield Write("x", 2)
        yield Release("A")
        yield Release("B")

    def forward_fixed():
        yield Acquire("A", label="t1.first")
        yield Acquire("B", label="t1.second")
        yield Write("x", 1)
        yield Release("B")
        yield Release("A")

    def backward_fixed():
        # Acquisition-order fix: everyone takes A before B.
        yield Acquire("A", label="t2.first")
        yield Acquire("B", label="t2.second")
        yield Write("x", 2)
        yield Release("B")
        yield Release("A")

    def backward_giveup():
        # Give-up fix: try the second lock; on failure release and retry.
        for _ in range(3):
            yield Acquire("B")
            got = yield TryAcquire("A")
            if got:
                yield Write("x", 2)
                yield Release("A")
                yield Release("B")
                return
            yield Release("B")
        # Final bounded attempt in the safe global order.
        yield Acquire("A")
        yield Acquire("B")
        yield Write("x", 2)
        yield Release("B")
        yield Release("A")

    declarations = dict(initial={"x": 0}, locks=["A", "B"])
    buggy = Program(
        "deadlock-abba(buggy)",
        threads={"T1": forward_buggy, "T2": backward_buggy},
        **declarations,
    )
    fixed = Program(
        "deadlock-abba(fixed:acquire-order)",
        threads={"T1": forward_fixed, "T2": backward_fixed},
        **declarations,
    )
    giveup = Program(
        "deadlock-abba(fixed:give-up)",
        threads={"T1": forward_buggy, "T2": backward_giveup},
        **declarations,
    )
    return BugKernel(
        name="deadlock_abba",
        title="two-resource deadlock (opposite acquisition orders)",
        description=(
            "two code paths take the same pair of locks in opposite "
            "orders; holding one each, both wait forever — the dominant "
            "deadlock shape (23 of the 31 studied deadlocks involve "
            "exactly two resources)"
        ),
        category=BugCategory.DEADLOCK,
        buggy=buggy,
        fixed=fixed,
        fix_strategy=FixStrategy.ACQUIRE_ORDER,
        failure=lambda run: run.status is RunStatus.DEADLOCK,
        threads_involved=2,
        resources_involved=2,
        accesses_to_manifest=4,
        manifest_order=(
            ("t1.first", "t2.second"),
            ("t2.first", "t1.second"),
        ),
        alternative_fixes=((FixStrategy.GIVE_UP_RESOURCE, giveup),),
    )


def deadlock_three_way() -> BugKernel:
    """Circular acquisition chain across three locks."""

    def chain(first, second, prefix):
        def body():
            yield Acquire(first, label=f"{prefix}.first")
            yield Acquire(second, label=f"{prefix}.second")
            yield Write("x", prefix)
            yield Release(second)
            yield Release(first)

        return body

    declarations = dict(initial={"x": None}, locks=["A", "B", "C"])
    buggy = Program(
        "deadlock-three-way(buggy)",
        threads={
            "T1": chain("A", "B", "t1"),
            "T2": chain("B", "C", "t2"),
            "T3": chain("C", "A", "t3"),
        },
        **declarations,
    )
    fixed = Program(
        "deadlock-three-way(fixed:acquire-order)",
        threads={
            # Global order A < B < C breaks the cycle.
            "T1": chain("A", "B", "t1"),
            "T2": chain("B", "C", "t2"),
            "T3": chain("A", "C", "t3"),
        },
        **declarations,
    )
    return BugKernel(
        name="deadlock_three_way",
        title="three-resource circular deadlock",
        description=(
            "three subsystems each hold one lock and wait for the next, "
            "closing a three-edge cycle — the study's only deadlock "
            "involving more than two resources"
        ),
        category=BugCategory.DEADLOCK,
        buggy=buggy,
        fixed=fixed,
        fix_strategy=FixStrategy.ACQUIRE_ORDER,
        failure=lambda run: run.status is RunStatus.DEADLOCK,
        threads_involved=3,
        resources_involved=3,
        accesses_to_manifest=6,
        manifest_order=(
            ("t1.first", "t3.second"),
            ("t2.first", "t1.second"),
            ("t3.first", "t2.second"),
        ),
    )
