#!/usr/bin/env python3
"""Testing implications: random stress vs PCT vs order enforcement.

Reproduces the study's argument for interleaving-directed testing on all
nine kernels (extension bench E2):

* a cooperative (non-preemptive) scheduler finds almost nothing — the
  bugs need a context switch at the wrong place;
* random stress finds bugs with low, kernel-dependent probability;
* PCT trades raw rate for a *guaranteed* lower bound that scales with
  bug depth (on these tiny kernels uniform random often samples better);
* enforcing the recorded ≤4-access partial order manifests every bug on
  every run (Finding 8's guarantee);
* pairwise ordered-pair coverage explains *why*: random testing leaves
  one direction of the decisive pair unexercised for a long time.

Run:  python examples/guided_testing.py
"""

from repro import all_kernels
from repro.manifest import PairwiseCoverage, compare_strategies
from repro.sim import RandomScheduler, run_program


def main() -> None:
    print(f"{'kernel':26s} {'coop':>6s} {'random':>8s} {'pct':>8s} {'enforced':>9s}")
    print("-" * 62)
    for kernel in all_kernels():
        estimates = compare_strategies(kernel, runs=100)
        print(
            f"{kernel.name:26s} "
            f"{estimates['cooperative'].rate:>6.0%} "
            f"{estimates['random'].rate:>8.1%} "
            f"{estimates['pct'].rate:>8.1%} "
            f"{estimates['enforced'].rate:>9.0%}"
        )

    print("\n== why: ordered-pair coverage growth under random testing ==")
    kernel = next(k for k in all_kernels() if k.name == "atomicity_single_var")
    coverage = PairwiseCoverage()
    milestones = []
    for seed in range(50):
        trace = run_program(kernel.buggy, RandomScheduler(seed=seed)).trace
        fresh = coverage.add(trace)
        if fresh:
            milestones.append((seed + 1, coverage.pairs_covered))
    for runs, covered in milestones:
        print(f"  after {runs:3d} random runs: {covered} ordered pairs covered")
    print(f"  final coverage ratio: {coverage.coverage_ratio():.0%}")


if __name__ == "__main__":
    main()
