#!/usr/bin/env python3
"""Bug hunting at application scale: the miniature server, logger, cache.

The study's subjects are real applications; this example drives their
miniature analogues.  For every injectable bug in the catalogue it:

1. confirms the *correct* configuration survives random testing,
2. finds a manifesting interleaving of the buggy configuration with
   bounded exploration (preemption bound 3 — CHESS-style),
3. shrinks it to a minimal-preemption witness, and
4. reports which detector classes flag the failing trace.

Run:  python examples/hunt_app_bugs.py
"""

from repro.apps import bug_catalogue
from repro.detectors import DetectorSuite
from repro.sim import find_schedule, minimize_preemptions


def main() -> None:
    for app, flag, kind, program, oracle in bug_catalogue():
        print(f"== {app}.{flag} (expected class: {kind}) ==")
        failing = find_schedule(
            program, predicate=oracle, max_schedules=60000, preemption_bound=3
        )
        assert failing is not None
        print(f"  manifests after {len(failing.schedule)} steps: {failing.summary()}")

        witness = minimize_preemptions(
            program, oracle, max_bound=4, max_schedules_per_bound=60000
        )
        print(f"  minimal witness: {witness.preemptions} preemption(s), "
              f"{len(witness.run.schedule)} steps")

        suite = DetectorSuite.for_program(program)
        flagged = suite.analyse(failing.trace).flagged_by()
        print(f"  flagged by: {', '.join(flagged) if flagged else 'nothing'}")
        print()


if __name__ == "__main__":
    main()
