#!/usr/bin/env python3
"""Shrinking failures: from a noisy random repro to a minimal witness.

A failing schedule found by random testing is full of irrelevant context
switches.  The meaningful size of a concurrency failure is its number of
*pre-emptive* switches (Finding 8's 'few ordering points decide
everything'), so the library minimises that: search exhaustively at
preemption bound 0, then 1, ... and return the first failure.

The punchline, measured across all twelve kernels: every studied bug
class has a witness with at most ONE preemption.

Run:  python examples/minimal_witness.py
"""

from repro import all_kernels
from repro.sim import RandomScheduler, minimize_preemptions, preemption_count, run_program


def main() -> None:
    kernel = next(k for k in all_kernels() if k.name == "atomicity_wwr_log")

    # A noisy repro from random stress testing...
    noisy = None
    for seed in range(1000):
        run = run_program(kernel.buggy, RandomScheduler(seed=seed))
        if kernel.failure(run):
            noisy = run
            break
    assert noisy is not None
    print("== noisy random repro ==")
    print(f"schedule ({len(noisy.schedule)} steps): {noisy.schedule}")
    print(f"preemptions: {preemption_count(kernel.buggy, noisy.schedule)}")

    # ...shrunk to the minimal witness.
    witness = minimize_preemptions(kernel.buggy, kernel.failure)
    print("\n== minimal witness ==")
    print(witness.summary())
    print(witness.run.trace.format())

    print("\n== every kernel's minimal witness ==")
    for kernel in all_kernels():
        witness = minimize_preemptions(kernel.buggy, kernel.failure)
        print(
            f"  {kernel.name:26s} preemptions={witness.preemptions} "
            f"steps={len(witness.run.schedule)}"
        )


if __name__ == "__main__":
    main()
