#!/usr/bin/env python3
"""Regenerate the full study: tables T1-T8, findings F1-F10, kernel evidence.

This is the one-command reproduction of the paper's evaluation.  With
``--quick`` the exploration-heavy kernel-evidence section is skipped.

Run:  python examples/reproduce_study.py [--quick]
"""

import sys

from repro import generate_report


def main() -> int:
    quick = "--quick" in sys.argv[1:]
    report = generate_report(quick=quick)
    print(report.format())
    return 0 if report.all_findings_pass else 1


if __name__ == "__main__":
    raise SystemExit(main())
