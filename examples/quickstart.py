#!/usr/bin/env python3
"""Quickstart: write a tiny concurrent program, find its bug, fix it.

Walks the core loop a user of this library lives in:

1. express a concurrent scenario in the operation DSL;
2. exhaustively explore its interleavings;
3. replay the failing schedule deterministically;
4. run the detector battery on the failing trace;
5. patch the program and *verify* (not stress-test) the patch.

Run:  python examples/quickstart.py
"""

from repro import DetectorSuite, Program, enumerate_outcomes, find_schedule, replay
from repro.sim import Acquire, Read, Release, Write


def main() -> None:
    # 1. A classic lost update: two unlocked read-increment-write threads.
    def increment():
        value = yield Read("counter")
        yield Write("counter", value + 1)

    racy = Program(
        "racy-counter",
        threads={"T1": increment, "T2": increment},
        initial={"counter": 0},
    )

    # 2. Explore every interleaving (there are only six).
    outcomes = enumerate_outcomes(racy, require_complete=True)
    print("== exploration ==")
    print(outcomes.summary())
    for (status, memory), count in sorted(outcomes.outcomes.items()):
        print(f"  outcome {dict(memory)} ({status}): {count} schedule(s)")

    # 3. Find and replay the lost-update schedule.
    failing = find_schedule(racy, predicate=lambda run: run.memory["counter"] == 1)
    print("\n== failing schedule ==")
    print("schedule:", failing.schedule)
    rerun = replay(racy, failing.schedule)
    print("replayed final state:", rerun.memory)

    # 4. What do the detectors say about the failing trace?
    print("\n== detectors ==")
    print(DetectorSuite.for_program(racy).analyse(failing.trace).format())

    # 5. Patch with a lock and verify across *all* schedules.
    def increment_locked():
        yield Acquire("L")
        value = yield Read("counter")
        yield Write("counter", value + 1)
        yield Release("L")

    patched = Program(
        "locked-counter",
        threads={"T1": increment_locked, "T2": increment_locked},
        initial={"counter": 0},
        locks=["L"],
    )
    verified = enumerate_outcomes(patched, require_complete=True)
    print("\n== patched ==")
    print(verified.summary())
    assert all(key[1] == (("counter", 2),) for key in verified.outcomes)
    print("every schedule ends with counter == 2: patch verified")


if __name__ == "__main__":
    main()
