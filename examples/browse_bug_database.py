#!/usr/bin/env python3
"""Browse and slice the 105-bug database the way the study's analysis does.

Shows the query surface: filter by application / category / pattern,
histogram any dimension, and drill into a single record with its linked
executable kernel.

Run:  python examples/browse_bug_database.py
"""

from repro import Application, BugDatabase, BugPattern, get_kernel


def main() -> None:
    db = BugDatabase.load()
    print(f"loaded {len(db)} records "
          f"({len(db.non_deadlock())} non-deadlock, {len(db.deadlock())} deadlock)")

    print("\n== per-application pattern slice ==")
    for app in Application:
        sub = db.by_application(app).non_deadlock()
        atomicity = len(sub.with_pattern(BugPattern.ATOMICITY))
        order = len(sub.with_pattern(BugPattern.ORDER))
        print(
            f"  {app.value:11s} non-deadlock={len(sub):2d} "
            f"atomicity={atomicity:2d} order={order:2d}"
        )

    print("\n== impact distribution ==")
    for impact, count in sorted(
        db.count_by_impact().items(), key=lambda item: -item[1]
    ):
        print(f"  {impact.value:15s} {count}")

    print("\n== multi-variable bugs with big ordering footprints ==")
    tricky = db.filter(
        lambda r: not r.is_deadlock
        and not r.involves_single_variable
        and not r.small_access_set
    )
    for record in tricky:
        print(f"  {record.bug_id}: {record.variables_involved} vars, "
              f"{record.accesses_to_manifest} accesses — {record.component}")

    print("\n== drill-down: a record and its executable kernel ==")
    record = db.get("apache-nd-refcount")
    print(f"  {record.bug_id} ({record.report_ref})")
    print(f"  {record.description}")
    kernel = get_kernel(record.kernel)
    failing = kernel.find_manifestation()
    print(f"  kernel {kernel.name}: manifests in {len(failing.schedule)} steps; "
          f"final state {failing.memory}")


if __name__ == "__main__":
    main()
