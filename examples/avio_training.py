#!/usr/bin/env python3
"""AVIO with invariant learning: train on good runs, flag the novel tear.

Plain unserializable-interleaving detection flags benign non-atomicity
too (statistics counters, cross-critical-section pairs in correct code).
AVIO's insight is to LEARN access-interleaving invariants from passing
runs and report only interleavings never seen in training.  This example
shows both halves:

1. an intentionally non-atomic (but correct) statistics counter trains
   the detector — its unserializable RRW pattern gets whitelisted;
2. the Apache-style double-free kernel is then analysed: its passing
   runs never contain the decrement/check tear, so training leaves the
   real bug flagged as NOVEL.

Run:  python examples/avio_training.py
"""

from repro.detectors import AtomicityDetector, LearningAVIODetector
from repro.kernels import get_kernel
from repro.sim import (
    FixedScheduler,
    Program,
    RandomScheduler,
    Read,
    Write,
    run_program,
)


def benign_stats_program() -> Program:
    def bumper():
        value = yield Read("stat", label="bump.read")
        yield Write("stat", value + 1, label="bump.write")

    def reporter():
        first = yield Read("stat", label="report.first")
        second = yield Read("stat", label="report.second")
        yield Write("report", (first, second))

    return Program(
        "benign-stats",
        threads={"Bumper": bumper, "Reporter": reporter},
        initial={"stat": 0, "report": None},
    )


def main() -> None:
    program = benign_stats_program()
    # Force the bump between the reporter's two reads: the RRW case.
    interleaved = ["Reporter", "Bumper", "Bumper", "Reporter", "Reporter"]
    probe = run_program(program, FixedScheduler(interleaved, strict=False)).trace

    print("== untrained AVIO on the benign stats counter ==")
    print(AtomicityDetector().analyse(probe).format())

    detector = LearningAVIODetector()
    invariants = detector.train(
        run_program(program, RandomScheduler(seed=s)).trace for s in range(20)
    )
    print(f"\ntrained on 20 passing runs: {invariants} invariant(s) whitelisted")
    print("== trained AVIO on the same trace ==")
    print(detector.analyse(probe).format())

    print("\n== trained AVIO still catches the real double free ==")
    kernel = get_kernel("atomicity_lock_free")
    hunter = LearningAVIODetector()
    passing = []
    for seed in range(40):
        run = run_program(kernel.buggy, RandomScheduler(seed=seed))
        if not kernel.failure(run):
            passing.append(run.trace)
    hunter.train(passing)
    failing = kernel.find_manifestation()
    print(f"(trained on {len(passing)} passing runs of the buggy program)")
    print(hunter.analyse(failing.trace).format())


if __name__ == "__main__":
    main()
