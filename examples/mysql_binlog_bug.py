#!/usr/bin/env python3
"""Case study: the MySQL binlog-rotation atomicity violation (MySQL#791).

The scenario the paper's MySQL figure describes: binlog rotation closes
and reopens the log in two steps; a committing session that checks
"log is open" between the steps silently loses its event.  This script

* finds the losing interleaving by exhaustive exploration,
* shows the unserializable W-R-W interleaving the AVIO-style detector
  reports,
* demonstrates the study's fix taxonomy on it (the shipped add-lock fix,
  verified over every schedule), and
* shows the enforcement result: ordering just 3 accesses makes the bug
  manifest on every run (Finding 8).

Run:  python examples/mysql_binlog_bug.py
"""

from repro import BugDatabase, get_kernel
from repro.detectors import AtomicityDetector
from repro.fixes import verify_all_fixes
from repro.manifest import compare_strategies, order_guarantees


def main() -> None:
    db = BugDatabase.load()
    record = db.get("mysql-nd-binlog-rotate")
    print("== bug record ==")
    print(f"{record.bug_id} ({record.report_ref}) — {record.component}")
    print(record.description)
    print(
        f"pattern={[p.value for p in record.patterns]} impact={record.impact.value} "
        f"threads={record.threads_involved} variables={record.variables_involved} "
        f"accesses={record.accesses_to_manifest} fix={record.fix_strategy.value}"
    )

    kernel = get_kernel(record.kernel)
    failing = kernel.find_manifestation()
    print("\n== manifesting interleaving ==")
    print(failing.trace.format())
    print("final state:", failing.memory)

    print("\n== atomicity detector ==")
    print(AtomicityDetector().analyse(failing.trace).format())

    print("\n== fix verification ==")
    for strategy, verification in verify_all_fixes(kernel).items():
        print(f"  [{strategy.value}] {verification.summary()}")

    print("\n== testing strategies (Finding 8) ==")
    for estimate in compare_strategies(kernel, runs=100).values():
        print(" ", estimate.summary())
    assert order_guarantees(kernel.buggy, kernel.manifest_order, kernel.failure)
    print(
        f"enforcing the recorded order among {kernel.accesses_to_manifest} "
        f"accesses guarantees manifestation"
    )


if __name__ == "__main__":
    main()
