#!/usr/bin/env python3
"""Case study: hunting deadlocks with lock-order graphs (Table 5 / Finding 6).

Demonstrates both deadlock shapes the study found and both detection
modes:

* the *observed* deadlock — exploration drives the ABBA kernel into the
  circular wait and the detector names the cycle;
* the *predicted* deadlock — a successful, deadlock-free run of the same
  program still reveals the lock-order cycle (the Goodlock property), so
  one good test run suffices to catch the bug;
* the one-resource self-deadlock, which manifests on every schedule;
* the two fix strategies the study tabulates — acquisition order and
  give-up/try-lock — both verified over every schedule.

Run:  python examples/deadlock_hunting.py
"""

from repro import get_kernel
from repro.detectors import DeadlockDetector, FindingKind, build_lock_order_graph
from repro.fixes import verify_all_fixes
from repro.sim import CooperativeScheduler, run_program


def main() -> None:
    abba = get_kernel("deadlock_abba")

    print("== observed deadlock (exploration) ==")
    failing = abba.find_manifestation()
    print(failing.summary())
    report = DeadlockDetector().analyse(failing.trace)
    for finding in report.of_kind(FindingKind.DEADLOCK):
        print(" ", finding.summary())

    print("\n== predicted from a GOOD run (lock-order graph) ==")
    good = run_program(abba.buggy, CooperativeScheduler())
    assert good.ok
    graph = build_lock_order_graph(good.trace)
    print("  edges:", sorted(graph.edges))
    report = DeadlockDetector().analyse(good.trace)
    for finding in report.of_kind(FindingKind.POTENTIAL_DEADLOCK):
        print(" ", finding.summary())

    print("\n== one-resource deadlock (self re-acquisition) ==")
    self_dl = get_kernel("deadlock_self")
    print(f"  manifestation rate: {self_dl.manifestation_rate():.0%} of schedules")
    failing = self_dl.find_manifestation()
    print(" ", dict(failing.blocked))

    print("\n== fixes, exhaustively verified ==")
    for name in ("deadlock_abba", "deadlock_self", "deadlock_three_way"):
        kernel = get_kernel(name)
        for strategy, verification in verify_all_fixes(kernel).items():
            print(f"  {name} [{strategy.value}]: {verification.summary()}")


if __name__ == "__main__":
    main()
