"""Use-before-init publish: the worker dereferences a connection handle
that the parent publishes only *after* spawning it (MySQL #48930 shape:
a child thread reads ``mThread`` before the creator stores it)."""

import threading

conn = None
done = False

REPRO_EXPECT = {
    "bugs": [
        {
            "kind": "order-violation",
            "variables": ["conn"],
            "manifestation": "crash",
            "note": "nothing orders the publishing write before the remote read",
        },
        {
            "kind": "data-race",
            "variables": ["conn"],
            "manifestation": "crash",
            "note": "publish and use are also unsynchronised accesses",
        },
    ],
}


def make_connection():
    return object()


def worker():
    global done
    conn.send("hello")
    done = True


def main():
    global conn
    t = threading.Thread(target=worker)
    t.start()
    conn = make_connection()
    t.join()


if __name__ == "__main__":
    main()
