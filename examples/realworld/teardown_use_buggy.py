"""Use-after-teardown: the main thread nulls the shared log handle
while a worker may still be writing through it (Mozilla #61369 shape:
teardown races in-flight use; dereferencing the cleared handle
crashes)."""

import threading


def connect():
    return object()


log = connect()

REPRO_EXPECT = {
    "bugs": [
        {
            "kind": "data-race",
            "variables": ["log"],
            "manifestation": "crash",
            "note": "teardown write races the worker's dereference",
        },
    ],
}


def worker():
    log.write("entry")


def main():
    global log
    t = threading.Thread(target=worker)
    t.start()
    log = None
    t.join()


if __name__ == "__main__":
    main()
