"""Fixed queue shutdown: the producer always enqueues the work the
consumer is counting on — the stop flag now only gates *new* work
admission upstream, never items the consumer already expects."""

import queue
import threading

tasks = queue.Queue()
stop = False

REPRO_EXPECT = {
    "fixed_of": "queue_shutdown_lost_buggy",
    "bugs": [],
}


def producer():
    tasks.put("job")
    tasks.put("job")


def consumer():
    tasks.get()
    tasks.get()


def main():
    global stop
    p = threading.Thread(target=producer)
    c = threading.Thread(target=consumer)
    p.start()
    c.start()
    stop = True
    p.join()
    c.join()


if __name__ == "__main__":
    main()
