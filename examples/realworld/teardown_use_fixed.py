"""Tolerated teardown race: the worker snapshots the handle once and
null-checks the snapshot before use.  The *race* on ``log`` remains —
this is the study's "tolerate" fix strategy, which accepts the
interleaving and makes every outcome safe — so the data-race candidate
is a pinned residual (see ``tests/static/test_agreement.py``), but no
schedule can crash."""

import threading


def connect():
    return object()


log = connect()

REPRO_EXPECT = {
    "fixed_of": "teardown_use_buggy",
    "bugs": [],
}


def worker():
    handle = log
    if handle is not None:
        handle.write("entry")


def main():
    global log
    t = threading.Thread(target=worker)
    t.start()
    log = None
    t.join()


if __name__ == "__main__":
    main()
