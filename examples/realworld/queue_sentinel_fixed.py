"""Fixed sentinel protocol: the end-of-stream sentinel is enqueued
unconditionally, so the consumer's drain loop always terminates no
matter when the failure flag is raised.  The flag itself stays
intentionally racy (a monotonic shutdown hint — staleness is tolerated;
see the corpus residual table in ``tests/static/test_agreement.py``)."""

import queue
import threading

inbox = queue.Queue()
failed = False

REPRO_EXPECT = {
    "fixed_of": "queue_sentinel_buggy",
    "bugs": [],
}


def producer():
    if not failed:
        inbox.put("item")
    inbox.put(None)


def consumer():
    item = inbox.get()
    while item is not None:
        item = inbox.get()


def main():
    global failed
    p = threading.Thread(target=producer)
    c = threading.Thread(target=consumer)
    p.start()
    c.start()
    failed = True
    p.join()
    c.join()


if __name__ == "__main__":
    main()
