"""Lost sentinel: the producer's items *and* its end-of-stream sentinel
are both gated on a failure flag the main thread can raise concurrently
— if it wins, the sentinel is never enqueued and the consumer's drain
loop blocks forever on an empty queue."""

import queue
import threading

inbox = queue.Queue()
failed = False

REPRO_EXPECT = {
    "bugs": [
        {
            "kind": "order-violation",
            "resources": ["inbox"],
            "manifestation": "hang",
            "note": "every send (items and sentinel) is conditional on the "
                    "failure flag; the drain loop's get starves",
        },
    ],
}


def producer():
    if not failed:
        inbox.put("item")
    if not failed:
        inbox.put(None)


def consumer():
    item = inbox.get()
    while item is not None:
        item = inbox.get()


def main():
    global failed
    p = threading.Thread(target=producer)
    c = threading.Thread(target=consumer)
    p.start()
    c.start()
    failed = True
    p.join()
    c.join()


if __name__ == "__main__":
    main()
