"""Fixed lazy init: check, initialise, and read all happen under the
lock — no unlocked fast path, no check-then-act window."""

import threading

lock = threading.Lock()
initialized = False
resource = None

REPRO_EXPECT = {
    "fixed_of": "double_checked_flag_buggy",
    "bugs": [],
}


def make_resource():
    return object()


def get_resource():
    global initialized, resource
    lock.acquire()
    if not initialized:
        resource = make_resource()
        initialized = True
    r = resource
    lock.release()
    return r


def worker():
    get_resource()


def main():
    t1 = threading.Thread(target=worker)
    t2 = threading.Thread(target=worker)
    t1.start()
    t2.start()
    t1.join()
    t2.join()


if __name__ == "__main__":
    main()
