"""Unprotected shared counter: two workers increment a module global
with no lock — each ``+= 1`` is a read-modify-write whose interleaving
loses updates (the single-variable atomicity shape that dominates the
study's non-deadlock table)."""

import threading

counter = 0

REPRO_EXPECT = {
    "bugs": [
        {
            "kind": "data-race",
            "variables": ["counter"],
            "manifestation": "finding",
            "note": "no common lock protects the increment",
        },
        {
            "kind": "atomicity-violation",
            "variables": ["counter"],
            "manifestation": "finding",
            "confirmable": False,
            "note": "the read and write halves of += can be split; "
                    "dynamically subsumed by the data-race finding",
        },
    ],
}


def worker():
    global counter
    for _ in range(2):
        counter += 1


def main():
    t1 = threading.Thread(target=worker)
    t2 = threading.Thread(target=worker)
    t1.start()
    t2.start()
    t1.join()
    t2.join()


if __name__ == "__main__":
    main()
