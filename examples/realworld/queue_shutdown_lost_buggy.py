"""Queue shutdown lost-message: every producer ``put`` is gated on a
shutdown flag the main thread can raise at any moment, but the consumer
unconditionally ``get``s a fixed number of items — if shutdown wins the
race, the consumer blocks forever on an empty queue."""

import queue
import threading

tasks = queue.Queue()
stop = False

REPRO_EXPECT = {
    "bugs": [
        {
            "kind": "order-violation",
            "resources": ["tasks"],
            "manifestation": "hang",
            "note": "all sends are conditional on the stop flag; the "
                    "unconditional get starves",
        },
    ],
}


def producer():
    for _ in range(2):
        if not stop:
            tasks.put("job")


def consumer():
    tasks.get()
    tasks.get()


def main():
    global stop
    p = threading.Thread(target=producer)
    c = threading.Thread(target=consumer)
    p.start()
    c.start()
    stop = True
    p.join()
    c.join()


if __name__ == "__main__":
    main()
