"""Double-checked lazy init: the first check of ``initialized`` happens
outside the lock, racing the initialising write (Mozilla/OpenOffice
double-checked-locking shape from the study's atomicity table)."""

import threading

lock = threading.Lock()
initialized = False
resource = None

REPRO_EXPECT = {
    "bugs": [
        {
            "kind": "data-race",
            "variables": ["initialized"],
            "manifestation": "finding",
            "note": "unlocked fast-path check races the locked write",
        },
        {
            "kind": "atomicity-violation",
            "variables": ["initialized"],
            "manifestation": "finding",
            "confirmable": False,
            "note": "check and act span an unlocked window; dynamically "
                    "subsumed by the data-race finding on the same pair",
        },
        {
            "kind": "data-race",
            "variables": ["resource"],
            "manifestation": "finding",
            "note": "the fast path returns resource without holding the lock",
        },
    ],
}


def make_resource():
    return object()


def get_resource():
    global initialized, resource
    if not initialized:
        lock.acquire()
        if not initialized:
            resource = make_resource()
            initialized = True
        lock.release()
    return resource


def worker():
    get_resource()


def main():
    t1 = threading.Thread(target=worker)
    t2 = threading.Thread(target=worker)
    t1.start()
    t2.start()
    t1.join()
    t2.join()


if __name__ == "__main__":
    main()
