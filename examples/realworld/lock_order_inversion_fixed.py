"""Fixed lock ordering: both transfer directions acquire the account
locks in one global order (``lock_a`` before ``lock_b``), breaking the
circular wait."""

import threading

lock_a = threading.Lock()
lock_b = threading.Lock()
balance_a = 100
balance_b = 100

REPRO_EXPECT = {
    "fixed_of": "lock_order_inversion_buggy",
    "bugs": [],
}


def transfer_ab():
    global balance_a, balance_b
    with lock_a:
        with lock_b:
            balance_a = balance_a - 10
            balance_b = balance_b + 10


def transfer_ba():
    global balance_a, balance_b
    with lock_a:
        with lock_b:
            balance_b = balance_b - 10
            balance_a = balance_a + 10


def main():
    t1 = threading.Thread(target=transfer_ab)
    t2 = threading.Thread(target=transfer_ba)
    t1.start()
    t2.start()
    t1.join()
    t2.join()


if __name__ == "__main__":
    main()
