"""Lock-order inversion: two transfer paths take the same pair of
account locks in opposite orders — the classic ABBA deadlock the study
attributes to most non-deadlock-turned-deadlock fixes."""

import threading

lock_a = threading.Lock()
lock_b = threading.Lock()
balance_a = 100
balance_b = 100

REPRO_EXPECT = {
    "bugs": [
        {
            "kind": "deadlock",
            "resources": ["lock_a", "lock_b"],
            "manifestation": "deadlock",
            "note": "ABBA cycle between the two transfer directions",
        },
    ],
}


def transfer_ab():
    global balance_a, balance_b
    with lock_a:
        with lock_b:
            balance_a = balance_a - 10
            balance_b = balance_b + 10


def transfer_ba():
    global balance_a, balance_b
    with lock_b:
        with lock_a:
            balance_b = balance_b - 10
            balance_a = balance_a + 10


def main():
    t1 = threading.Thread(target=transfer_ab)
    t2 = threading.Thread(target=transfer_ba)
    t1.start()
    t2.start()
    t1.join()
    t2.join()


if __name__ == "__main__":
    main()
