"""Fixed shared counter: the increment's read-modify-write runs under a
lock, making the two halves atomic with respect to the other worker."""

import threading

lock = threading.Lock()
counter = 0

REPRO_EXPECT = {
    "fixed_of": "racy_counter_buggy",
    "bugs": [],
}


def worker():
    global counter
    for _ in range(2):
        with lock:
            counter += 1


def main():
    t1 = threading.Thread(target=worker)
    t2 = threading.Thread(target=worker)
    t1.start()
    t2.start()
    t1.join()
    t2.join()


if __name__ == "__main__":
    main()
