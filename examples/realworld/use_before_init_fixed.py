"""Fixed use-before-init publish: the handle is published *before* the
worker is spawned, so program order guarantees initialisation."""

import threading

conn = None
done = False

REPRO_EXPECT = {
    "fixed_of": "use_before_init_buggy",
    "bugs": [],
}


def make_connection():
    return object()


def worker():
    global done
    conn.send("hello")
    done = True


def main():
    global conn
    conn = make_connection()
    t = threading.Thread(target=worker)
    t.start()
    t.join()


if __name__ == "__main__":
    main()
