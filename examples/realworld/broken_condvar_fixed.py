"""Fixed condition-variable protocol: the flag is checked under the
condition's lock in a ``while`` loop around ``wait()`` — the canonical
recheck idiom.  The recheck read after ``wait`` releases and reacquires
the lock is a *tolerated* split section (see the corpus residual table
in ``tests/static/test_agreement.py``)."""

import threading

REPRO_EXPECT = {
    "fixed_of": "broken_condvar_buggy",
    "bugs": [],
}


class Mailbox:
    def __init__(self):
        self.cond = threading.Condition()
        self.ready = False

    def wait_ready(self):
        with self.cond:
            while not self.ready:
                self.cond.wait()

    def publish(self):
        with self.cond:
            self.ready = True
            self.cond.notify()


box = Mailbox()


def main():
    w = threading.Thread(target=box.wait_ready)
    s = threading.Thread(target=box.publish)
    w.start()
    s.start()
    w.join()
    s.join()


if __name__ == "__main__":
    main()
