"""Broken condition-variable protocol: the waiter checks ``ready``
*outside* the condition's lock before deciding to wait — the publisher
can set the flag and notify in that window, and the wakeup is lost
(the study's lost-wakeup order-violation shape)."""

import threading

REPRO_EXPECT = {
    "bugs": [
        {
            "kind": "order-violation",
            "variables": ["box.ready"],
            "manifestation": "hang",
            "note": "flag checked outside the condition lock; notify can "
                    "land before the wait",
        },
        {
            "kind": "data-race",
            "variables": ["box.ready"],
            "manifestation": "finding",
            "note": "the unlocked check races the locked write",
        },
    ],
}


class Mailbox:
    def __init__(self):
        self.cond = threading.Condition()
        self.ready = False

    def wait_ready(self):
        if not self.ready:
            with self.cond:
                self.cond.wait()

    def publish(self):
        with self.cond:
            self.ready = True
            self.cond.notify()


box = Mailbox()


def main():
    w = threading.Thread(target=box.wait_ready)
    s = threading.Thread(target=box.publish)
    w.start()
    s.start()
    w.join()
    s.join()


if __name__ == "__main__":
    main()
